// Arbitrary-precision unsigned integers, from scratch.
//
// This is the number-theoretic substrate for every public-key primitive in
// the framework: Schnorr signatures and ZK proofs, Pedersen commitments,
// Paillier homomorphic encryption and Shamir secret sharing. Limbs are
// 32-bit with 64-bit intermediates; division is Knuth algorithm D;
// multiplication switches to Karatsuba above a limb threshold; and
// mod_pow routes odd moduli through the Montgomery/REDC fast path in
// montgomery.hpp, so 1024-2048 bit exponentiation is fast enough to
// generate primes at runtime.
//
// BigInt is non-negative. Subtraction below zero throws; signed
// book-keeping needed by the extended Euclidean algorithm is internal to
// mod_inverse.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace veil::crypto {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended

  static BigInt from_hex(std::string_view hex);
  static BigInt from_bytes_be(common::BytesView bytes);
  static BigInt from_decimal(std::string_view dec);

  /// Big-endian, minimal length (empty for zero) unless `min_len` pads.
  common::Bytes to_bytes_be(std::size_t min_len = 0) const;
  std::string to_hex() const;
  std::string to_decimal() const;
  /// Throws if the value does not fit.
  std::uint64_t to_u64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits; 0 for zero.
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  std::strong_ordering operator<=>(const BigInt& other) const;
  bool operator==(const BigInt& other) const = default;

  BigInt operator+(const BigInt& rhs) const;
  /// Throws common::CryptoError if rhs > *this.
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  BigInt operator/(const BigInt& rhs) const;
  BigInt operator%(const BigInt& rhs) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator%=(const BigInt& rhs) { return *this = *this % rhs; }

  /// Quotient and remainder in one division. Throws on divide-by-zero.
  struct DivMod;
  DivMod divmod(const BigInt& divisor) const;

  /// (this ^ exponent) mod modulus. Throws on zero modulus.
  BigInt mod_pow(const BigInt& exponent, const BigInt& modulus) const;

  /// Multiplicative inverse modulo `modulus`; throws common::CryptoError if
  /// gcd(this, modulus) != 1.
  BigInt mod_inverse(const BigInt& modulus) const;

  static BigInt gcd(BigInt a, BigInt b);
  static BigInt lcm(const BigInt& a, const BigInt& b);

  /// Uniform random value in [0, bound).
  static BigInt random_below(common::Rng& rng, const BigInt& bound);
  /// Random value with exactly `bits` significant bits (top bit set).
  static BigInt random_bits(common::Rng& rng, std::size_t bits);

  /// Miller-Rabin with `rounds` random bases (plus small-prime sieve).
  bool is_probable_prime(common::Rng& rng, int rounds = 20) const;

  /// Generate a random probable prime of exactly `bits` bits.
  static BigInt generate_prime(common::Rng& rng, std::size_t bits);

  /// Generate a safe prime p = 2q + 1 (both prime). Used for Schnorr-group
  /// parameter generation in tests; production paths use the fixed RFC 3526
  /// groups in group.hpp.
  static BigInt generate_safe_prime(common::Rng& rng, std::size_t bits);

  /// Low-level limb access for the Montgomery/REDC kernels
  /// (montgomery.cpp), which work on raw limbs to avoid per-step
  /// allocation. Least-significant limb first, no trailing zeros.
  const std::vector<std::uint32_t>& limbs() const { return limbs_; }
  /// Adopt a least-significant-first limb vector (trailing zeros allowed).
  static BigInt from_limbs(std::vector<std::uint32_t> limbs);

 private:
  void trim();
  static BigInt add_magnitudes(const BigInt& a, const BigInt& b);
  static BigInt sub_magnitudes(const BigInt& a, const BigInt& b);  // a >= b
  static BigInt karatsuba_mul(const BigInt& a, const BigInt& b);

  // Least-significant limb first; no trailing zero limbs (zero == empty).
  std::vector<std::uint32_t> limbs_;
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace veil::crypto
