#include "crypto/hmac.hpp"

#include "common/error.hpp"

namespace veil::crypto {

Digest hmac_sha256(common::BytesView key, common::BytesView data) {
  constexpr std::size_t kBlockSize = 64;

  common::Bytes k(kBlockSize, 0);
  if (key.size() > kBlockSize) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  common::Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  const Digest inner = Sha256().update(ipad).update(data).finalize();
  return Sha256()
      .update(opad)
      .update(common::BytesView(inner.data(), inner.size()))
      .finalize();
}

Digest hkdf_extract(common::BytesView salt, common::BytesView ikm) {
  if (salt.empty()) {
    const common::Bytes zero(kSha256DigestSize, 0);
    return hmac_sha256(zero, ikm);
  }
  return hmac_sha256(salt, ikm);
}

common::Bytes hkdf_expand(const Digest& prk, std::string_view info,
                          std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw common::CryptoError("hkdf_expand: length too large");
  }
  common::Bytes out;
  out.reserve(length);
  common::Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    common::Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const Digest d = hmac_sha256(
        common::BytesView(prk.data(), prk.size()), block);
    t.assign(d.begin(), d.end());
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   std::string_view info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace veil::crypto
