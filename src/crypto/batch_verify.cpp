#include "crypto/batch_verify.hpp"

#include <algorithm>

#include "crypto/multiexp.hpp"

namespace veil::crypto {

BatchVerifier::BatchVerifier(const Group& group, std::uint64_t seed)
    : group_(&group), rng_(seed) {}

bool BatchVerifier::is_member_cached(const BigInt& x) {
  const auto it = member_cache_.find(x);
  if (it != member_cache_.end()) {
    ++stats_.key_cache_hits;
    return it->second;
  }
  ++stats_.key_cache_misses;
  const bool member = group_->is_element(x);
  member_cache_.emplace(x, member);
  return member;
}

std::size_t BatchVerifier::add_signature(const PublicKey& pub,
                                         common::BytesView message,
                                         const Signature& sig) {
  Item item;
  item.is_sig = true;
  item.y = pub.y;
  item.a = sig.response;
  item.b = sig.challenge;
  item.t = sig.commitment;
  item.pub = pub;
  item.message.assign(message.begin(), message.end());
  item.sig = sig;
  // Exact pre-checks: scalar ranges, key membership, and the Fiat-Shamir
  // binding e == H(R || y || m). The binding pins the commitment to the
  // transmitted bytes, so the RLC below only has to cover the response.
  if (sig.challenge >= group_->q() || sig.response >= group_->q() ||
      sig.commitment.is_zero() || sig.commitment >= group_->p() ||
      !is_member_cached(pub.y) ||
      schnorr_challenge(*group_, sig.commitment, pub.y, message) !=
          sig.challenge) {
    item.precheck_failed = true;
  }
  items_.push_back(std::move(item));
  return items_.size() - 1;
}

std::size_t BatchVerifier::add_dlog(const BigInt& base, const BigInt& y,
                                    const DlogProof& proof,
                                    common::BytesView context) {
  Item item;
  item.is_sig = false;
  item.base = base;
  item.y = y;
  item.a = proof.response;
  item.t = proof.commitment;
  item.proof = proof;
  item.context.assign(context.begin(), context.end());
  item.b = dlog_challenge(*group_, base, y, proof.commitment, context);
  if (proof.response >= group_->q() || proof.commitment.is_zero() ||
      proof.commitment >= group_->p() || !is_member_cached(y)) {
    item.precheck_failed = true;
  }
  items_.push_back(std::move(item));
  return items_.size() - 1;
}

bool BatchVerifier::verify_single(const Item& item) const {
  if (item.is_sig) {
    return crypto::verify(*group_, item.pub, item.message, item.sig);
  }
  return verify_dlog(*group_, item.base, item.y, item.proof, item.context);
}

bool BatchVerifier::rlc_check(const std::vector<std::size_t>& indices,
                              BatchOutcome& outcome) {
  ++outcome.batch_checks;
  const BigInt& q = group_->q();
  // Fresh odd 64-bit randomizers per evaluation (odd kills the order-2
  // cofactor escape; see header). Repeated bases — endorser keys recur
  // across every wave — merge into a single term with their weighted
  // exponents summed mod q: the regrouping is exact arithmetic, and the
  // mod-q reduction is sound because every merged base passed the
  // order-q membership pre-check. Commitment terms are NOT merged and
  // keep their raw 64-bit z: the parity argument above needs the
  // unreduced odd exponent on each transmitted R.
  std::map<BigInt, BigInt> lhs_merged, rhs_merged;
  std::vector<ExpTerm> rhs;
  rhs.reserve(indices.size());
  BigInt g_exp(0), h_exp(0);
  for (const std::size_t i : indices) {
    const Item& item = items_[i];
    const BigInt z(rng_.next_u64() | 1);
    const BigInt za = (z * item.a) % q;
    const BigInt zb = (z * item.b) % q;
    if (item.is_sig) {
      // g^{z·s} · y^{z·e} on the left, R^{z} on the right.
      g_exp = (g_exp + za) % q;
      BigInt& y_acc = lhs_merged[item.y];
      y_acc = (y_acc + zb) % q;
    } else {
      // base^{z·s} on the left, t^{z} · y^{z·c} on the right.
      if (item.base == group_->g()) {
        g_exp = (g_exp + za) % q;
      } else if (item.base == group_->h()) {
        h_exp = (h_exp + za) % q;
      } else {
        BigInt& base_acc = lhs_merged[item.base];
        base_acc = (base_acc + za) % q;
      }
      BigInt& y_acc = rhs_merged[item.y];
      y_acc = (y_acc + zb) % q;
    }
    rhs.push_back({item.t, z});
  }
  std::vector<ExpTerm> lhs;
  lhs.reserve(lhs_merged.size());
  for (const auto& [base, exp] : lhs_merged) {
    if (!exp.is_zero()) lhs.push_back({base, exp});
  }
  for (const auto& [base, exp] : rhs_merged) {
    if (!exp.is_zero()) rhs.push_back({base, exp});
  }
  const MontgomeryCtx& ctx = *group_->mont();
  // After merging, lhs holds one term per distinct key — the parallel
  // path degrades to the serial one there. rhs holds one commitment term
  // per item and dominates; chunking it across the pool is exact
  // regrouping, so the verdict is bit-identical at every thread count.
  BigInt left = multi_exp_parallel(ctx, lhs);
  // The accumulated generator exponents ride the fixed-base tables — one
  // multiply per digit, no squarings at all.
  if (!g_exp.is_zero()) left = group_->mul(left, group_->pow_g(g_exp));
  if (!h_exp.is_zero()) left = group_->mul(left, group_->pow_h(h_exp));
  const BigInt right = multi_exp_parallel(ctx, rhs);
  return left == right;
}

void BatchVerifier::collect_invalid(const std::vector<std::size_t>& indices,
                                    BatchOutcome& outcome) {
  if (indices.empty()) return;
  if (indices.size() == 1) {
    ++outcome.single_fallbacks;
    if (!verify_single(items_[indices[0]])) {
      outcome.invalid.push_back(indices[0]);
    }
    return;
  }
  if (rlc_check(indices, outcome)) return;
  ++outcome.bisect_steps;
  const std::size_t mid = indices.size() / 2;
  collect_invalid({indices.begin(), indices.begin() + mid}, outcome);
  collect_invalid({indices.begin() + mid, indices.end()}, outcome);
}

BatchOutcome BatchVerifier::verify() {
  BatchOutcome outcome;
  std::vector<std::size_t> live;
  live.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].precheck_failed) {
      outcome.invalid.push_back(i);
    } else {
      live.push_back(i);
    }
  }
  if (!live.empty()) {
    if (!rlc_check(live, outcome)) {
      const std::size_t before = outcome.invalid.size();
      ++outcome.bisect_steps;
      const std::size_t mid = live.size() / 2;
      collect_invalid({live.begin(), live.begin() + mid}, outcome);
      collect_invalid({live.begin() + mid, live.end()}, outcome);
      if (outcome.invalid.size() == before) {
        // Pathological: the halves pass individually but the whole batch
        // did not (cross-boundary cancellation under the fresh
        // randomizers). Fall back to exact per-item verification so the
        // answer is never probabilistic on the reject path.
        for (const std::size_t i : live) {
          ++outcome.single_fallbacks;
          if (!verify_single(items_[i])) outcome.invalid.push_back(i);
        }
      }
    }
  }
  std::sort(outcome.invalid.begin(), outcome.invalid.end());
  outcome.invalid.erase(
      std::unique(outcome.invalid.begin(), outcome.invalid.end()),
      outcome.invalid.end());
  outcome.all_valid = outcome.invalid.empty();
  stats_.items += items_.size();
  ++stats_.batches;
  stats_.rejected_items += outcome.invalid.size();
  items_.clear();
  return outcome;
}

}  // namespace veil::crypto
