// Shamir secret sharing over a prime field.
//
// The substrate for the MPC module (§2.2 "Multiparty computation"):
// parties split private inputs into additive-friendly polynomial shares,
// exchange shares, and reconstruct only aggregate results.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace veil::crypto {

struct Share {
  std::uint64_t x = 0;  // evaluation point (party index, 1-based)
  BigInt y;             // polynomial value

  bool operator==(const Share&) const = default;
};

class Shamir {
 public:
  /// Field modulus must be prime and larger than any secret.
  explicit Shamir(BigInt prime);

  /// The field prime used by all shares.
  const BigInt& prime() const { return prime_; }

  /// Split `secret` into `share_count` shares with reconstruction
  /// threshold `threshold` (any `threshold` shares reconstruct; fewer
  /// reveal nothing).
  std::vector<Share> split(const BigInt& secret, std::size_t threshold,
                           std::size_t share_count, common::Rng& rng) const;

  /// Lagrange interpolation at x=0. Throws if shares have duplicate x.
  BigInt reconstruct(const std::vector<Share>& shares) const;

  /// Pointwise share addition — shares of a+b from shares of a and b at
  /// the same evaluation points (the MPC building block).
  Share add(const Share& a, const Share& b) const;

  /// Multiply a share by a public constant.
  Share scale(const Share& s, const BigInt& k) const;

 private:
  BigInt prime_;
};

}  // namespace veil::crypto
