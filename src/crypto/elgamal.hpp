// Hybrid ElGamal public-key encryption (§3.2: "transaction data can be
// encrypted through symmetric or asymmetric cryptography").
//
// KEM/DEM construction over the Schnorr group: an ephemeral DH exchange
// derives an AES key, the payload travels as an authenticated AES-CTR
// ciphertext. Used when a sender must encrypt to a party whose only
// published material is its (certificate-bound) public key — no prior
// shared secret required.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/signature.hpp"

namespace veil::crypto {

struct ElGamalCiphertext {
  BigInt ephemeral_key;     // g^k
  common::Bytes sealed;     // seal(H(pub^k), plaintext)

  common::Bytes encode() const;
  static ElGamalCiphertext decode(common::BytesView data);

  std::size_t size() const { return encode().size(); }
};

/// Encrypt `plaintext` to the holder of `recipient`'s secret key.
ElGamalCiphertext elgamal_encrypt(const Group& group,
                                  const PublicKey& recipient,
                                  common::BytesView plaintext,
                                  common::Rng& rng);

/// Decrypt with the recipient's keypair; nullopt on MAC failure (wrong
/// key or tampered ciphertext).
std::optional<common::Bytes> elgamal_decrypt(const KeyPair& recipient,
                                             const ElGamalCiphertext& ct);

}  // namespace veil::crypto
