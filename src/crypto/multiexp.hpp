// Simultaneous multi-exponentiation (Straus interleaving).
//
// Batch verification reduces N signature/proof checks to evaluating one
// product Π base_i^{e_i} mod n. Computing each factor separately costs a
// full square-and-multiply chain per term; Straus' trick runs ONE shared
// squaring chain and folds every term's windowed digits into it, so the
// squarings — the dominant cost of a single exponentiation — are
// amortized across the whole batch. Per term the marginal cost is the
// 4-bit digit table (15 Montgomery multiplies) plus one multiply per
// nonzero digit, about a 4-6x saving over independent exponentiations at
// the batch sizes the commit path produces.
//
// Pippenger's bucket method wins asymptotically for very large N, but at
// the 16-256 term batches a block produces the window tables already
// dominate and Straus is both simpler and faster; see
// docs/crypto_performance.md ("Batch verification and the commit
// pipeline") for the measured crossover discussion.
#pragma once

#include <vector>

#include "crypto/bigint.hpp"
#include "crypto/montgomery.hpp"

namespace veil::crypto {

/// One term base^exponent of the product. The base is in the normal
/// domain, 0 <= base < n; the exponent is non-negative and of any width
/// (64-bit randomizers and full-width scalars mix freely — each term
/// only pays for the digits it actually has).
struct ExpTerm {
  BigInt base;
  BigInt exponent;
};

/// Π terms[i].base ^ terms[i].exponent mod n. An empty product is 1.
BigInt multi_exp(const MontgomeryCtx& ctx, const std::vector<ExpTerm>& terms);

/// Same product, evaluated as contiguous chunks fanned out on the global
/// worker pool and recombined with plain modular multiplies. Chunking is
/// exact regrouping — the result is bit-identical to multi_exp at every
/// thread count — but each chunk pays its own squaring chain, so this
/// only wins for batches large enough to amortize that (small inputs and
/// the inline single-thread pool fall back to the serial path).
BigInt multi_exp_parallel(const MontgomeryCtx& ctx,
                          const std::vector<ExpTerm>& terms);

}  // namespace veil::crypto
