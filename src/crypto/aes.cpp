#include "crypto/aes.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "crypto/aes_kernels.hpp"
#include "crypto/cpu_features.hpp"
#include "crypto/hmac.hpp"

namespace veil::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

// Inverse S-box as a compile-time table (the seed built it lazily behind
// an init-guard branch on every decrypt call).
constexpr std::array<std::uint8_t, 256> kInvSbox = [] {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[kSbox[i]] = static_cast<std::uint8_t>(i);
  return t;
}();

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// GF(2^8) multiplication tables for the InvMixColumns coefficients,
// replacing the per-byte shift-and-xor loop of the seed.
constexpr std::array<std::uint8_t, 256> make_mul_table(std::uint8_t c) {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[i] = gf_mul(static_cast<std::uint8_t>(i), c);
  return t;
}
constexpr std::array<std::uint8_t, 256> kMul9 = make_mul_table(9);
constexpr std::array<std::uint8_t, 256> kMul11 = make_mul_table(11);
constexpr std::array<std::uint8_t, 256> kMul13 = make_mul_table(13);
constexpr std::array<std::uint8_t, 256> kMul14 = make_mul_table(14);

// Encryption T-tables: Te_r[x] packs the MixColumns contribution of
// S(x) appearing in state row r, as a big-endian column word. One round
// becomes four words of 4 lookups + xor each.
constexpr std::array<std::uint32_t, 256> kTe0 = [] {
  std::array<std::uint32_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    t[i] = static_cast<std::uint32_t>(s2) << 24 |
           static_cast<std::uint32_t>(s) << 16 |
           static_cast<std::uint32_t>(s) << 8 | s3;
  }
  return t;
}();

constexpr std::uint32_t rotr32(std::uint32_t v, int n) {
  return (v >> n) | (v << (32 - n));
}

constexpr std::array<std::uint32_t, 256> rotate_table(
    const std::array<std::uint32_t, 256>& src, int n) {
  std::array<std::uint32_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[i] = rotr32(src[i], n);
  return t;
}
constexpr std::array<std::uint32_t, 256> kTe1 = rotate_table(kTe0, 8);
constexpr std::array<std::uint32_t, 256> kTe2 = rotate_table(kTe0, 16);
constexpr std::array<std::uint32_t, 256> kTe3 = rotate_table(kTe0, 24);

inline std::uint32_t be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::atomic<AesKernel> g_aes_kernel{AesKernel::Auto};

AesKernel resolve_kernel() {
  const AesKernel k = g_aes_kernel.load(std::memory_order_relaxed);
  const bool hw =
#if defined(VEIL_HAVE_AESNI)
      cpu_has_aesni() && cpu_has_sse41();
#else
      false;
#endif
  if (k == AesKernel::Auto) return hw ? AesKernel::AesNi : AesKernel::TTable;
  if (k == AesKernel::AesNi && !hw) return AesKernel::TTable;
  return k;
}

}  // namespace

void set_aes_kernel(AesKernel kernel) {
  g_aes_kernel.store(kernel, std::memory_order_relaxed);
}

AesKernel active_aes_kernel() { return resolve_kernel(); }

const char* aes_kernel_name() {
  switch (resolve_kernel()) {
    case AesKernel::AesNi:
      return "aesni";
    case AesKernel::TTable:
      return "ttable";
    default:
      return "reference";
  }
}

Aes::Aes(common::BytesView key) : key_size_(key.size()) {
  if (key_size_ != 16 && key_size_ != 32) {
    throw common::CryptoError("Aes: key must be 16 or 32 bytes");
  }
  const int nk = static_cast<int>(key_size_ / 4);
  rounds_ = nk + 6;
  const int total_words = 4 * (rounds_ + 1);

  std::memcpy(round_keys_.data(), key.data(), key_size_);
  for (int i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / nk]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (nk == 8 && i % nk == 4) {
      for (int k = 0; k < 4; ++k) temp[k] = kSbox[temp[k]];
    }
    for (int k = 0; k < 4; ++k) {
      round_keys_[4 * i + k] =
          round_keys_[4 * (i - nk) + k] ^ temp[k];
    }
  }
  for (int i = 0; i < total_words; ++i) {
    round_key_words_[i] = be32(round_keys_.data() + 4 * i);
  }
#if defined(VEIL_HAVE_AESNI)
  if (cpu_has_aesni() && cpu_has_sse41()) {
    aesni_make_dec_schedule(round_keys_.data(), rounds_,
                            dec_round_keys_.data());
    have_dec_schedule_ = true;
  }
#endif
}

namespace {

// The seed's byte-at-a-time kernel, retained verbatim as the reference
// oracle and pre-optimization baseline.
void encrypt_block_reference(const std::uint8_t* rk, int rounds,
                             const std::uint8_t in[16], std::uint8_t out[16]) {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ rk[i];

  for (int round = 1; round <= rounds; ++round) {
    // SubBytes.
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (state is column-major: s[4*c + r]).
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in the final round).
    if (round < rounds) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  }
  std::memcpy(out, s, 16);
}

// T-table kernel: state as four big-endian column words; each round is
// 16 table lookups. ShiftRows is absorbed into which word supplies each
// byte (row r comes from column c+r).
void encrypt_block_ttable(const std::uint32_t* rkw, int rounds,
                          const std::uint8_t in[16], std::uint8_t out[16]) {
  std::uint32_t x0 = be32(in) ^ rkw[0];
  std::uint32_t x1 = be32(in + 4) ^ rkw[1];
  std::uint32_t x2 = be32(in + 8) ^ rkw[2];
  std::uint32_t x3 = be32(in + 12) ^ rkw[3];

  for (int round = 1; round < rounds; ++round) {
    const std::uint32_t* rk = rkw + 4 * round;
    const std::uint32_t y0 = kTe0[x0 >> 24] ^ kTe1[(x1 >> 16) & 0xff] ^
                             kTe2[(x2 >> 8) & 0xff] ^ kTe3[x3 & 0xff] ^ rk[0];
    const std::uint32_t y1 = kTe0[x1 >> 24] ^ kTe1[(x2 >> 16) & 0xff] ^
                             kTe2[(x3 >> 8) & 0xff] ^ kTe3[x0 & 0xff] ^ rk[1];
    const std::uint32_t y2 = kTe0[x2 >> 24] ^ kTe1[(x3 >> 16) & 0xff] ^
                             kTe2[(x0 >> 8) & 0xff] ^ kTe3[x1 & 0xff] ^ rk[2];
    const std::uint32_t y3 = kTe0[x3 >> 24] ^ kTe1[(x0 >> 16) & 0xff] ^
                             kTe2[(x1 >> 8) & 0xff] ^ kTe3[x2 & 0xff] ^ rk[3];
    x0 = y0;
    x1 = y1;
    x2 = y2;
    x3 = y3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  const std::uint32_t* rk = rkw + 4 * rounds;
  const std::uint32_t y0 =
      (static_cast<std::uint32_t>(kSbox[x0 >> 24]) << 24 |
       static_cast<std::uint32_t>(kSbox[(x1 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(kSbox[(x2 >> 8) & 0xff]) << 8 |
       kSbox[x3 & 0xff]) ^
      rk[0];
  const std::uint32_t y1 =
      (static_cast<std::uint32_t>(kSbox[x1 >> 24]) << 24 |
       static_cast<std::uint32_t>(kSbox[(x2 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(kSbox[(x3 >> 8) & 0xff]) << 8 |
       kSbox[x0 & 0xff]) ^
      rk[1];
  const std::uint32_t y2 =
      (static_cast<std::uint32_t>(kSbox[x2 >> 24]) << 24 |
       static_cast<std::uint32_t>(kSbox[(x3 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(kSbox[(x0 >> 8) & 0xff]) << 8 |
       kSbox[x1 & 0xff]) ^
      rk[2];
  const std::uint32_t y3 =
      (static_cast<std::uint32_t>(kSbox[x3 >> 24]) << 24 |
       static_cast<std::uint32_t>(kSbox[(x0 >> 16) & 0xff]) << 16 |
       static_cast<std::uint32_t>(kSbox[(x1 >> 8) & 0xff]) << 8 |
       kSbox[x2 & 0xff]) ^
      rk[3];

  store_be32(out, y0);
  store_be32(out + 4, y1);
  store_be32(out + 8, y2);
  store_be32(out + 12, y3);
}

}  // namespace

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  switch (resolve_kernel()) {
#if defined(VEIL_HAVE_AESNI)
    case AesKernel::AesNi:
      aesni_encrypt_blocks(round_keys_.data(), rounds_, in, out, 1);
      return;
#endif
    case AesKernel::Reference:
      encrypt_block_reference(round_keys_.data(), rounds_, in, out);
      return;
    default:
      encrypt_block_ttable(round_key_words_.data(), rounds_, in, out);
      return;
  }
}

void Aes::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                         std::size_t n) const {
  switch (resolve_kernel()) {
#if defined(VEIL_HAVE_AESNI)
    case AesKernel::AesNi:
      aesni_encrypt_blocks(round_keys_.data(), rounds_, in, out, n);
      return;
#endif
    case AesKernel::Reference:
      for (std::size_t i = 0; i < n; ++i) {
        encrypt_block_reference(round_keys_.data(), rounds_, in + 16 * i,
                                out + 16 * i);
      }
      return;
    default:
      for (std::size_t i = 0; i < n; ++i) {
        encrypt_block_ttable(round_key_words_.data(), rounds_, in + 16 * i,
                             out + 16 * i);
      }
      return;
  }
}

void Aes::ctr_xor(const std::uint8_t counter16[16], const std::uint8_t* in,
                  std::uint8_t* out, std::size_t len) const {
#if defined(VEIL_HAVE_AESNI)
  if (resolve_kernel() == AesKernel::AesNi) {
    aesni_ctr_xor(round_keys_.data(), rounds_, counter16, in, out, len);
    return;
  }
#endif
  // Software path: materialize a chunk of counter blocks, encrypt them
  // through the bulk entry point, XOR into the output.
  std::uint8_t ctr[16];
  std::memcpy(ctr, counter16, 16);
  constexpr std::size_t kChunkBlocks = 32;
  std::uint8_t counters[kChunkBlocks * 16];
  std::uint8_t stream[kChunkBlocks * 16];
  std::size_t off = 0;
  while (off < len) {
    const std::size_t remaining = len - off;
    const std::size_t blocks =
        std::min(kChunkBlocks, (remaining + 15) / 16);
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(counters + 16 * b, ctr, 16);
      for (int i = 15; i >= 8; --i) {
        if (++ctr[i] != 0) break;
      }
    }
    encrypt_blocks(counters, stream, blocks);
    const std::size_t take = std::min(remaining, blocks * 16);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ stream[i];
    off += take;
  }
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
#if defined(VEIL_HAVE_AESNI)
  if (resolve_kernel() == AesKernel::AesNi && have_dec_schedule_) {
    aesni_decrypt_blocks(round_keys_.data(), dec_round_keys_.data(), rounds_,
                         in, out, 1);
    return;
  }
#endif
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[16 * rounds_ + i];

  for (int round = rounds_ - 1; round >= 0; --round) {
    // InvShiftRows.
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
    }
    std::memcpy(s, t, 16);
    // InvSubBytes.
    for (auto& b : s) b = kInvSbox[b];
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
    // InvMixColumns (skipped after the last round-key addition).
    if (round > 0) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(kMul14[a0] ^ kMul11[a1] ^
                                           kMul13[a2] ^ kMul9[a3]);
        col[1] = static_cast<std::uint8_t>(kMul9[a0] ^ kMul14[a1] ^
                                           kMul11[a2] ^ kMul13[a3]);
        col[2] = static_cast<std::uint8_t>(kMul13[a0] ^ kMul9[a1] ^
                                           kMul14[a2] ^ kMul11[a3]);
        col[3] = static_cast<std::uint8_t>(kMul11[a0] ^ kMul13[a1] ^
                                           kMul9[a2] ^ kMul14[a3]);
      }
    }
  }
  std::memcpy(out, s, 16);
}

common::Bytes aes_ctr(common::BytesView key, common::BytesView nonce16,
                      common::BytesView data) {
  if (nonce16.size() != 16) {
    throw common::CryptoError("aes_ctr: nonce must be 16 bytes");
  }
  const Aes cipher(key);
  common::Bytes out(data.size());
  cipher.ctr_xor(nonce16.data(), data.data(), out.data(), data.size());
  return out;
}

common::Bytes aes_cbc_encrypt(common::BytesView key, common::BytesView iv16,
                              common::BytesView plaintext) {
  if (iv16.size() != 16) {
    throw common::CryptoError("aes_cbc_encrypt: IV must be 16 bytes");
  }
  const Aes cipher(key);
  // PKCS#7 pad.
  const std::size_t pad = 16 - plaintext.size() % 16;
  common::Bytes padded(plaintext.begin(), plaintext.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  common::Bytes out(padded.size());
  std::uint8_t prev[16];
  std::memcpy(prev, iv16.data(), 16);
  for (std::size_t off = 0; off < padded.size(); off += 16) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = padded[off + i] ^ prev[i];
    cipher.encrypt_block(block, out.data() + off);
    std::memcpy(prev, out.data() + off, 16);
  }
  return out;
}

std::optional<common::Bytes> aes_cbc_decrypt(common::BytesView key,
                                             common::BytesView iv16,
                                             common::BytesView ciphertext) {
  if (iv16.size() != 16) {
    throw common::CryptoError("aes_cbc_decrypt: IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % 16 != 0) return std::nullopt;
  const Aes cipher(key);
  common::Bytes out(ciphertext.size());
  std::uint8_t prev[16];
  std::memcpy(prev, iv16.data(), 16);
  for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
    std::uint8_t block[16];
    cipher.decrypt_block(ciphertext.data() + off, block);
    for (int i = 0; i < 16; ++i) out[off + i] = block[i] ^ prev[i];
    std::memcpy(prev, ciphertext.data() + off, 16);
  }
  const std::uint8_t pad = out.back();
  if (pad == 0 || pad > 16 || pad > out.size()) return std::nullopt;
  for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
    if (out[i] != pad) return std::nullopt;
  }
  out.resize(out.size() - pad);
  return out;
}

common::Bytes seal(common::BytesView key, common::BytesView plaintext,
                   common::BytesView nonce16) {
  // Derive independent cipher and MAC keys so a single shared secret is safe.
  const common::Bytes enc_key = hkdf({}, key, "veil.seal.enc", 32);
  const common::Bytes mac_key = hkdf({}, key, "veil.seal.mac", 32);

  common::Bytes out(nonce16.begin(), nonce16.end());
  const common::Bytes ct = aes_ctr(enc_key, nonce16, plaintext);
  out.insert(out.end(), ct.begin(), ct.end());
  const Digest tag = hmac_sha256(mac_key, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<common::Bytes> open(common::BytesView key,
                                  common::BytesView sealed) {
  if (sealed.size() < 16 + kSha256DigestSize) return std::nullopt;
  const common::Bytes enc_key = hkdf({}, key, "veil.seal.enc", 32);
  const common::Bytes mac_key = hkdf({}, key, "veil.seal.mac", 32);

  const std::size_t body_len = sealed.size() - kSha256DigestSize;
  const common::BytesView body = sealed.subspan(0, body_len);
  const common::BytesView tag = sealed.subspan(body_len);
  const Digest expect = hmac_sha256(mac_key, body);
  if (!common::ct_equal(tag, common::BytesView(expect.data(), expect.size()))) {
    return std::nullopt;
  }
  const common::BytesView nonce = sealed.subspan(0, 16);
  const common::BytesView ct = sealed.subspan(16, body_len - 16);
  return aes_ctr(enc_key, nonce, ct);
}

}  // namespace veil::crypto
