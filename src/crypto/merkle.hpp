// Merkle trees with inclusion proofs and Corda-style tear-offs (§2.2).
//
// A tear-off ("filtered transaction") reveals a chosen subset of leaves
// together with just enough interior hashes that the recipient can
// recompute the root — and therefore verify a signature made over the
// root — without ever seeing the hidden leaves. Hidden leaves are salted
// before hashing so that low-entropy fields cannot be brute-forced from
// their leaf hashes.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace veil::crypto {

/// Inclusion proof for a single leaf: sibling hashes from leaf to root.
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::size_t leaf_count = 0;
  std::vector<Digest> siblings;
};

class MerkleTree {
 public:
  /// Build from raw leaf payloads. Each leaf is hashed with a domain-
  /// separated prefix plus its per-leaf salt (empty salt is allowed).
  /// Leaf salts enable hiding low-entropy data behind tear-offs.
  static MerkleTree build(const std::vector<common::Bytes>& leaves,
                          const std::vector<common::Bytes>& salts = {});

  const Digest& root() const;
  std::size_t leaf_count() const { return leaf_count_; }

  MerkleProof prove(std::size_t leaf_index) const;

  /// Verify an inclusion proof against a root.
  static bool verify(const Digest& root, common::BytesView leaf,
                     common::BytesView salt, const MerkleProof& proof);

  /// Domain-separated leaf hash.
  static Digest hash_leaf(common::BytesView leaf, common::BytesView salt);
  /// Domain-separated interior-node hash.
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  std::size_t leaf_count_ = 0;
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

/// A Merkle tear-off: some leaves visible in clear, the rest replaced by
/// their (salted) leaf hashes. Carries everything a counterparty needs to
/// recompute the root.
class TearOff {
 public:
  /// Produce a tear-off from full leaf data, revealing only `visible`
  /// indices. Salts must match the ones used to build the tree.
  static TearOff create(const std::vector<common::Bytes>& leaves,
                        const std::vector<common::Bytes>& salts,
                        const std::vector<std::size_t>& visible);

  /// Recompute the root from the revealed leaves and hidden leaf hashes.
  Digest compute_root() const;

  /// True iff the tear-off reconstructs `expected_root`.
  bool verify_against(const Digest& expected_root) const;

  std::size_t leaf_count() const { return leaf_count_; }
  bool is_visible(std::size_t index) const;

  /// Visible leaf payload, or nullopt if that leaf was torn off.
  std::optional<common::Bytes> leaf(std::size_t index) const;

  /// Total number of revealed leaves.
  std::size_t visible_count() const { return visible_.size(); }

  /// Serialized size in bytes — used by the Corda scalability bench to
  /// report proof-size overhead.
  std::size_t encoded_size() const;

  common::Bytes encode() const;
  static TearOff decode(common::BytesView data);

 private:
  std::size_t leaf_count_ = 0;
  // index -> (payload, salt) for revealed leaves.
  std::map<std::size_t, std::pair<common::Bytes, common::Bytes>> visible_;
  // index -> leaf hash for hidden leaves.
  std::map<std::size_t, Digest> hidden_;
};

}  // namespace veil::crypto
