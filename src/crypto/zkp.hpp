// Sigma-protocol zero-knowledge proofs (non-interactive via Fiat-Shamir).
//
// Two proof systems cover the paper's ZKP uses (§2.1, §2.2):
//
//  * DlogProof — proof of knowledge of a discrete log. This is "ZKP of
//    identity": prove you hold the secret key behind a public key (or an
//    Idemix credential attribute) without producing a linkable signature.
//    Each proof is randomized, so two proofs by the same party are
//    unlinkable unless the same context string is reused deliberately.
//
//  * RangeProof — bit-decomposition proof that a Pedersen-committed value
//    lies in [0, 2^n). Composed with the homomorphism this yields "proof
//    of sufficient funds": prove balance - amount >= 0 without revealing
//    the balance (the paper's boolean-affirmation example).
//
// These are textbook sigma protocols (Schnorr PoK; CDS OR-composition for
// bit proofs), which matches the paper's observation that ZKPs must be
// purpose-built per scenario and are costly relative to symmetric crypto.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/commitment.hpp"
#include "crypto/group.hpp"

namespace veil::crypto {

/// Non-interactive Schnorr proof of knowledge of x such that y = base^x.
struct DlogProof {
  BigInt commitment;  // t = base^k
  BigInt response;    // s = k + c*x mod q

  common::Bytes encode() const;
  static DlogProof decode(common::BytesView data);
};

/// Prove knowledge of `secret` for statement y = base^secret. `context`
/// binds the proof to a session/message (prevents replay).
DlogProof prove_dlog(const Group& group, const BigInt& base,
                     const BigInt& secret, common::BytesView context,
                     common::Rng& rng);

bool verify_dlog(const Group& group, const BigInt& base, const BigInt& y,
                 const DlogProof& proof, common::BytesView context);

/// The Fiat-Shamir challenge c = H(base || y || t || context) used by
/// prove_dlog/verify_dlog. Exposed so BatchVerifier can pre-compute the
/// challenges it folds into the batched check.
BigInt dlog_challenge(const Group& group, const BigInt& base, const BigInt& y,
                      const BigInt& commitment, common::BytesView context);

/// OR-proof that a Pedersen commitment C opens to 0 or to 1 (CDS
/// composition of two Schnorr proofs, one simulated).
struct BitProof {
  BigInt t0, t1;        // commitments of the two branches
  BigInt c0, c1;        // split challenges, c0 + c1 == H(...)
  BigInt s0, s1;        // responses

  common::Bytes encode() const;
  static BitProof decode(common::BytesView data);
};

BitProof prove_bit(const Group& group, const Commitment& commitment,
                   bool bit, const BigInt& blinding,
                   common::BytesView context, common::Rng& rng);

bool verify_bit(const Group& group, const Commitment& commitment,
                const BitProof& proof, common::BytesView context);

/// Range proof: committed value lies in [0, 2^bit_count).
struct RangeProof {
  std::vector<Commitment> bit_commitments;
  std::vector<BitProof> bit_proofs;
  // Proof that C / prod(C_i^{2^i}) is a commitment to zero, i.e. knowledge
  // of the discrete log base h of the residue.
  DlogProof consistency;

  common::Bytes encode() const;
  static RangeProof decode(common::BytesView data, std::size_t bit_count);

  std::size_t encoded_size() const { return encode().size(); }
};

/// Prove that `opening.value` in `commitment` lies in [0, 2^bit_count).
/// Throws common::CryptoError if the value is out of range (a proof would
/// be impossible).
RangeProof prove_range(const Group& group, const Commitment& commitment,
                       const Opening& opening, std::size_t bit_count,
                       common::BytesView context, common::Rng& rng);

bool verify_range(const Group& group, const Commitment& commitment,
                  const RangeProof& proof, std::size_t bit_count,
                  common::BytesView context);

}  // namespace veil::crypto
