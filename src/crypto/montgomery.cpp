#include "crypto/montgomery.hpp"

#include <array>
#include <map>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace veil::crypto {

namespace {

// -x^-1 mod 2^32 for odd x, by Newton iteration: each step doubles the
// number of correct low bits, and x itself is already correct mod 8.
std::uint32_t neg_inverse_u32(std::uint32_t x) {
  std::uint32_t inv = x;
  for (int i = 0; i < 4; ++i) inv *= 2u - x * inv;
  return ~inv + 1u;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const BigInt& n) : n_(n) {
  k_ = n_.limbs().size();
  n0inv_ = neg_inverse_u32(n_.limbs()[0]);
  const BigInt r = BigInt(1) << (32 * k_);
  r_mod_n_ = r % n_;
  r2_mod_n_ = (r_mod_n_ * r_mod_n_) % n_;
}

std::shared_ptr<const MontgomeryCtx> MontgomeryCtx::create(const BigInt& n) {
  if (n.is_zero() || !n.is_odd() || n == BigInt(1)) return nullptr;
  return std::shared_ptr<const MontgomeryCtx>(new MontgomeryCtx(n));
}

std::shared_ptr<const MontgomeryCtx> MontgomeryCtx::shared(const BigInt& n) {
  if (n.is_zero() || !n.is_odd() || n == BigInt(1)) return nullptr;
  static std::mutex mu;
  static std::map<BigInt, std::shared_ptr<const MontgomeryCtx>> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  auto ctx = create(n);
  // Transient moduli (e.g. prime-generation candidates) must not pin
  // memory forever; the working set of live groups/keys is tiny, so a
  // wholesale reset on overflow is enough.
  if (cache.size() >= 64) cache.clear();
  cache.emplace(n, ctx);
  return ctx;
}

// CIOS (coarsely integrated operand scanning) Montgomery multiplication:
// interleaves the a_i*b partial products with the REDC reduction so the
// working value never grows past k+2 limbs. Result is a*b*R^-1 mod n.
BigInt MontgomeryCtx::mul(const BigInt& a, const BigInt& b) const {
  const std::vector<std::uint32_t>& al = a.limbs();
  const std::vector<std::uint32_t>& bl = b.limbs();
  const std::vector<std::uint32_t>& nl = n_.limbs();

  std::vector<std::uint32_t> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const std::uint64_t ai = i < al.size() ? al[i] : 0;
    // t += a_i * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t bj = j < bl.size() ? bl[j] : 0;
      const std::uint64_t cur = t[j] + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[k_] + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // t = (t + m*n) / 2^32 with m chosen so the low limb cancels.
    const std::uint32_t m = t[0] * n0inv_;
    cur = t[0] + static_cast<std::uint64_t>(m) * nl[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < k_; ++j) {
      cur = t[j] + static_cast<std::uint64_t>(m) * nl[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = t[k_] + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    t[k_] = t[k_ + 1] + static_cast<std::uint32_t>(cur >> 32);
  }

  t.resize(k_ + 1);
  BigInt out = BigInt::from_limbs(std::move(t));
  if (out >= n_) out = out - n_;
  return out;
}

BigInt MontgomeryCtx::to_mont(const BigInt& a) const {
  return mul(a < n_ ? a : a % n_, r2_mod_n_);
}

BigInt MontgomeryCtx::from_mont(const BigInt& a) const {
  return mul(a, BigInt(1));
}

BigInt MontgomeryCtx::pow(const BigInt& base, const BigInt& exponent) const {
  const BigInt b = base < n_ ? base : base % n_;
  if (exponent.is_zero()) return BigInt(1);
  if (b.is_zero()) return BigInt();

  // Odd powers b^1, b^3, ..., b^15 in Montgomery form.
  std::array<BigInt, 8> odd;
  odd[0] = to_mont(b);
  const BigInt b2 = sqr(odd[0]);
  for (std::size_t i = 1; i < odd.size(); ++i) odd[i] = mul(odd[i - 1], b2);

  // Sliding 4-bit window, most-significant bit first. Zero bits cost one
  // squaring; each window of up to 4 bits costs one table multiply.
  BigInt acc = one();
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(exponent.bit_length()) - 1;
  while (i >= 0) {
    if (!exponent.bit(static_cast<std::size_t>(i))) {
      acc = sqr(acc);
      --i;
      continue;
    }
    std::ptrdiff_t low = i - 3 > 0 ? i - 3 : 0;
    while (!exponent.bit(static_cast<std::size_t>(low))) ++low;
    std::uint32_t window = 0;
    for (std::ptrdiff_t j = i; j >= low; --j) {
      acc = sqr(acc);
      window = (window << 1) | exponent.bit(static_cast<std::size_t>(j));
    }
    acc = mul(acc, odd[window >> 1]);
    i = low - 1;
  }
  return from_mont(acc);
}

}  // namespace veil::crypto
