#include "crypto/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace veil::crypto {

namespace {

struct Features {
  bool aesni = false;
  bool shani = false;
  bool sse41 = false;
};

Features detect() {
  Features f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.aesni = (ecx & (1u << 25)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.shani = (ebx & (1u << 29)) != 0;
  }
#endif
  return f;
}

const Features& features() {
  static const Features f = detect();
  return f;
}

}  // namespace

bool cpu_has_aesni() { return features().aesni; }
bool cpu_has_shani() { return features().shani; }
bool cpu_has_sse41() { return features().sse41; }

}  // namespace veil::crypto
