// Runtime CPU feature detection for the symmetric-crypto kernel dispatch.
//
// The AES and SHA-256 implementations each carry a hardware path (AES-NI,
// SHA-NI) and a portable software path; the choice is made once at
// startup from CPUID and can be overridden per-kernel for tests and
// benchmarks (see aes.hpp / sha256.hpp).
#pragma once

namespace veil::crypto {

/// AES-NI (AESENC/AESDEC) available on this CPU.
bool cpu_has_aesni();

/// SHA extensions (SHA256RNDS2/SHA256MSG1/SHA256MSG2) available.
bool cpu_has_shani();

/// SSE4.1, required by both hardware kernels' shuffle/blend setup.
bool cpu_has_sse41();

}  // namespace veil::crypto
