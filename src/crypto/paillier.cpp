#include "crypto/paillier.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::crypto {

namespace {
// L(x) = (x - 1) / n
BigInt paillier_l(const BigInt& x, const BigInt& n) {
  return (x - BigInt(1)) / n;
}
}  // namespace

common::Bytes PaillierPublicKey::encode() const {
  common::Writer w;
  w.bytes(n.to_bytes_be());
  return w.take();
}

PaillierPublicKey PaillierPublicKey::decode(common::BytesView data) {
  common::Reader r(data);
  PaillierPublicKey pk;
  pk.n = BigInt::from_bytes_be(r.bytes());
  pk.n_squared = pk.n * pk.n;
  pk.g = pk.n + BigInt(1);
  pk.mont_n2 = MontgomeryCtx::shared(pk.n_squared);
  return pk;
}

PaillierKeyPair PaillierKeyPair::generate(common::Rng& rng,
                                          std::size_t prime_bits) {
  PaillierKeyPair kp;
  BigInt p, q;
  do {
    p = BigInt::generate_prime(rng, prime_bits);
    q = BigInt::generate_prime(rng, prime_bits);
  } while (p == q);

  kp.public_.n = p * q;
  kp.public_.n_squared = kp.public_.n * kp.public_.n;
  kp.public_.g = kp.public_.n + BigInt(1);
  kp.public_.mont_n2 = MontgomeryCtx::shared(kp.public_.n_squared);
  kp.lambda_ = BigInt::lcm(p - BigInt(1), q - BigInt(1));
  // mu = (L(g^lambda mod n^2))^-1 mod n
  const BigInt gl = kp.public_.mont_n2->pow(kp.public_.g, kp.lambda_);
  kp.mu_ = paillier_l(gl, kp.public_.n).mod_inverse(kp.public_.n);
  return kp;
}

BigInt PaillierKeyPair::decrypt(const PaillierCiphertext& ct) const {
  if (ct.c.is_zero() || ct.c >= public_.n_squared) {
    throw common::CryptoError("paillier: malformed ciphertext");
  }
  const BigInt cl = public_.mont_n2->pow(ct.c, lambda_);
  return (paillier_l(cl, public_.n) * mu_) % public_.n;
}

PaillierCiphertext paillier_encrypt(const PaillierPublicKey& pk,
                                    const BigInt& m, common::Rng& rng) {
  if (m >= pk.n) throw common::CryptoError("paillier: plaintext >= n");
  BigInt r;
  do {
    r = BigInt::random_below(rng, pk.n);
  } while (r.is_zero() || BigInt::gcd(r, pk.n) != BigInt(1));
  // c = g^m * r^n mod n^2; with g = n+1, g^m = 1 + m*n (mod n^2).
  const BigInt gm = (BigInt(1) + m * pk.n) % pk.n_squared;
  const BigInt rn = pk.mont_n2 ? pk.mont_n2->pow(r, pk.n)
                               : r.mod_pow(pk.n, pk.n_squared);
  return PaillierCiphertext{(gm * rn) % pk.n_squared};
}

PaillierCiphertext paillier_add(const PaillierPublicKey& pk,
                                const PaillierCiphertext& a,
                                const PaillierCiphertext& b) {
  return PaillierCiphertext{(a.c * b.c) % pk.n_squared};
}

PaillierCiphertext paillier_mul_plain(const PaillierPublicKey& pk,
                                      const PaillierCiphertext& a,
                                      const BigInt& k) {
  return PaillierCiphertext{pk.mont_n2 ? pk.mont_n2->pow(a.c, k)
                                       : a.c.mod_pow(k, pk.n_squared)};
}

}  // namespace veil::crypto
