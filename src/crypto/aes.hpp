// AES-128/AES-256 (FIPS 197) with CTR and CBC modes, from scratch.
//
// Symmetric key encryption is the paper's §2.2 mechanism for keeping
// transaction data confidential from node administrators and from the
// ordering service. CTR is used for payload encryption; CBC+PKCS#7 is
// provided for completeness and for sealed TEE storage.
//
// Three block kernels back the same API, selected at runtime:
//   AesNi     — hardware AESENC/AESDEC, chosen automatically when CPUID
//               reports AES-NI; 8-wide pipelined for CTR/ECB.
//   TTable    — portable 4x1KiB T-table software path (the default
//               fallback; ~4-6x the byte-wise kernel).
//   Reference — the original byte-at-a-time S-box kernel, kept as the
//               known-good oracle for KAT cross-checks and as the
//               pre-optimization benchmark baseline.
// All three are verified against the NIST SP 800-38A vectors by
// tests/crypto/test_kat.cpp, and against each other on random inputs.
//
// An authenticated composition (encrypt-then-MAC with HMAC-SHA256) is
// exposed as `seal`/`open` — that is what higher layers use.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace veil::crypto {

/// Which AES block kernel services encrypt/decrypt calls.
enum class AesKernel { Auto, AesNi, TTable, Reference };

/// Override the process-wide kernel choice (tests/benchmarks). `Auto`
/// restores CPUID dispatch. Requesting `AesNi` on a CPU without AES-NI
/// silently degrades to `TTable` — query `active_aes_kernel()` to see
/// what actually runs.
void set_aes_kernel(AesKernel kernel);

/// The kernel that will service the next call, with `Auto` resolved.
AesKernel active_aes_kernel();

/// Human-readable name of the active kernel ("aesni", "ttable",
/// "reference") for benchmark context and docs.
const char* aes_kernel_name();

/// AES block cipher. Key must be 16 (AES-128) or 32 (AES-256) bytes.
class Aes {
 public:
  explicit Aes(common::BytesView key);

  static constexpr std::size_t kBlockSize = 16;

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  /// ECB over `n` consecutive blocks — the bulk entry point the mode
  /// loops use so the AES-NI kernel can pipeline independent blocks.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n) const;

  /// CTR keystream XOR: out[i] = in[i] ^ E(counter++) over `len` bytes.
  /// Counter increment is big-endian over the low 8 bytes.
  void ctr_xor(const std::uint8_t counter16[16], const std::uint8_t* in,
               std::uint8_t* out, std::size_t len) const;

  std::size_t key_size() const { return key_size_; }

 private:
  std::size_t key_size_;
  int rounds_;
  // Max 15 round keys of 16 bytes (AES-256).
  std::array<std::uint8_t, 240> round_keys_{};
  // Round keys as big-endian words, for the T-table kernel.
  std::array<std::uint32_t, 60> round_key_words_{};
  // AESIMC-transformed schedule for AESDEC (filled when AES-NI exists).
  std::array<std::uint8_t, 240> dec_round_keys_{};
  bool have_dec_schedule_ = false;
};

/// CTR mode. Nonce must be 16 bytes; encryption == decryption.
common::Bytes aes_ctr(common::BytesView key, common::BytesView nonce16,
                      common::BytesView data);

/// CBC mode with PKCS#7 padding. IV must be 16 bytes.
common::Bytes aes_cbc_encrypt(common::BytesView key, common::BytesView iv16,
                              common::BytesView plaintext);

/// Returns nullopt on bad padding (does not throw: wrong key is an
/// expected outcome when probing confidentiality in tests).
std::optional<common::Bytes> aes_cbc_decrypt(common::BytesView key,
                                             common::BytesView iv16,
                                             common::BytesView ciphertext);

/// Authenticated encryption: AES-CTR + HMAC-SHA256 (encrypt-then-MAC).
/// Output layout: nonce(16) || ciphertext || tag(32).
common::Bytes seal(common::BytesView key, common::BytesView plaintext,
                   common::BytesView nonce16);

/// Returns nullopt if the tag does not verify.
std::optional<common::Bytes> open(common::BytesView key,
                                  common::BytesView sealed);

}  // namespace veil::crypto
