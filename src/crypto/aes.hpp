// AES-128/AES-256 (FIPS 197) with CTR and CBC modes, from scratch.
//
// Symmetric key encryption is the paper's §2.2 mechanism for keeping
// transaction data confidential from node administrators and from the
// ordering service. CTR is used for payload encryption; CBC+PKCS#7 is
// provided for completeness and for sealed TEE storage.
//
// An authenticated composition (encrypt-then-MAC with HMAC-SHA256) is
// exposed as `seal`/`open` — that is what higher layers use.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace veil::crypto {

/// AES block cipher. Key must be 16 (AES-128) or 32 (AES-256) bytes.
class Aes {
 public:
  explicit Aes(common::BytesView key);

  static constexpr std::size_t kBlockSize = 16;

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  std::size_t key_size() const { return key_size_; }

 private:
  std::size_t key_size_;
  int rounds_;
  // Max 15 round keys of 16 bytes (AES-256).
  std::array<std::uint8_t, 240> round_keys_{};
};

/// CTR mode. Nonce must be 16 bytes; encryption == decryption.
common::Bytes aes_ctr(common::BytesView key, common::BytesView nonce16,
                      common::BytesView data);

/// CBC mode with PKCS#7 padding. IV must be 16 bytes.
common::Bytes aes_cbc_encrypt(common::BytesView key, common::BytesView iv16,
                              common::BytesView plaintext);

/// Returns nullopt on bad padding (does not throw: wrong key is an
/// expected outcome when probing confidentiality in tests).
std::optional<common::Bytes> aes_cbc_decrypt(common::BytesView key,
                                             common::BytesView iv16,
                                             common::BytesView ciphertext);

/// Authenticated encryption: AES-CTR + HMAC-SHA256 (encrypt-then-MAC).
/// Output layout: nonce(16) || ciphertext || tag(32).
common::Bytes seal(common::BytesView key, common::BytesView plaintext,
                   common::BytesView nonce16);

/// Returns nullopt if the tag does not verify.
std::optional<common::Bytes> open(common::BytesView key,
                                  common::BytesView sealed);

}  // namespace veil::crypto
