// Threshold ElGamal decryption.
//
// Extends the hybrid ElGamal scheme so that decryption requires t of n
// key-share holders — no single party (not even the dealer, once shares
// are distributed and the master secret erased) can decrypt alone.
//
// Enterprise-DLT use: escrowed access. Transaction payloads are encrypted
// to a committee key (e.g. regulators + consortium members); opening one
// later requires a quorum, which the ledger can record — addressing the
// §3.4 concern that some single party (orderer, cloud admin) otherwise
// ends up all-seeing.
//
// Construction: the secret x is Shamir-shared; the public key is y = g^x.
// Each holder i computes a partial decryption d_i = c1^{x_i} for a
// ciphertext (c1 = g^k, DEM part). Any t partials combine via Lagrange
// exponents to c1^x = y^k, the KEM shared secret.
#pragma once

#include <optional>
#include <vector>

#include "crypto/elgamal.hpp"
#include "crypto/shamir.hpp"

namespace veil::crypto {

struct KeyShare {
  std::uint64_t index = 0;  // 1-based share point
  BigInt value;             // x_i
};

struct PartialDecryption {
  std::uint64_t index = 0;
  BigInt value;  // c1^{x_i} mod p
};

class ThresholdElGamal {
 public:
  /// Deal a fresh committee key: n shares, threshold t.
  /// The dealer's transient master secret is not retained.
  static ThresholdElGamal deal(const Group& group, std::size_t threshold,
                               std::size_t share_count, common::Rng& rng);

  const PublicKey& public_key() const { return public_key_; }
  std::size_t threshold() const { return threshold_; }
  const std::vector<KeyShare>& shares() const { return shares_; }

  /// Encrypt to the committee (standard hybrid ElGamal under y).
  ElGamalCiphertext encrypt(common::BytesView plaintext,
                            common::Rng& rng) const;

  /// One holder's contribution for a ciphertext.
  static PartialDecryption partial_decrypt(const Group& group,
                                           const KeyShare& share,
                                           const ElGamalCiphertext& ct);

  /// Combine >= threshold partials and open the ciphertext. Returns
  /// nullopt if partials are insufficient/inconsistent or the DEM MAC
  /// fails (e.g. a corrupted partial).
  std::optional<common::Bytes> combine(
      const ElGamalCiphertext& ct,
      const std::vector<PartialDecryption>& partials) const;

 private:
  ThresholdElGamal(const Group& group, std::size_t threshold)
      : group_(&group), threshold_(threshold) {}

  const Group* group_;
  std::size_t threshold_;
  PublicKey public_key_;
  std::vector<KeyShare> shares_;
};

}  // namespace veil::crypto
