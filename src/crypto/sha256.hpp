// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the single hash function used throughout the framework: block
// linkage, transaction ids, Merkle trees, HMAC, Fiat–Shamir challenges and
// TEE measurements all reduce to it.
//
// Two compression kernels back the same API, selected at runtime:
//   ShaNi  — x86 SHA extensions (SHA256RNDS2/MSG1/MSG2), chosen
//            automatically when CPUID reports them.
//   Scalar — the portable FIPS 180-4 round loop.
// Both are verified against the FIPS 180-4 / RFC 4231 vectors by
// tests/crypto/test_kat.cpp, and against each other on random inputs.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace veil::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Which compression kernel services Sha256 calls.
enum class Sha256Kernel { Auto, ShaNi, Scalar };

/// Override the process-wide kernel choice (tests/benchmarks). `Auto`
/// restores CPUID dispatch; requesting `ShaNi` without hardware support
/// silently degrades to `Scalar`.
void set_sha256_kernel(Sha256Kernel kernel);

/// The kernel that will service the next call, with `Auto` resolved.
Sha256Kernel active_sha256_kernel();

/// Human-readable name of the active kernel ("sha_ni", "scalar").
const char* sha256_kernel_name();

/// Incremental SHA-256. Typical use: construct, update() any number of
/// times, finalize() once.
class Sha256 {
 public:
  Sha256();

  Sha256& update(common::BytesView data);
  Sha256& update(std::string_view data);

  /// Finalize and return the digest. The object must not be reused after.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);
  void process_blocks(const std::uint8_t* data, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience.
Digest sha256(common::BytesView data);
Digest sha256(std::string_view data);

/// Digest as an owned byte buffer (handy for serialization).
common::Bytes digest_bytes(const Digest& d);

/// Digest rendered as lowercase hex.
std::string digest_hex(const Digest& d);

}  // namespace veil::crypto
