#include "crypto/group.hpp"

#include "common/error.hpp"
#include "crypto/group_params.hpp"

namespace veil::crypto {

FixedBaseTable::FixedBaseTable(std::shared_ptr<const MontgomeryCtx> ctx,
                               BigInt base, std::size_t max_exp_bits)
    : ctx_(std::move(ctx)), base_(std::move(base)) {
  const std::size_t digits = (max_exp_bits + kWindowBits - 1) / kWindowBits;
  windows_.resize(digits);
  // cur = base^(16^i) in Montgomery form, advanced one window at a time.
  BigInt cur = ctx_->to_mont(base_);
  for (std::size_t i = 0; i < digits; ++i) {
    windows_[i][0] = ctx_->one();
    windows_[i][1] = cur;
    for (std::size_t d = 2; d < windows_[i].size(); ++d) {
      windows_[i][d] = ctx_->mul(windows_[i][d - 1], cur);
    }
    cur = ctx_->mul(windows_[i][15], cur);  // base^(16^(i+1))
  }
}

BigInt FixedBaseTable::pow(const BigInt& e) const {
  if (e.bit_length() > windows_.size() * kWindowBits) {
    return ctx_->pow(base_, e);
  }
  // Product of one table entry per 4-bit exponent digit; no squarings.
  BigInt acc = ctx_->one();
  const std::vector<std::uint32_t>& limbs = e.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const std::uint32_t digit = (limbs[i] >> (4 * j)) & 0xf;
      if (digit) acc = ctx_->mul(acc, windows_[i * 8 + j][digit]);
    }
  }
  return ctx_->from_mont(acc);
}

Group::Group(BigInt p, BigInt q, BigInt g, BigInt h)
    : p_(std::move(p)), q_(std::move(q)), g_(std::move(g)), h_(std::move(h)) {
  // The Montgomery context must exist before the is_element checks below,
  // which route through pow().
  mont_p_ = MontgomeryCtx::shared(p_);
  if (((p_ - BigInt(1)) % q_) != BigInt()) {
    throw common::CryptoError("Group: q does not divide p-1");
  }
  if (!is_element(g_) || !is_element(h_)) {
    throw common::CryptoError("Group: generator not in subgroup");
  }
  if (mont_p_) {
    // Scalars are mod q; +1 covers hash_to_element's e+1 lift. Anything
    // longer falls back to the generic windowed pow inside the table.
    const std::size_t exp_bits = q_.bit_length() + 1;
    g_table_ = std::make_shared<const FixedBaseTable>(mont_p_, g_, exp_bits);
    h_table_ = std::make_shared<const FixedBaseTable>(mont_p_, h_, exp_bits);
  }
}

const Group& Group::default_group() {
  static const Group group(BigInt::from_hex(params::kDefaultP),
                           BigInt::from_hex(params::kDefaultQ),
                           BigInt::from_hex(params::kDefaultG),
                           BigInt::from_hex(params::kDefaultH));
  return group;
}

const Group& Group::test_group() {
  static const Group group(BigInt::from_hex(params::kTestP),
                           BigInt::from_hex(params::kTestQ),
                           BigInt::from_hex(params::kTestG),
                           BigInt::from_hex(params::kTestH));
  return group;
}

Group Group::generate(common::Rng& rng, std::size_t p_bits,
                      std::size_t q_bits) {
  const BigInt q = BigInt::generate_prime(rng, q_bits);
  // Find p = q*k + 1 prime.
  BigInt p, k;
  for (;;) {
    k = BigInt::random_bits(rng, p_bits - q_bits);
    if (k.is_odd()) k += BigInt(1);  // keep p odd: q odd, k even
    p = q * k + BigInt(1);
    if (p.bit_length() != p_bits) continue;
    if (p.is_probable_prime(rng)) break;
  }
  // Generators: random base lifted into the order-q subgroup.
  const BigInt exp = (p - BigInt(1)) / q;
  BigInt g;
  do {
    g = BigInt::random_below(rng, p).mod_pow(exp, p);
  } while (g == BigInt(1) || g.is_zero());
  BigInt h;
  do {
    h = BigInt::random_below(rng, p).mod_pow(exp, p);
  } while (h == BigInt(1) || h.is_zero() || h == g);
  return Group(p, q, g, h);
}

BigInt Group::random_scalar(common::Rng& rng) const {
  BigInt s;
  do {
    s = BigInt::random_below(rng, q_);
  } while (s.is_zero());
  return s;
}

bool Group::is_element(const BigInt& x) const {
  if (x.is_zero() || x >= p_) return false;
  return x.mod_pow(q_, p_) == BigInt(1);
}

BigInt Group::hash_to_scalar(common::BytesView data) const {
  // Two counter-separated digests give 512 bits, enough that reduction
  // mod a 256-bit q is statistically uniform.
  const Digest d0 = Sha256().update("veil.h2s.0").update(data).finalize();
  const Digest d1 = Sha256().update("veil.h2s.1").update(data).finalize();
  common::Bytes wide = digest_bytes(d0);
  const common::Bytes more = digest_bytes(d1);
  wide.insert(wide.end(), more.begin(), more.end());
  return BigInt::from_bytes_be(wide) % q_;
}

BigInt Group::hash_to_element(common::BytesView data) const {
  const BigInt e = hash_to_scalar(data);
  return pow_g(e + BigInt(1));  // never the identity
}

}  // namespace veil::crypto
