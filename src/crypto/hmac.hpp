// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives per-purpose keys (channel keys, PDC dissemination keys,
// TEE sealing keys) from shared secrets established via the PKI layer.
#pragma once

#include <string_view>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace veil::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Digest hmac_sha256(common::BytesView key, common::BytesView data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest hkdf_extract(common::BytesView salt, common::BytesView ikm);

/// HKDF-Expand: derive `length` bytes (<= 255*32) bound to `info`.
common::Bytes hkdf_expand(const Digest& prk, std::string_view info,
                          std::size_t length);

/// Extract-then-expand convenience.
common::Bytes hkdf(common::BytesView salt, common::BytesView ikm,
                   std::string_view info, std::size_t length);

}  // namespace veil::crypto
