// Paillier additively homomorphic encryption (§2.2 "Homomorphic
// computation").
//
// Enables computing sums on encrypted values: an uninvolved validator can
// aggregate encrypted ledger entries and vouch for the arithmetic without
// seeing plaintext. The paper notes the approach is proof-of-concept
// grade, supports only limited operations, and is expensive — our bench
// (bench_crypto) quantifies that gap against AES and plain arithmetic.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/bigint.hpp"
#include "crypto/montgomery.hpp"

namespace veil::crypto {

struct PaillierPublicKey {
  BigInt n;         // modulus p*q
  BigInt n_squared; // cached n^2
  BigInt g;         // n + 1
  // Montgomery context for n^2 (odd, since n is a product of odd primes);
  // every encrypt/decrypt/scalar-multiply exponentiates mod n^2, so the
  // context lives with the key instead of being rebuilt per call.
  std::shared_ptr<const MontgomeryCtx> mont_n2;

  common::Bytes encode() const;
  static PaillierPublicKey decode(common::BytesView data);
};

struct PaillierCiphertext {
  BigInt c;
  bool operator==(const PaillierCiphertext&) const = default;
};

class PaillierKeyPair {
 public:
  /// Generate with two fresh primes of `prime_bits` each.
  static PaillierKeyPair generate(common::Rng& rng, std::size_t prime_bits = 256);

  const PaillierPublicKey& public_key() const { return public_; }

  /// Decrypt. Throws common::CryptoError on malformed ciphertext.
  BigInt decrypt(const PaillierCiphertext& ct) const;

 private:
  PaillierPublicKey public_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // (L(g^lambda mod n^2))^-1 mod n
};

/// Encrypt `m` (must be < n) under `pk`.
PaillierCiphertext paillier_encrypt(const PaillierPublicKey& pk,
                                    const BigInt& m, common::Rng& rng);

/// Homomorphic addition: Dec(add(E(a), E(b))) == a + b (mod n).
PaillierCiphertext paillier_add(const PaillierPublicKey& pk,
                                const PaillierCiphertext& a,
                                const PaillierCiphertext& b);

/// Homomorphic scalar multiply: Dec(mul_plain(E(a), k)) == a*k (mod n).
PaillierCiphertext paillier_mul_plain(const PaillierPublicKey& pk,
                                      const PaillierCiphertext& a,
                                      const BigInt& k);

}  // namespace veil::crypto
