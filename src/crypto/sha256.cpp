#include "crypto/sha256.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "crypto/aes_kernels.hpp"
#include "crypto/cpu_features.hpp"

namespace veil::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

// One SHA-256 round with explicit register naming; the caller unrolls
// eight of these per iteration so the variable rotation costs nothing.
inline void sha_round(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                      std::uint32_t& d, std::uint32_t e, std::uint32_t f,
                      std::uint32_t g, std::uint32_t& h, std::uint32_t k,
                      std::uint32_t w) {
  const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
  const std::uint32_t ch = (e & f) ^ (~e & g);
  const std::uint32_t temp1 = h + s1 + ch + k + w;
  const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
  const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
  d += temp1;
  h = temp1 + s0 + maj;
}

void scalar_process_block(std::uint32_t* state, const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  // Unrolled 8 rounds per iteration: renaming replaces the seed's
  // eight-way register shuffle at the bottom of every round.
  for (int i = 0; i < 64; i += 8) {
    sha_round(a, b, c, d, e, f, g, h, kRoundConstants[i], w[i]);
    sha_round(h, a, b, c, d, e, f, g, kRoundConstants[i + 1], w[i + 1]);
    sha_round(g, h, a, b, c, d, e, f, kRoundConstants[i + 2], w[i + 2]);
    sha_round(f, g, h, a, b, c, d, e, kRoundConstants[i + 3], w[i + 3]);
    sha_round(e, f, g, h, a, b, c, d, kRoundConstants[i + 4], w[i + 4]);
    sha_round(d, e, f, g, h, a, b, c, kRoundConstants[i + 5], w[i + 5]);
    sha_round(c, d, e, f, g, h, a, b, kRoundConstants[i + 6], w[i + 6]);
    sha_round(b, c, d, e, f, g, h, a, kRoundConstants[i + 7], w[i + 7]);
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

std::atomic<Sha256Kernel> g_sha_kernel{Sha256Kernel::Auto};

Sha256Kernel resolve_sha_kernel() {
  const Sha256Kernel k = g_sha_kernel.load(std::memory_order_relaxed);
  const bool hw =
#if defined(VEIL_HAVE_SHANI)
      cpu_has_shani() && cpu_has_sse41();
#else
      false;
#endif
  if (k == Sha256Kernel::Auto) {
    return hw ? Sha256Kernel::ShaNi : Sha256Kernel::Scalar;
  }
  if (k == Sha256Kernel::ShaNi && !hw) return Sha256Kernel::Scalar;
  return k;
}

}  // namespace

void set_sha256_kernel(Sha256Kernel kernel) {
  g_sha_kernel.store(kernel, std::memory_order_relaxed);
}

Sha256Kernel active_sha256_kernel() { return resolve_sha_kernel(); }

const char* sha256_kernel_name() {
  return resolve_sha_kernel() == Sha256Kernel::ShaNi ? "sha_ni" : "scalar";
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_block(const std::uint8_t* block) {
  process_blocks(block, 1);
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t nblocks) {
  if (nblocks == 0) return;
#if defined(VEIL_HAVE_SHANI)
  if (resolve_sha_kernel() == Sha256Kernel::ShaNi) {
    shani_process_blocks(state_.data(), data, nblocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < nblocks; ++i) {
    scalar_process_block(state_.data(), data + 64 * i);
  }
}

Sha256& Sha256::update(common::BytesView data) {
  if (finalized_) throw common::CryptoError("Sha256: update after finalize");
  if (data.empty()) return *this;  // data.data() may be null; memcpy forbids it
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  const std::size_t bulk = (data.size() - offset) / 64;
  if (bulk > 0) {
    process_blocks(data.data() + offset, bulk);
    offset += 64 * bulk;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view data) {
  return update(common::BytesView(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Digest Sha256::finalize() {
  if (finalized_) throw common::CryptoError("Sha256: double finalize");
  finalized_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  std::array<std::uint8_t, 8> len_bytes;
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  finalized_ = false;  // allow the internal updates
  update(common::BytesView(pad.data(), pad_len));
  update(common::BytesView(len_bytes.data(), 8));
  finalized_ = true;

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(common::BytesView data) { return Sha256().update(data).finalize(); }

Digest sha256(std::string_view data) { return Sha256().update(data).finalize(); }

common::Bytes digest_bytes(const Digest& d) {
  return common::Bytes(d.begin(), d.end());
}

std::string digest_hex(const Digest& d) {
  return common::to_hex(common::BytesView(d.data(), d.size()));
}

}  // namespace veil::crypto
