// Schnorr (prime-order subgroup) parameters over Z_p*.
//
// All discrete-log based primitives — Schnorr signatures, Pedersen
// commitments, sigma-protocol ZKPs, Idemix-style credentials — operate in
// a subgroup of order q inside Z_p* (DSA-style parameters, q | p-1).
// Fixed parameter sets were generated once with tools/gen_group_params and
// are compiled in, mirroring how production systems pin RFC 3526 groups.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"

namespace veil::crypto {

class Group {
 public:
  /// p: field prime; q: subgroup order (q | p-1); g: generator of the
  /// order-q subgroup; h: second independent generator (for Pedersen),
  /// derived as SHA-based hash-to-group so log_g(h) is unknown.
  Group(BigInt p, BigInt q, BigInt g, BigInt h);

  /// 1024-bit p / 256-bit q production-style parameters.
  static const Group& default_group();

  /// 512-bit p / 160-bit q parameters for fast unit tests.
  static const Group& test_group();

  /// Generate fresh parameters (slow; used by the parameter tool and by
  /// property tests that should not depend on the pinned groups).
  static Group generate(common::Rng& rng, std::size_t p_bits,
                        std::size_t q_bits);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  const BigInt& g() const { return g_; }
  const BigInt& h() const { return h_; }

  /// g^e mod p.
  BigInt pow_g(const BigInt& e) const { return g_.mod_pow(e, p_); }
  /// h^e mod p.
  BigInt pow_h(const BigInt& e) const { return h_.mod_pow(e, p_); }
  /// a*b mod p.
  BigInt mul(const BigInt& a, const BigInt& b) const { return (a * b) % p_; }
  /// a^e mod p.
  BigInt pow(const BigInt& a, const BigInt& e) const { return a.mod_pow(e, p_); }
  /// Multiplicative inverse mod p.
  BigInt inv(const BigInt& a) const { return a.mod_inverse(p_); }

  /// Uniform scalar in [1, q).
  BigInt random_scalar(common::Rng& rng) const;

  /// True iff x is a member of the order-q subgroup (x^q == 1, x != 0).
  bool is_element(const BigInt& x) const;

  /// Map arbitrary bytes to a scalar mod q (for Fiat-Shamir challenges).
  BigInt hash_to_scalar(common::BytesView data) const;

  /// Map arbitrary bytes to a group element (hash-to-group via exponent).
  BigInt hash_to_element(common::BytesView data) const;

 private:
  BigInt p_, q_, g_, h_;
};

}  // namespace veil::crypto
