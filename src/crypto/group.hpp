// Schnorr (prime-order subgroup) parameters over Z_p*.
//
// All discrete-log based primitives — Schnorr signatures, Pedersen
// commitments, sigma-protocol ZKPs, Idemix-style credentials — operate in
// a subgroup of order q inside Z_p* (DSA-style parameters, q | p-1).
// Fixed parameter sets were generated once with tools/gen_group_params and
// are compiled in, mirroring how production systems pin RFC 3526 groups.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/sha256.hpp"

namespace veil::crypto {

/// Precomputed powers of a fixed base modulo an odd n, for the
/// repeated-generator exponentiations that dominate Pedersen commitments,
/// Schnorr signing, ElGamal keygen and the ZKP prover/verifier: with
/// base^(d·16^i) tabulated for every 4-bit digit position, an
/// exponentiation costs one Montgomery multiply per digit and no
/// squarings at all.
class FixedBaseTable {
 public:
  /// Tabulates powers covering exponents up to `max_exp_bits` bits;
  /// longer exponents fall back to the generic windowed pow.
  FixedBaseTable(std::shared_ptr<const MontgomeryCtx> ctx, BigInt base,
                 std::size_t max_exp_bits);

  /// base^e mod n.
  BigInt pow(const BigInt& e) const;
  const BigInt& base() const { return base_; }

 private:
  static constexpr std::size_t kWindowBits = 4;
  std::shared_ptr<const MontgomeryCtx> ctx_;
  BigInt base_;
  // windows_[i][d] = base^(d * 16^i) in Montgomery form.
  std::vector<std::array<BigInt, 16>> windows_;
};

class Group {
 public:
  /// p: field prime; q: subgroup order (q | p-1); g: generator of the
  /// order-q subgroup; h: second independent generator (for Pedersen),
  /// derived as SHA-based hash-to-group so log_g(h) is unknown.
  Group(BigInt p, BigInt q, BigInt g, BigInt h);

  /// 1024-bit p / 256-bit q production-style parameters.
  static const Group& default_group();

  /// 512-bit p / 160-bit q parameters for fast unit tests.
  static const Group& test_group();

  /// Generate fresh parameters (slow; used by the parameter tool and by
  /// property tests that should not depend on the pinned groups).
  static Group generate(common::Rng& rng, std::size_t p_bits,
                        std::size_t q_bits);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  const BigInt& g() const { return g_; }
  const BigInt& h() const { return h_; }

  /// g^e mod p (fixed-base table).
  BigInt pow_g(const BigInt& e) const {
    return g_table_ ? g_table_->pow(e) : g_.mod_pow(e, p_);
  }
  /// h^e mod p (fixed-base table).
  BigInt pow_h(const BigInt& e) const {
    return h_table_ ? h_table_->pow(e) : h_.mod_pow(e, p_);
  }
  /// a*b mod p.
  BigInt mul(const BigInt& a, const BigInt& b) const { return (a * b) % p_; }
  /// a^e mod p (Montgomery context cached in the group).
  BigInt pow(const BigInt& a, const BigInt& e) const {
    return mont_p_ ? mont_p_->pow(a, e) : a.mod_pow(e, p_);
  }
  /// Multiplicative inverse mod p.
  BigInt inv(const BigInt& a) const { return a.mod_inverse(p_); }

  /// The group's Montgomery context for Z_p* arithmetic.
  const std::shared_ptr<const MontgomeryCtx>& mont() const { return mont_p_; }

  /// Uniform scalar in [1, q).
  BigInt random_scalar(common::Rng& rng) const;

  /// True iff x is a member of the order-q subgroup (x^q == 1, x != 0).
  bool is_element(const BigInt& x) const;

  /// Map arbitrary bytes to a scalar mod q (for Fiat-Shamir challenges).
  BigInt hash_to_scalar(common::BytesView data) const;

  /// Map arbitrary bytes to a group element (hash-to-group via exponent).
  BigInt hash_to_element(common::BytesView data) const;

 private:
  BigInt p_, q_, g_, h_;
  // Shared so Group keeps value semantics: copies reuse the same
  // precomputation (all members above are immutable after construction).
  std::shared_ptr<const MontgomeryCtx> mont_p_;
  std::shared_ptr<const FixedBaseTable> g_table_, h_table_;
};

}  // namespace veil::crypto
