#include "crypto/threshold.hpp"

#include <set>

#include "common/error.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace veil::crypto {

ThresholdElGamal ThresholdElGamal::deal(const Group& group,
                                        std::size_t threshold,
                                        std::size_t share_count,
                                        common::Rng& rng) {
  if (threshold == 0 || threshold > share_count) {
    throw common::CryptoError("ThresholdElGamal: invalid threshold");
  }
  ThresholdElGamal out(group, threshold);
  // Master secret, immediately shared and forgotten.
  const BigInt secret = group.random_scalar(rng);
  out.public_key_ = PublicKey{group.pow_g(secret)};
  const Shamir shamir(group.q());
  for (const Share& s : shamir.split(secret, threshold, share_count, rng)) {
    out.shares_.push_back(KeyShare{s.x, s.y});
  }
  return out;
}

ElGamalCiphertext ThresholdElGamal::encrypt(common::BytesView plaintext,
                                            common::Rng& rng) const {
  return elgamal_encrypt(*group_, public_key_, plaintext, rng);
}

PartialDecryption ThresholdElGamal::partial_decrypt(
    const Group& group, const KeyShare& share, const ElGamalCiphertext& ct) {
  return PartialDecryption{share.index,
                           group.pow(ct.ephemeral_key, share.value)};
}

std::optional<common::Bytes> ThresholdElGamal::combine(
    const ElGamalCiphertext& ct,
    const std::vector<PartialDecryption>& partials) const {
  if (partials.size() < threshold_) return std::nullopt;
  std::set<std::uint64_t> seen;
  for (const PartialDecryption& p : partials) {
    if (!seen.insert(p.index).second) return std::nullopt;  // duplicates
  }

  // Lagrange interpolation in the exponent at x = 0, over the first
  // `threshold_` partials.
  const BigInt& q = group_->q();
  BigInt shared(1);
  const std::size_t t = threshold_;
  for (std::size_t i = 0; i < t; ++i) {
    BigInt num(1), den(1);
    const BigInt xi(partials[i].index);
    for (std::size_t j = 0; j < t; ++j) {
      if (i == j) continue;
      const BigInt xj(partials[j].index);
      num = (num * xj) % q;
      den = (den * ((xj + q - (xi % q)) % q)) % q;
    }
    const BigInt lambda = (num * den.mod_inverse(q)) % q;
    shared = group_->mul(shared, group_->pow(partials[i].value, lambda));
  }

  const common::Bytes key =
      hkdf({}, shared.to_bytes_be(), "veil.elgamal.kem", 32);
  return open(key, ct.sealed);
}

}  // namespace veil::crypto
