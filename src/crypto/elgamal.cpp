#include "crypto/elgamal.hpp"

#include "common/serialize.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace veil::crypto {

namespace {
common::Bytes derive_key(const BigInt& shared) {
  return hkdf({}, shared.to_bytes_be(), "veil.elgamal.kem", 32);
}
}  // namespace

common::Bytes ElGamalCiphertext::encode() const {
  common::Writer w;
  w.bytes(ephemeral_key.to_bytes_be());
  w.bytes(sealed);
  return w.take();
}

ElGamalCiphertext ElGamalCiphertext::decode(common::BytesView data) {
  common::Reader r(data);
  ElGamalCiphertext ct;
  ct.ephemeral_key = BigInt::from_bytes_be(r.bytes());
  ct.sealed = r.bytes();
  return ct;
}

ElGamalCiphertext elgamal_encrypt(const Group& group,
                                  const PublicKey& recipient,
                                  common::BytesView plaintext,
                                  common::Rng& rng) {
  const BigInt k = group.random_scalar(rng);
  const BigInt shared = group.pow(recipient.y, k);
  ElGamalCiphertext ct;
  ct.ephemeral_key = group.pow_g(k);
  ct.sealed = seal(derive_key(shared), plaintext, rng.next_bytes(16));
  return ct;
}

std::optional<common::Bytes> elgamal_decrypt(const KeyPair& recipient,
                                             const ElGamalCiphertext& ct) {
  const Group& group = recipient.group();
  if (!group.is_element(ct.ephemeral_key)) return std::nullopt;
  const BigInt shared = group.pow(ct.ephemeral_key, recipient.secret());
  return open(derive_key(shared), ct.sealed);
}

}  // namespace veil::crypto
