#include "crypto/commitment.hpp"

namespace veil::crypto {

std::pair<Commitment, Opening> Pedersen::commit(const BigInt& value,
                                                common::Rng& rng) const {
  Opening opening{value % group_->q(), group_->random_scalar(rng)};
  return {commit_with(opening.value, opening.blinding), opening};
}

Commitment Pedersen::commit_with(const BigInt& value,
                                 const BigInt& blinding) const {
  const BigInt v = value % group_->q();
  const BigInt b = blinding % group_->q();
  return Commitment{group_->mul(group_->pow_g(v), group_->pow_h(b))};
}

bool Pedersen::open(const Commitment& commitment, const Opening& opening) const {
  return commit_with(opening.value, opening.blinding) == commitment;
}

Commitment Pedersen::add(const Commitment& a, const Commitment& b) const {
  return Commitment{group_->mul(a.c, b.c)};
}

Opening Pedersen::add_openings(const Opening& a, const Opening& b) const {
  return Opening{(a.value + b.value) % group_->q(),
                 (a.blinding + b.blinding) % group_->q()};
}

}  // namespace veil::crypto
