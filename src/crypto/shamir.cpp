#include "crypto/shamir.hpp"

#include <set>

#include "common/error.hpp"

namespace veil::crypto {

Shamir::Shamir(BigInt prime) : prime_(std::move(prime)) {
  if (prime_ < BigInt(3)) {
    throw common::CryptoError("Shamir: prime too small");
  }
}

std::vector<Share> Shamir::split(const BigInt& secret, std::size_t threshold,
                                 std::size_t share_count,
                                 common::Rng& rng) const {
  if (threshold == 0 || threshold > share_count) {
    throw common::CryptoError("Shamir: invalid threshold");
  }
  if (secret >= prime_) {
    throw common::CryptoError("Shamir: secret >= field prime");
  }
  // Random polynomial of degree threshold-1 with constant term = secret.
  std::vector<BigInt> coeffs;
  coeffs.push_back(secret);
  for (std::size_t i = 1; i < threshold; ++i) {
    coeffs.push_back(BigInt::random_below(rng, prime_));
  }
  std::vector<Share> shares;
  shares.reserve(share_count);
  for (std::size_t i = 1; i <= share_count; ++i) {
    const BigInt x(static_cast<std::uint64_t>(i));
    // Horner evaluation.
    BigInt y;
    for (std::size_t j = coeffs.size(); j-- > 0;) {
      y = (y * x + coeffs[j]) % prime_;
    }
    shares.push_back(Share{i, y});
  }
  return shares;
}

BigInt Shamir::reconstruct(const std::vector<Share>& shares) const {
  if (shares.empty()) throw common::CryptoError("Shamir: no shares");
  std::set<std::uint64_t> xs;
  for (const Share& s : shares) {
    if (!xs.insert(s.x).second) {
      throw common::CryptoError("Shamir: duplicate share point");
    }
  }
  // Lagrange interpolation at 0: sum_i y_i * prod_{j!=i} x_j/(x_j - x_i).
  BigInt secret;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    BigInt num(1), den(1);
    const BigInt xi(shares[i].x);
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (i == j) continue;
      const BigInt xj(shares[j].x);
      num = (num * xj) % prime_;
      const BigInt diff =
          (xj + prime_ - (xi % prime_)) % prime_;  // xj - xi mod p
      den = (den * diff) % prime_;
    }
    const BigInt lagrange = (num * den.mod_inverse(prime_)) % prime_;
    secret = (secret + shares[i].y * lagrange) % prime_;
  }
  return secret;
}

Share Shamir::add(const Share& a, const Share& b) const {
  if (a.x != b.x) {
    throw common::CryptoError("Shamir: adding shares at different points");
  }
  return Share{a.x, (a.y + b.y) % prime_};
}

Share Shamir::scale(const Share& s, const BigInt& k) const {
  return Share{s.x, (s.y * k) % prime_};
}

}  // namespace veil::crypto
