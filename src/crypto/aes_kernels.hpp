// Internal entry points of the hardware symmetric-crypto kernels.
//
// These are implemented in separate translation units (aes_ni.cpp,
// sha_ni.cpp) compiled with the matching -m flags; they must only be
// called after the corresponding cpu_has_*() check succeeded, otherwise
// the process dies on an illegal instruction. Dispatch lives in aes.cpp
// and sha256.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace veil::crypto {

#if defined(VEIL_HAVE_AESNI)
/// Build the equivalent-inverse-cipher round keys (AESIMC of the middle
/// encryption round keys) used by AESDEC. `enc` and `dec` are
/// 16*(rounds+1)-byte schedules.
void aesni_make_dec_schedule(const std::uint8_t* enc, int rounds,
                             std::uint8_t* dec);

/// ECB-encrypt `n` consecutive 16-byte blocks (pipelined 8-wide).
void aesni_encrypt_blocks(const std::uint8_t* enc, int rounds,
                          const std::uint8_t* in, std::uint8_t* out,
                          std::size_t n);

/// ECB-decrypt `n` consecutive 16-byte blocks. `enc` supplies the first
/// and last round keys, `dec` the AESIMC-transformed middle ones.
void aesni_decrypt_blocks(const std::uint8_t* enc, const std::uint8_t* dec,
                          int rounds, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t n);

/// CTR keystream-XOR over `len` bytes starting from `counter16`
/// (big-endian increment of the low 8 bytes, matching aes_ctr).
void aesni_ctr_xor(const std::uint8_t* enc, int rounds,
                   const std::uint8_t counter16[16], const std::uint8_t* in,
                   std::uint8_t* out, std::size_t len);
#endif

#if defined(VEIL_HAVE_SHANI)
/// Compress `nblocks` consecutive 64-byte blocks into `state` (the eight
/// working variables a..h as uint32).
void shani_process_blocks(std::uint32_t state[8], const std::uint8_t* data,
                          std::size_t nblocks);
#endif

}  // namespace veil::crypto
