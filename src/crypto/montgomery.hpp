// Montgomery-form modular arithmetic (REDC) for odd moduli.
//
// Every public-key mechanism in the framework — Schnorr, Pedersen, sigma
// ZKPs, Paillier, threshold ElGamal, Idemix credentials — bottoms out in
// modular exponentiation. The naive path reduces with a full Knuth
// division after every multiply; Montgomery form replaces that division
// with two multiplications and a shift (REDC), and the windowed
// exponentiation cuts the multiply count by ~4x on top. Contexts are
// cheap to build but not free (one R^2 mod n division), so callers with a
// long-lived modulus hold one context and reuse it; `shared()` provides a
// process-wide cache keyed by modulus for call sites that only see the
// modulus value (e.g. BigInt::mod_pow itself).
//
// Only odd moduli are representable (REDC requires gcd(n, 2^32) == 1);
// `create`/`shared` return nullptr for even, zero, or unit moduli and
// callers fall back to the classic square-and-multiply path.
#pragma once

#include <memory>

#include "crypto/bigint.hpp"

namespace veil::crypto {

class MontgomeryCtx {
 public:
  /// Context for an odd modulus n > 1, or nullptr when n is unusable
  /// (zero, one, or even) and the caller must fall back.
  static std::shared_ptr<const MontgomeryCtx> create(const BigInt& n);

  /// Process-wide cache keyed by modulus value, so repeated mod_pow calls
  /// against the same group/key modulus reuse one context instead of
  /// recomputing R^2 mod n per call.
  static std::shared_ptr<const MontgomeryCtx> shared(const BigInt& n);

  const BigInt& modulus() const { return n_; }

  /// a*R mod n — bring a (any magnitude) into the Montgomery domain.
  BigInt to_mont(const BigInt& a) const;
  /// a*R^-1 mod n — leave the Montgomery domain.
  BigInt from_mont(const BigInt& a) const;
  /// Montgomery product: mul(aR, bR) = abR mod n. Inputs must be < n.
  BigInt mul(const BigInt& a, const BigInt& b) const;
  BigInt sqr(const BigInt& a) const { return mul(a, a); }
  /// Montgomery form of 1 (R mod n).
  const BigInt& one() const { return r_mod_n_; }

  /// (base ^ exponent) mod n, normal domain in and out. 4-bit sliding
  /// window over an odd-powers table.
  BigInt pow(const BigInt& base, const BigInt& exponent) const;

 private:
  explicit MontgomeryCtx(const BigInt& n);

  BigInt n_;
  std::size_t k_ = 0;        // limb count of n_
  std::uint32_t n0inv_ = 0;  // -n^-1 mod 2^32
  BigInt r_mod_n_;           // R mod n, R = 2^(32k)
  BigInt r2_mod_n_;          // R^2 mod n, converts into the domain
};

}  // namespace veil::crypto
