// Pedersen commitments.
//
// C = g^value * h^blinding — perfectly hiding, computationally binding.
// Used by the ZKP layer (range proofs, proof of funds) and by the
// Idemix-style anonymous credential system.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/group.hpp"

namespace veil::crypto {

struct Commitment {
  BigInt c;

  common::Bytes encode() const { return c.to_bytes_be(); }
  bool operator==(const Commitment&) const = default;
};

/// A commitment together with its opening (kept by the committer).
struct Opening {
  BigInt value;
  BigInt blinding;
};

class Pedersen {
 public:
  explicit Pedersen(const Group& group) : group_(&group) {}

  /// Commit to `value` with a fresh random blinding factor.
  std::pair<Commitment, Opening> commit(const BigInt& value,
                                        common::Rng& rng) const;

  /// Commit with an explicit blinding factor.
  Commitment commit_with(const BigInt& value, const BigInt& blinding) const;

  /// Check an opening against a commitment.
  bool open(const Commitment& commitment, const Opening& opening) const;

  /// Homomorphic addition: commit(a)*commit(b) commits to a+b with the
  /// summed blinding factors.
  Commitment add(const Commitment& a, const Commitment& b) const;
  Opening add_openings(const Opening& a, const Opening& b) const;

  const Group& group() const { return *group_; }

 private:
  const Group* group_;
};

}  // namespace veil::crypto
