#include "crypto/signature.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/hmac.hpp"

namespace veil::crypto {

BigInt schnorr_challenge(const Group& group, const BigInt& commitment,
                         const BigInt& y, common::BytesView message) {
  common::Writer w;
  w.bytes(commitment.to_bytes_be());
  w.bytes(y.to_bytes_be());
  w.bytes(message);
  return group.hash_to_scalar(w.data());
}

common::Bytes PublicKey::encode() const {
  common::Writer w;
  w.bytes(y.to_bytes_be());
  return w.take();
}

PublicKey PublicKey::decode(common::BytesView data) {
  common::Reader r(data);
  return PublicKey{BigInt::from_bytes_be(r.bytes())};
}

std::string PublicKey::fingerprint() const {
  return digest_hex(sha256(encode())).substr(0, 16);
}

common::Bytes Signature::encode() const {
  common::Writer w;
  w.bytes(challenge.to_bytes_be());
  w.bytes(response.to_bytes_be());
  w.bytes(commitment.to_bytes_be());
  return w.take();
}

Signature Signature::decode(common::BytesView data) {
  common::Reader r(data);
  Signature sig;
  sig.challenge = BigInt::from_bytes_be(r.bytes());
  sig.response = BigInt::from_bytes_be(r.bytes());
  sig.commitment = BigInt::from_bytes_be(r.bytes());
  return sig;
}

KeyPair::KeyPair(const Group& group, BigInt secret)
    : group_(&group), secret_(std::move(secret)) {
  public_key_.y = group.pow_g(secret_);
}

KeyPair KeyPair::generate(const Group& group, common::Rng& rng) {
  return KeyPair(group, group.random_scalar(rng));
}

KeyPair KeyPair::from_secret(const Group& group, const BigInt& secret) {
  const BigInt reduced = secret % group.q();
  if (reduced.is_zero()) {
    throw common::CryptoError("KeyPair: secret reduces to zero");
  }
  return KeyPair(group, reduced);
}

Signature KeyPair::sign(common::BytesView message) const {
  const Group& group = *group_;
  // Deterministic nonce: k = HMAC(secret, message) reduced mod q, nonzero.
  common::Bytes seed = secret_.to_bytes_be();
  Digest mac = hmac_sha256(seed, message);
  BigInt k = BigInt::from_bytes_be(digest_bytes(mac)) % group.q();
  while (k.is_zero()) {
    mac = hmac_sha256(seed, digest_bytes(mac));
    k = BigInt::from_bytes_be(digest_bytes(mac)) % group.q();
  }

  const BigInt commitment = group.pow_g(k);  // R = g^k
  const BigInt e =
      schnorr_challenge(group, commitment, public_key_.y, message);
  // s = k - x*e mod q.
  const BigInt xe = (secret_ * e) % group.q();
  const BigInt s = (k + group.q() - xe) % group.q();
  return Signature{e, s, commitment};
}

bool verify(const Group& group, const PublicKey& pub,
            common::BytesView message, const Signature& sig) {
  if (sig.challenge >= group.q() || sig.response >= group.q()) return false;
  if (!group.is_element(pub.y)) return false;
  // The recomputed commitment R' = g^s * y^e must equal the transmitted
  // one AND hash to the transmitted challenge. The equation forces R into
  // the order-q subgroup (its right-hand side is a product of subgroup
  // elements), so no separate membership check on R is needed.
  const BigInt r_prime =
      group.mul(group.pow_g(sig.response), group.pow(pub.y, sig.challenge));
  if (sig.commitment != r_prime) return false;
  const BigInt e = schnorr_challenge(group, r_prime, pub.y, message);
  return e == sig.challenge;
}

}  // namespace veil::crypto
