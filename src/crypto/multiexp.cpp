#include "crypto/multiexp.hpp"

#include <algorithm>
#include <array>

#include "common/thread_pool.hpp"

namespace veil::crypto {

namespace {

constexpr std::size_t kWindowBits = 4;

/// The j-th 4-bit digit of e (little-endian digit order). Window digits
/// never straddle a 32-bit limb because 32 is a multiple of 4.
std::uint32_t nibble(const BigInt& e, std::size_t j) {
  const std::size_t bit = j * kWindowBits;
  const std::size_t limb = bit / 32;
  const auto& limbs = e.limbs();
  if (limb >= limbs.size()) return 0;
  return (limbs[limb] >> (bit % 32)) & 0xF;
}

}  // namespace

BigInt multi_exp(const MontgomeryCtx& ctx, const std::vector<ExpTerm>& terms) {
  // Per-term digit tables: table[t][d] = base_t^d in Montgomery form.
  // Terms with a zero exponent contribute 1 and are skipped; a zero base
  // with a nonzero exponent zeroes the whole product.
  std::vector<std::array<BigInt, 16>> tables(terms.size());
  std::vector<char> active(terms.size(), 0);
  std::size_t max_digits = 0;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    const std::size_t digits =
        (terms[t].exponent.bit_length() + kWindowBits - 1) / kWindowBits;
    if (digits == 0) continue;
    if (terms[t].base.is_zero()) return BigInt(0);
    active[t] = 1;
    if (digits > max_digits) max_digits = digits;
    auto& table = tables[t];
    table[1] = ctx.to_mont(terms[t].base);
    for (std::size_t d = 2; d < 16; ++d) {
      table[d] = ctx.mul(table[d - 1], table[1]);
    }
  }

  // One shared squaring chain, most-significant digit first; every term
  // folds its digit into the accumulator between squarings.
  BigInt acc = ctx.one();
  for (std::size_t j = max_digits; j-- > 0;) {
    if (j + 1 != max_digits) {
      for (std::size_t s = 0; s < kWindowBits; ++s) acc = ctx.sqr(acc);
    }
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (!active[t]) continue;
      const std::uint32_t d = nibble(terms[t].exponent, j);
      if (d != 0) acc = ctx.mul(acc, tables[t][d]);
    }
  }
  return ctx.from_mont(acc);
}

BigInt multi_exp_parallel(const MontgomeryCtx& ctx,
                          const std::vector<ExpTerm>& terms) {
  // Below this the per-chunk squaring chains cost more than the pool
  // buys back; with an inline pool there is nothing to overlap at all.
  constexpr std::size_t kMinChunk = 8;
  common::ThreadPool& pool = common::ThreadPool::global();
  if (terms.size() < 2 * kMinChunk || pool.thread_count() == 1) {
    return multi_exp(ctx, terms);
  }
  std::size_t chunks = std::min(2 * pool.thread_count(),
                                terms.size() / kMinChunk);
  if (chunks < 2) chunks = 2;
  const std::size_t stride = (terms.size() + chunks - 1) / chunks;
  const std::size_t n = (terms.size() + stride - 1) / stride;
  // Each chunk is an independent multi_exp; the partial products then
  // recombine in chunk order. Regrouping a product is exact, so the
  // result does not depend on the chunk count (and therefore not on
  // VEIL_THREADS).
  auto partials = pool.parallel_map(n, [&](std::size_t c) {
    const std::size_t lo = c * stride;
    const std::size_t hi = std::min(terms.size(), lo + stride);
    return multi_exp(
        ctx, std::vector<ExpTerm>(terms.begin() + lo, terms.begin() + hi));
  });
  BigInt acc = ctx.to_mont(partials[0]);
  for (std::size_t c = 1; c < partials.size(); ++c) {
    acc = ctx.mul(acc, ctx.to_mont(partials[c]));
  }
  return ctx.from_mont(acc);
}

}  // namespace veil::crypto
