// SHA-256 compression via the x86 SHA extensions (compiled with
// -msha -msse4.1). The round structure follows the canonical Intel
// sequence: state lives in two XMM registers in ABEF/CDGH order, message
// words advance through SHA256MSG1/SHA256MSG2, and each SHA256RNDS2
// executes two rounds. Verified against the scalar kernel by the NIST
// KAT suite (tests/crypto/test_kat.cpp).
#include "crypto/aes_kernels.hpp"

#if defined(VEIL_HAVE_SHANI)

#include <immintrin.h>

namespace veil::crypto {

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m128i k128(int i) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(kK + 4 * i));
}

}  // namespace

void shani_process_blocks(std::uint32_t state[8], const std::uint8_t* data,
                          std::size_t nblocks) {
  // Big-endian byte shuffle for message loads.
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Pack (a,b,c,d,e,f,g,h) into STATE0 = ABEF, STATE1 = CDGH.
  __m128i tmp =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));  // DCBA
  __m128i st1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);  // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);   // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);        // CDGH

  while (nblocks > 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;

    // m[j] holds message words W[4j..4j+3]; the schedule advances in
    // place: iteration i consumes m[i%4] for rounds 4i..4i+3 and (from
    // i >= 3 on) extends the schedule four words ahead via MSG1/MSG2.
    __m128i m[4];
    for (int j = 0; j < 4; ++j) {
      m[j] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * j)),
          kShuffle);
    }
    for (int i = 0; i <= 14; ++i) {
      const __m128i cur = m[i % 4];
      __m128i msg = _mm_add_epi32(cur, k128(i));
      st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
      if (i >= 3) {
        const __m128i t = _mm_alignr_epi8(cur, m[(i + 3) % 4], 4);
        m[(i + 1) % 4] = _mm_add_epi32(m[(i + 1) % 4], t);
        m[(i + 1) % 4] = _mm_sha256msg2_epu32(m[(i + 1) % 4], cur);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
      // The last two iterations' sigma0 prefetches feed words past W63.
      if (i >= 1 && i <= 12) {
        m[(i + 3) % 4] = _mm_sha256msg1_epu32(m[(i + 3) % 4], cur);
      }
    }

    // Rounds 60-63.
    __m128i msg = _mm_add_epi32(m[3], k128(15));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);

    data += 64;
    --nblocks;
  }

  // Unpack ABEF/CDGH back to (a..h).
  tmp = _mm_shuffle_epi32(st0, 0x1B);       // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);       // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);    // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);       // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), st1);
}

}  // namespace veil::crypto

#endif  // VEIL_HAVE_SHANI
