// Schnorr signatures over a prime-order subgroup.
//
// The framework's digital-signature scheme: identity certificates,
// transaction endorsements, block signatures, notary attestations and TEE
// quotes are all Schnorr signatures. Nonces are derived deterministically
// (RFC 6979 style, via HMAC) so signing needs no RNG and never reuses a
// nonce.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/group.hpp"

namespace veil::crypto {

struct PublicKey {
  BigInt y;  // y = g^x mod p

  common::Bytes encode() const;
  static PublicKey decode(common::BytesView data);

  /// Stable fingerprint (hex SHA-256 of the encoding) used as a key id.
  std::string fingerprint() const;

  bool operator==(const PublicKey&) const = default;
};

struct Signature {
  BigInt challenge;   // e = H(R || y || m)
  BigInt response;    // s = k - x*e mod q
  // R = g^k, carried on the wire. The (e, s) form alone can only be
  // checked by recomputing the hash per signature; with R transmitted the
  // verifier additionally has the group equation g^s * y^e == R, which is
  // what BatchVerifier folds into one random-linear-combination check
  // across a whole block. Verification requires both the hash binding and
  // the equation, so a signature remains exactly as hard to forge as
  // before.
  BigInt commitment;

  common::Bytes encode() const;
  static Signature decode(common::BytesView data);

  bool operator==(const Signature&) const = default;
};

class KeyPair {
 public:
  /// Generate a fresh keypair in `group`.
  static KeyPair generate(const Group& group, common::Rng& rng);

  /// Deterministic keypair from a secret seed (used for one-time keys
  /// derived from a master secret).
  static KeyPair from_secret(const Group& group, const BigInt& secret);

  const PublicKey& public_key() const { return public_key_; }
  const BigInt& secret() const { return secret_; }
  const Group& group() const { return *group_; }

  Signature sign(common::BytesView message) const;

 private:
  KeyPair(const Group& group, BigInt secret);

  const Group* group_;
  BigInt secret_;
  PublicKey public_key_;
};

/// Verify `sig` on `message` under `pub` in `group`.
bool verify(const Group& group, const PublicKey& pub,
            common::BytesView message, const Signature& sig);

/// The Fiat-Shamir challenge e = H(R || y || m) used by sign/verify.
/// Exposed so blind-issuance protocols (pki/idemix) can compute the same
/// challenge over a blinded commitment.
BigInt schnorr_challenge(const Group& group, const BigInt& commitment,
                         const BigInt& y, common::BytesView message);

}  // namespace veil::crypto
