#include "crypto/merkle.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"

namespace veil::crypto {

namespace {

// Below this many hash computations the pool's dispatch overhead beats
// the win; per-block trees in the simulations are usually tiny.
constexpr std::size_t kParallelHashThreshold = 64;

}  // namespace

Digest MerkleTree::hash_leaf(common::BytesView leaf, common::BytesView salt) {
  return Sha256().update("veil.merkle.leaf").update(salt).update(leaf).finalize();
}

Digest MerkleTree::hash_node(const Digest& left, const Digest& right) {
  return Sha256()
      .update("veil.merkle.node")
      .update(common::BytesView(left.data(), left.size()))
      .update(common::BytesView(right.data(), right.size()))
      .finalize();
}

namespace {

// Build all interior levels from a vector of leaf hashes. Odd nodes are
// paired with themselves (Bitcoin-style duplication).
std::vector<std::vector<Digest>> build_levels(std::vector<Digest> level0) {
  std::vector<std::vector<Digest>> levels;
  levels.push_back(std::move(level0));
  while (levels.back().size() > 1) {
    const auto& prev = levels.back();
    const std::size_t pairs = (prev.size() + 1) / 2;
    std::vector<Digest> next;
    const auto node_at = [&prev](std::size_t i) {
      const Digest& left = prev[2 * i];
      const Digest& right =
          (2 * i + 1 < prev.size()) ? prev[2 * i + 1] : prev[2 * i];
      return MerkleTree::hash_node(left, right);
    };
    if (pairs >= kParallelHashThreshold) {
      next = common::ThreadPool::global().parallel_map(pairs, node_at);
    } else {
      next.reserve(pairs);
      for (std::size_t i = 0; i < pairs; ++i) next.push_back(node_at(i));
    }
    levels.push_back(std::move(next));
  }
  return levels;
}

}  // namespace

MerkleTree MerkleTree::build(const std::vector<common::Bytes>& leaves,
                             const std::vector<common::Bytes>& salts) {
  if (leaves.empty()) {
    throw common::CryptoError("MerkleTree: no leaves");
  }
  if (!salts.empty() && salts.size() != leaves.size()) {
    throw common::CryptoError("MerkleTree: salt count mismatch");
  }
  static const common::Bytes kNoSalt;
  const auto leaf_at = [&](std::size_t i) {
    return hash_leaf(leaves[i], salts.empty() ? kNoSalt : salts[i]);
  };
  std::vector<Digest> hashes;
  if (leaves.size() >= kParallelHashThreshold) {
    hashes = common::ThreadPool::global().parallel_map(leaves.size(), leaf_at);
  } else {
    hashes.reserve(leaves.size());
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      hashes.push_back(leaf_at(i));
    }
  }
  MerkleTree tree;
  tree.leaf_count_ = leaves.size();
  tree.levels_ = build_levels(std::move(hashes));
  return tree;
}

const Digest& MerkleTree::root() const { return levels_.back().front(); }

MerkleProof MerkleTree::prove(std::size_t leaf_index) const {
  if (leaf_index >= leaf_count_) {
    throw common::CryptoError("MerkleTree::prove: index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  proof.leaf_count = leaf_count_;
  std::size_t idx = leaf_index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (idx % 2 == 0) ? idx + 1 : idx - 1;
    proof.siblings.push_back(sibling < nodes.size() ? nodes[sibling]
                                                    : nodes[idx]);
    idx /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, common::BytesView leaf,
                        common::BytesView salt, const MerkleProof& proof) {
  if (proof.leaf_index >= proof.leaf_count) return false;
  Digest current = hash_leaf(leaf, salt);
  std::size_t idx = proof.leaf_index;
  std::size_t width = proof.leaf_count;
  for (const Digest& sibling : proof.siblings) {
    current = (idx % 2 == 0) ? hash_node(current, sibling)
                             : hash_node(sibling, current);
    idx /= 2;
    width = (width + 1) / 2;
  }
  return width == 1 && current == root;
}

TearOff TearOff::create(const std::vector<common::Bytes>& leaves,
                        const std::vector<common::Bytes>& salts,
                        const std::vector<std::size_t>& visible) {
  TearOff out;
  out.leaf_count_ = leaves.size();
  std::vector<bool> is_visible(leaves.size(), false);
  for (std::size_t idx : visible) {
    if (idx >= leaves.size()) {
      throw common::CryptoError("TearOff: visible index out of range");
    }
    is_visible[idx] = true;
  }
  static const common::Bytes kNoSalt;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const common::Bytes& salt = salts.empty() ? kNoSalt : salts[i];
    if (is_visible[i]) {
      out.visible_[i] = {leaves[i], salt};
    } else {
      out.hidden_[i] = MerkleTree::hash_leaf(leaves[i], salt);
    }
  }
  return out;
}

Digest TearOff::compute_root() const {
  std::vector<Digest> hashes(leaf_count_);
  for (const auto& [idx, payload] : visible_) {
    hashes[idx] = MerkleTree::hash_leaf(payload.first, payload.second);
  }
  for (const auto& [idx, digest] : hidden_) {
    hashes[idx] = digest;
  }
  // Roll up exactly like MerkleTree::build.
  std::vector<Digest> level = std::move(hashes);
  while (level.size() > 1) {
    std::vector<Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Digest& left = level[i];
      const Digest& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(MerkleTree::hash_node(left, right));
    }
    level = std::move(next);
  }
  return level.front();
}

bool TearOff::verify_against(const Digest& expected_root) const {
  if (leaf_count_ == 0) return false;
  return compute_root() == expected_root;
}

bool TearOff::is_visible(std::size_t index) const {
  return visible_.contains(index);
}

std::optional<common::Bytes> TearOff::leaf(std::size_t index) const {
  const auto it = visible_.find(index);
  if (it == visible_.end()) return std::nullopt;
  return it->second.first;
}

std::size_t TearOff::encoded_size() const { return encode().size(); }

common::Bytes TearOff::encode() const {
  common::Writer w;
  w.varint(leaf_count_);
  w.varint(visible_.size());
  for (const auto& [idx, payload] : visible_) {
    w.varint(idx);
    w.bytes(payload.first);
    w.bytes(payload.second);
  }
  w.varint(hidden_.size());
  for (const auto& [idx, digest] : hidden_) {
    w.varint(idx);
    w.raw(common::BytesView(digest.data(), digest.size()));
  }
  return w.take();
}

TearOff TearOff::decode(common::BytesView data) {
  common::Reader r(data);
  TearOff out;
  out.leaf_count_ = r.varint();
  const std::uint64_t visible_count = r.varint();
  for (std::uint64_t i = 0; i < visible_count; ++i) {
    const std::size_t idx = r.varint();
    common::Bytes payload = r.bytes();
    common::Bytes salt = r.bytes();
    out.visible_[idx] = {std::move(payload), std::move(salt)};
  }
  const std::uint64_t hidden_count = r.varint();
  for (std::uint64_t i = 0; i < hidden_count; ++i) {
    const std::size_t idx = r.varint();
    const common::Bytes raw = r.raw(kSha256DigestSize);
    Digest d;
    std::copy(raw.begin(), raw.end(), d.begin());
    out.hidden_[idx] = d;
  }
  if (out.visible_.size() + out.hidden_.size() != out.leaf_count_) {
    throw common::CryptoError("TearOff::decode: leaf count mismatch");
  }
  return out;
}

}  // namespace veil::crypto
