#include "crypto/bigint.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "crypto/montgomery.hpp"

namespace veil::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;

// Below this operand size the O(n^2) schoolbook kernel wins on constant
// factors; above it one Karatsuba split (recursively) is faster.
constexpr std::size_t kKaratsubaLimbs = 24;

// Small primes for sieving before Miller-Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}  // namespace

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_hex(std::string_view hex) {
  // Collect nibble values first (validating), then pack limbs directly
  // from the least-significant end — linear instead of the quadratic
  // shift-and-add accumulation.
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(hex.size());
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else if (c == ' ' || c == '\n' || c == '\t') continue;
    else throw common::CryptoError("BigInt::from_hex: invalid character");
    nibbles.push_back(static_cast<std::uint8_t>(v));
  }
  BigInt out;
  const std::size_t n = nibbles.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = nibbles[n - 1 - i];
    out.limbs_[i / 8] |= v << (4 * (i % 8));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_bytes_be(common::BytesView bytes) {
  BigInt out;
  const std::size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t b = bytes[n - 1 - i];
    out.limbs_[i / 4] |= b << (8 * (i % 4));
  }
  out.trim();
  return out;
}

BigInt BigInt::from_limbs(std::vector<std::uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

BigInt BigInt::from_decimal(std::string_view dec) {
  BigInt out;
  const BigInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      throw common::CryptoError("BigInt::from_decimal: invalid character");
    }
    out = out * ten + BigInt(static_cast<std::uint64_t>(c - '0'));
  }
  return out;
}

common::Bytes BigInt::to_bytes_be(std::size_t min_len) const {
  common::Bytes out;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint32_t limb = limbs_[i];
    out.push_back(static_cast<std::uint8_t>(limb));
    out.push_back(static_cast<std::uint8_t>(limb >> 8));
    out.push_back(static_cast<std::uint8_t>(limb >> 16));
    out.push_back(static_cast<std::uint8_t>(limb >> 24));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  while (out.size() < min_len) out.push_back(0);
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  const common::Bytes bytes = to_bytes_be();
  std::string hex = common::to_hex(bytes);
  // Strip a single leading zero nibble for minimal form.
  if (hex.size() > 1 && hex[0] == '0') hex.erase(0, 1);
  return hex;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt v = *this;
  const BigInt ten(10);
  while (!v.is_zero()) {
    const DivMod dm = v.divmod(ten);
    const std::uint64_t digit = dm.remainder.is_zero() ? 0 : dm.remainder.limbs_[0];
    out.push_back(static_cast<char>('0' + digit));
    v = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t BigInt::to_u64() const {
  if (limbs_.size() > 2) throw common::CryptoError("BigInt::to_u64: overflow");
  std::uint64_t v = 0;
  if (limbs_.size() >= 1) v = limbs_[0];
  if (limbs_.size() == 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::strong_ordering BigInt::operator<=>(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigInt BigInt::add_magnitudes(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::sub_magnitudes(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  return add_magnitudes(*this, rhs);
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (*this < rhs) throw common::CryptoError("BigInt: negative result");
  return sub_magnitudes(*this, rhs);
}

BigInt BigInt::karatsuba_mul(const BigInt& a, const BigInt& b) {
  // Split both operands at m limbs: a = a1*B^m + a0, b = b1*B^m + b0, so
  // a*b = z2*B^2m + z1*B^m + z0 with z1 = (a0+a1)(b0+b1) - z0 - z2 —
  // three half-size products instead of four.
  const std::size_t m = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  const auto split = [m](const BigInt& v, BigInt& lo, BigInt& hi) {
    const std::size_t cut = std::min(m, v.limbs_.size());
    lo.limbs_.assign(v.limbs_.begin(),
                     v.limbs_.begin() + static_cast<std::ptrdiff_t>(cut));
    lo.trim();
    hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(cut),
                     v.limbs_.end());
    hi.trim();
  };
  BigInt a0, a1, b0, b1;
  split(a, a0, a1);
  split(b, b0, b1);
  const BigInt z0 = a0 * b0;
  const BigInt z2 = a1 * b1;
  const BigInt z1 = (a0 + a1) * (b0 + b1) - z0 - z2;
  return z0 + (z1 << (32 * m)) + (z2 << (64 * m));
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigInt();
  if (limbs_.size() >= kKaratsubaLimbs && rhs.limbs_.size() >= kKaratsubaLimbs) {
    return karatsuba_mul(*this, rhs);
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t a = limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(out.limbs_[i + j]) + a * rhs.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      const std::uint64_t cur = static_cast<std::uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw common::CryptoError("BigInt: division by zero");
  if (*this < divisor) return {BigInt(), *this};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.resize(limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(rem)};
  }

  // Knuth algorithm D. Normalize so the divisor's top limb has its high bit
  // set, making the quotient-digit estimate off by at most 2.
  int shift = 0;
  std::uint32_t top = divisor.limbs_.back();
  while (!(top & 0x80000000u)) {
    top <<= 1;
    ++shift;
  }
  const BigInt u = *this << static_cast<std::size_t>(shift);
  const BigInt v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply and subtract: un[j..j+n] -= qhat * vn.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (t < 0) {
        t += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un[i + j] = static_cast<std::uint32_t>(t);
    }
    std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add back.
      t += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      t += static_cast<std::int64_t>(carry2);
    }
    un[j + n] = static_cast<std::uint32_t>(t);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = r >> static_cast<std::size_t>(shift);
  return {q, r};
}

BigInt BigInt::operator/(const BigInt& rhs) const { return divmod(rhs).quotient; }

BigInt BigInt::operator%(const BigInt& rhs) const { return divmod(rhs).remainder; }

BigInt BigInt::mod_pow(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.is_zero()) throw common::CryptoError("mod_pow: zero modulus");
  if (modulus == BigInt(1)) return BigInt();
  // Odd moduli with non-trivial exponents go through the Montgomery
  // context (cached per modulus); very short exponents and even moduli
  // stay on the classic path, where the window setup would not pay off.
  if (modulus.is_odd() && exponent.bit_length() > 16) {
    if (const auto ctx = MontgomeryCtx::shared(modulus)) {
      return ctx->pow(*this, exponent);
    }
  }
  BigInt result(1);
  BigInt base = *this % modulus;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = (result * base) % modulus;
    base = (base * base) % modulus;
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& modulus) const {
  if (modulus.is_zero()) throw common::CryptoError("mod_inverse: zero modulus");
  // Extended Euclid with explicit signs for the Bezout coefficient of a.
  BigInt r0 = modulus, r1 = *this % modulus;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const DivMod dm = r0.divmod(r1);
    // (t0, t1) <- (t1, t0 - q*t1) with sign tracking.
    const BigInt qt1 = dm.quotient * t1;
    BigInt next;
    bool next_neg;
    if (t0_neg == t1_neg) {
      // t0 - q*t1 where both have sign s: result sign depends on magnitudes.
      if (t0 >= qt1) {
        next = t0 - qt1;
        next_neg = t0_neg;
      } else {
        next = qt1 - t0;
        next_neg = !t0_neg;
      }
    } else {
      next = t0 + qt1;
      next_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = next;
    t1_neg = next_neg;
    r0 = r1;
    r1 = dm.remainder;
  }
  if (r0 != BigInt(1)) {
    throw common::CryptoError("mod_inverse: not invertible");
  }
  if (t0_neg) return modulus - (t0 % modulus);
  return t0 % modulus;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  return (a / gcd(a, b)) * b;
}

BigInt BigInt::random_below(common::Rng& rng, const BigInt& bound) {
  if (bound.is_zero()) {
    throw common::CryptoError("random_below: zero bound");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  // Rejection sampling on the top byte mask.
  const std::uint8_t mask =
      static_cast<std::uint8_t>(0xff >> (8 * bytes - bits));
  for (;;) {
    common::Bytes buf = rng.next_bytes(bytes);
    buf[0] &= mask;
    BigInt candidate = from_bytes_be(buf);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(common::Rng& rng, std::size_t bits) {
  if (bits == 0) return BigInt();
  const std::size_t bytes = (bits + 7) / 8;
  common::Bytes buf = rng.next_bytes(bytes);
  const std::uint8_t mask = static_cast<std::uint8_t>(0xff >> (8 * bytes - bits));
  buf[0] &= mask;
  buf[0] |= static_cast<std::uint8_t>(1u << ((bits - 1) % 8));  // force top bit
  return from_bytes_be(buf);
}

bool BigInt::is_probable_prime(common::Rng& rng, int rounds) const {
  if (*this < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(p);
    if (*this == bp) return true;
    if ((*this % bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^r.
  const BigInt n_minus_1 = *this - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  // The sieve already rejected even candidates, so a Montgomery context
  // always exists here; build it once (not via the shared cache — each
  // candidate is a fresh modulus and would only churn it) and reuse it
  // across all rounds. The squaring chain stays in the Montgomery domain:
  // the representation is a bijection on [0, n), so comparing against the
  // Montgomery form of n-1 is exact.
  const auto ctx = MontgomeryCtx::create(*this);
  const BigInt minus_one_mont = ctx->to_mont(n_minus_1);

  // All witness bases are drawn serially up front, so the rng stream is
  // a function of `rounds` alone — independent of thread count and of
  // which round (if any) finds a witness.
  std::vector<BigInt> bases;
  bases.reserve(static_cast<std::size_t>(rounds));
  for (int round = 0; round < rounds; ++round) {
    bases.push_back(BigInt(2) + random_below(rng, *this - BigInt(4)));
  }

  const auto is_witness = [&](const BigInt& a) {
    const BigInt x = ctx->pow(a, d);
    if (x == BigInt(1) || x == n_minus_1) return false;
    BigInt xm = ctx->to_mont(x);
    for (std::size_t i = 0; i + 1 < r; ++i) {
      xm = ctx->sqr(xm);
      if (xm == minus_one_mont) return false;
    }
    return true;
  };

  // The first base runs serially: nearly every composite that survives
  // the sieve is rejected here with a single pow, and fanning out for
  // those would cost more than it saves. Only candidates that pass go
  // through the remaining rounds in parallel (the common case for actual
  // primes, which must survive every round anyway).
  if (rounds > 0 && is_witness(bases[0])) return false;
  if (rounds <= 1) return true;

  std::atomic<bool> composite{false};
  common::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(rounds - 1), [&](std::size_t i) {
        if (composite.load(std::memory_order_relaxed)) return;
        if (is_witness(bases[i + 1])) {
          composite.store(true, std::memory_order_relaxed);
        }
      });
  return !composite.load(std::memory_order_relaxed);
}

BigInt BigInt::generate_prime(common::Rng& rng, std::size_t bits) {
  if (bits < 8) throw common::CryptoError("generate_prime: bits too small");
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate += BigInt(1);
    if (candidate.is_probable_prime(rng)) return candidate;
  }
}

BigInt BigInt::generate_safe_prime(common::Rng& rng, std::size_t bits) {
  for (;;) {
    const BigInt q = generate_prime(rng, bits - 1);
    const BigInt p = (q << 1) + BigInt(1);
    if (p.is_probable_prime(rng)) return p;
  }
}

}  // namespace veil::crypto
