// Batch verification of Schnorr signatures and dlog proofs.
//
// N checks of the form g^{s_i} * y_i^{e_i} == R_i (signatures) or
// base_i^{s_i} == t_i * y_i^{c_i} (dlog proofs) collapse into one
// random-linear-combination identity
//
//   g^{Σ z_i·s_i} · Π y_i^{z_i·e_i} == Π R_i^{z_i}   (mod p)
//
// evaluated with two simultaneous multi-exponentiations (multiexp.hpp),
// so the squaring chain is paid once per batch instead of once per
// signature. An honest batch always passes; a batch containing any item
// that fails its per-item equation passes with probability ~1/2^64 over
// the randomizers z_i.
//
// Soundness notes (docs/crypto_performance.md has the full argument):
//  * Per-item pre-checks run exactly: scalar ranges, the Fiat-Shamir hash
//    binding e_i == H(R_i || y_i || m_i), and subgroup membership of each
//    public key (memoized — endorser keys repeat heavily). The hash
//    binding pins every commitment byte-for-byte, so an adversary cannot
//    adjust R_i to engineer cancellation; only the response scalars are
//    covered probabilistically by the z_i.
//  * Randomizers are 64-bit and forced odd. Z_p* has composite cofactor
//    (p-1)/q, and an element with an order-2 cofactor component (always
//    available as -1) would slip past an even randomizer half the time;
//    odd z_i kill that class deterministically. Residual small odd
//    cofactor factors are accepted and documented — matching the repo's
//    structural (not entropic) security stance.
//  * z_i come from a seeded verifier-local rng: deterministic for a given
//    verifier history (replays and thread-count sweeps reproduce bit
//    identical outcomes) but not known to the party assembling the batch.
//  * A failing batch BISECTS: each half re-checks under fresh
//    randomizers, and singleton leaves fall back to the exact per-item
//    verify()/verify_dlog(). Accept/reject per item is therefore always
//    exact — a convicted index is proof-grade (it feeds the Evidence
//    path) and Detect mode loses nothing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/signature.hpp"
#include "crypto/zkp.hpp"

namespace veil::crypto {

/// Result of one BatchVerifier::verify() call. `invalid` holds the
/// add-order indices of every item that fails its exact per-item check,
/// in ascending order; the counters expose how much work the batch path
/// actually did (benches and tests assert against them).
struct BatchOutcome {
  bool all_valid = true;
  std::vector<std::size_t> invalid;
  std::uint64_t batch_checks = 0;      // RLC evaluations (incl. bisection)
  std::uint64_t bisect_steps = 0;      // range splits taken
  std::uint64_t single_fallbacks = 0;  // exact per-item leaf verifications
};

class BatchVerifier {
 public:
  /// `seed` drives the randomizer stream. Two verifiers with the same
  /// seed and the same call history produce identical outcomes.
  BatchVerifier(const Group& group, std::uint64_t seed);

  /// Queue one Schnorr signature check (same semantics as verify()).
  /// Returns the item's index within the pending batch.
  std::size_t add_signature(const PublicKey& pub, common::BytesView message,
                            const Signature& sig);

  /// Queue one dlog-proof check (same semantics as verify_dlog()).
  std::size_t add_dlog(const BigInt& base, const BigInt& y,
                       const DlogProof& proof, common::BytesView context);

  std::size_t pending() const { return items_.size(); }

  /// Run the combined check over everything queued since the last call
  /// and clear the queue.
  BatchOutcome verify();

  /// Cumulative instrumentation across the verifier's lifetime.
  struct Stats {
    std::uint64_t items = 0;
    std::uint64_t batches = 0;
    std::uint64_t rejected_items = 0;
    std::uint64_t key_cache_hits = 0;
    std::uint64_t key_cache_misses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Item {
    bool is_sig = true;
    // Normalized relation base^{a} * y^{b} == t, base implicit g for
    // signatures.
    BigInt base;  // dlog only
    BigInt y;
    BigInt a;  // response scalar
    BigInt b;  // challenge scalar (reduced mod q)
    BigInt t;  // transmitted commitment
    bool precheck_failed = false;
    // Originals for the exact singleton fallback.
    PublicKey pub;
    common::Bytes message;
    Signature sig;
    DlogProof proof;
    common::Bytes context;
  };

  bool is_member_cached(const BigInt& x);
  bool verify_single(const Item& item) const;
  /// RLC identity over items_[indices]; true = batch passes.
  bool rlc_check(const std::vector<std::size_t>& indices,
                 BatchOutcome& outcome);
  void collect_invalid(const std::vector<std::size_t>& indices,
                       BatchOutcome& outcome);

  const Group* group_;
  common::Rng rng_;
  std::vector<Item> items_;
  // Memoized subgroup-membership results keyed by element value. Endorser
  // and notary keys recur across every block, so after warm-up the
  // membership pow is paid once per distinct key, not once per signature.
  std::map<BigInt, bool> member_cache_;
  Stats stats_;
};

}  // namespace veil::crypto
