// AES-NI block kernels (compiled with -maes -msse4.1; see
// src/crypto/CMakeLists.txt). Callers dispatch through aes.cpp only
// after cpu_has_aesni() confirmed the instructions exist.
//
// The encryption schedule is the plain FIPS 197 byte schedule computed
// by Aes's constructor — AES-NI consumes it directly. Only decryption
// needs a derived schedule (AESIMC of the middle round keys, applied in
// reverse), which aesni_make_dec_schedule produces once per key.
#include "crypto/aes_kernels.hpp"

#if defined(VEIL_HAVE_AESNI)

#include <immintrin.h>

#include <cstring>

namespace veil::crypto {

namespace {

inline __m128i load_rk(const std::uint8_t* schedule, int round) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(schedule + 16 * round));
}

inline __m128i encrypt_one(__m128i block, const __m128i* rk, int rounds) {
  block = _mm_xor_si128(block, rk[0]);
  for (int r = 1; r < rounds; ++r) block = _mm_aesenc_si128(block, rk[r]);
  return _mm_aesenclast_si128(block, rk[rounds]);
}

}  // namespace

void aesni_make_dec_schedule(const std::uint8_t* enc, int rounds,
                             std::uint8_t* dec) {
  // dec[r] = AESIMC(enc[r]) for the middle rounds; first and last are
  // copied untransformed (AESDECLAST / initial XOR use the raw keys).
  std::memcpy(dec, enc, 16);
  for (int r = 1; r < rounds; ++r) {
    const __m128i k = _mm_aesimc_si128(load_rk(enc, r));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dec + 16 * r), k);
  }
  std::memcpy(dec + 16 * rounds, enc + 16 * rounds, 16);
}

void aesni_encrypt_blocks(const std::uint8_t* enc, int rounds,
                          const std::uint8_t* in, std::uint8_t* out,
                          std::size_t n) {
  __m128i rk[15];
  for (int r = 0; r <= rounds; ++r) rk[r] = load_rk(enc, r);

  // 8-wide: AESENC has multi-cycle latency but single-cycle throughput,
  // so independent blocks fill the pipeline.
  while (n >= 8) {
    __m128i b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
      b[i] = _mm_xor_si128(b[i], rk[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int i = 0; i < 8; ++i) b[i] = _mm_aesenc_si128(b[i], rk[r]);
    }
    for (int i = 0; i < 8; ++i) {
      b[i] = _mm_aesenclast_si128(b[i], rk[rounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b[i]);
    }
    in += 128;
    out += 128;
    n -= 8;
  }
  while (n > 0) {
    const __m128i b = encrypt_one(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)), rk, rounds);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
    in += 16;
    out += 16;
    --n;
  }
}

void aesni_decrypt_blocks(const std::uint8_t* enc, const std::uint8_t* dec,
                          int rounds, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t n) {
  __m128i rk[15];
  rk[0] = load_rk(enc, 0);
  for (int r = 1; r < rounds; ++r) rk[r] = load_rk(dec, r);
  rk[rounds] = load_rk(enc, rounds);

  while (n >= 4) {
    __m128i b[4];
    for (int i = 0; i < 4; ++i) {
      b[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
      b[i] = _mm_xor_si128(b[i], rk[rounds]);
    }
    for (int r = rounds - 1; r >= 1; --r) {
      for (int i = 0; i < 4; ++i) b[i] = _mm_aesdec_si128(b[i], rk[r]);
    }
    for (int i = 0; i < 4; ++i) {
      b[i] = _mm_aesdeclast_si128(b[i], rk[0]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i), b[i]);
    }
    in += 64;
    out += 64;
    n -= 4;
  }
  while (n > 0) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    b = _mm_xor_si128(b, rk[rounds]);
    for (int r = rounds - 1; r >= 1; --r) b = _mm_aesdec_si128(b, rk[r]);
    b = _mm_aesdeclast_si128(b, rk[0]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
    in += 16;
    out += 16;
    --n;
  }
}

void aesni_ctr_xor(const std::uint8_t* enc, int rounds,
                   const std::uint8_t counter16[16], const std::uint8_t* in,
                   std::uint8_t* out, std::size_t len) {
  __m128i rk[15];
  for (int r = 0; r <= rounds; ++r) rk[r] = load_rk(enc, r);

  std::uint8_t ctr[16];
  std::memcpy(ctr, counter16, 16);
  const auto bump = [&ctr] {
    for (int i = 15; i >= 8; --i) {
      if (++ctr[i] != 0) break;
    }
  };

  std::uint8_t blocks[8 * 16];
  while (len >= 8 * 16) {
    for (int i = 0; i < 8; ++i) {
      std::memcpy(blocks + 16 * i, ctr, 16);
      bump();
    }
    __m128i b[8];
    for (int i = 0; i < 8; ++i) {
      b[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16 * i));
      b[i] = _mm_xor_si128(b[i], rk[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int i = 0; i < 8; ++i) b[i] = _mm_aesenc_si128(b[i], rk[r]);
    }
    for (int i = 0; i < 8; ++i) {
      b[i] = _mm_aesenclast_si128(b[i], rk[rounds]);
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                       _mm_xor_si128(b[i], d));
    }
    in += 128;
    out += 128;
    len -= 128;
  }
  while (len > 0) {
    const __m128i ks = encrypt_one(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr)), rk, rounds);
    bump();
    std::uint8_t stream[16];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(stream), ks);
    const std::size_t take = len < 16 ? len : 16;
    for (std::size_t i = 0; i < take; ++i) out[i] = in[i] ^ stream[i];
    in += take;
    out += take;
    len -= take;
  }
}

}  // namespace veil::crypto

#endif  // VEIL_HAVE_AESNI
