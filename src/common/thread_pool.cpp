#include "common/thread_pool.hpp"

#include <cstdlib>
#include <memory>

namespace veil::common {

namespace {

// Set while a pool worker (or a thread already inside a parallel region)
// is on the stack; nested regions then run inline rather than re-queueing
// work they would have to wait on.
thread_local bool t_inside_pool = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("VEIL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

// Shared state of one parallel_for region. Indices are claimed in chunks
// through `next`; `done` counts *completed* indices so the caller's wait
// cannot finish while a worker is still inside `body`.
struct ThreadPool::ForState {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  t_inside_pool = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_region(ForState& st) {
  for (;;) {
    const std::size_t begin = st.next.fetch_add(st.chunk);
    if (begin >= st.n) return;
    const std::size_t end = std::min(begin + st.chunk, st.n);
    for (std::size_t i = begin; i < end; ++i) {
      if (!st.abort.load(std::memory_order_relaxed)) {
        try {
          (*st.body)(i);
        } catch (...) {
          st.abort.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(st.mu);
          if (!st.error) st.error = std::current_exception();
        }
      }
    }
    const std::size_t finished =
        st.done.fetch_add(end - begin, std::memory_order_acq_rel) +
        (end - begin);
    if (finished == st.n) {
      // Completion can happen on any thread; wake the caller.
      std::lock_guard<std::mutex> lock(st.mu);
      st.cv.notify_all();
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_inside_pool) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto st = std::make_shared<ForState>();
  st->body = &body;
  st->n = n;
  // Chunked claiming amortizes the atomic per cheap body; heavy bodies
  // (signature verification, primality rounds) get chunk 1 and balance.
  st->chunk = std::max<std::size_t>(1, n / (thread_count() * 8));

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([st] { run_region(*st); });
    }
  }
  cv_.notify_all();

  t_inside_pool = true;
  run_region(*st);
  t_inside_pool = false;

  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() == st->n; });
    if (st->error) std::rethrow_exception(st->error);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  if (workers_.empty()) {
    (*packaged)();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool =
      std::make_unique<ThreadPool>(default_thread_count());
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::set_global_threads(std::size_t threads) {
  global_slot() = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

}  // namespace veil::common
