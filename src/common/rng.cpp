#include "common/rng.hpp"

#include <stdexcept>

namespace veil::common {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    for (; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace veil::common
