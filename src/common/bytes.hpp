// Byte-buffer utilities shared by every veil module.
//
// `Bytes` is the universal wire/value type of the framework: crypto
// primitives, ledger encodings, and network messages all traffic in it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace veil::common {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copy a UTF-8/ASCII string into a byte buffer.
Bytes to_bytes(std::string_view s);

/// Interpret a byte buffer as a string (no validation).
std::string to_string(BytesView data);

/// Constant-time equality: runtime independent of where buffers differ.
/// Length mismatch returns false immediately (lengths are not secret here).
bool ct_equal(BytesView a, BytesView b);

/// Concatenate buffers.
Bytes concat(BytesView a, BytesView b);
Bytes concat(BytesView a, BytesView b, BytesView c);

/// XOR two equal-length buffers. Throws std::invalid_argument on mismatch.
Bytes xor_bytes(BytesView a, BytesView b);

}  // namespace veil::common
