// Minimal leveled logger.
//
// Simulations are chatty; default level is Warn so tests and benches stay
// quiet. Examples raise the level to Info to narrate protocol steps.
#pragma once

#include <sstream>
#include <string>

namespace veil::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a log line if `level` is at or above the global threshold.
void log(LogLevel level, const std::string& component, const std::string& msg);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::Info, component, os.str());
}

template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  std::ostringstream os;
  detail::format_into(os, args...);
  log(LogLevel::Warn, component, os.str());
}

}  // namespace veil::common
