// Fixed-size worker pool with order-preserving data-parallel helpers.
//
// The execution engine behind every parallel hot path in the framework:
// Fabric endorsement fan-out, per-transaction signature verification
// during block validation, Quorum transaction-manager envelope
// encryption, Merkle leaf hashing and Miller-Rabin witness rounds all
// funnel through `parallel_for`/`parallel_map`.
//
// Design constraints, in order of importance:
//
//  1. Determinism. `parallel_map` writes result `i` to slot `i`, so the
//     output is bit-identical to the serial loop regardless of thread
//     count or scheduling. Callers that consume an `Rng` draw from it
//     *before* entering the parallel region.
//  2. Graceful degradation. With one thread (the default when
//     `VEIL_THREADS` is unset on a single-core host, or explicitly with
//     `VEIL_THREADS=1`) no worker threads exist at all and every helper
//     executes inline on the caller — the sim-clock/Rng-driven tests see
//     exactly the code path they saw before the pool existed.
//  3. Exceptions propagate. The first exception thrown by any index is
//     captured and rethrown on the calling thread after the region
//     completes; remaining indices are skipped (claimed but not run).
//
// Worker threads that call back into `parallel_for` (nested parallelism)
// run the nested region inline, so composition can never deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace veil::common {

class ThreadPool {
 public:
  /// A pool with `threads` total execution streams (including the
  /// caller, which participates in every parallel region). `threads <= 1`
  /// creates no workers: all helpers run inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution streams (workers + caller); >= 1.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run `body(i)` for every i in [0, n). Blocks until all indices have
  /// completed. The caller participates. The first exception (if any) is
  /// rethrown here after the region drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Order-preserving map: returns {fn(0), fn(1), ..., fn(n-1)}.
  /// R must be default-constructible.
  template <typename F>
  auto parallel_map(std::size_t n, F&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Enqueue a free-standing task. Runs inline when the pool has no
  /// workers. The future carries any exception the task throws.
  std::future<void> submit(std::function<void()> task);

  /// The process-wide pool. Sized from `VEIL_THREADS` when set (>= 1),
  /// otherwise from std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Rebuild the global pool with `threads` streams (benchmarks and the
  /// determinism tests sweep this). Not safe to call while another
  /// thread is using the global pool.
  static void set_global_threads(std::size_t threads);

 private:
  struct ForState;

  void worker_main();
  static void run_region(ForState& st);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace veil::common
