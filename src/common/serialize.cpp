#include "common/serialize.hpp"

#include "common/error.hpp"

namespace veil::common {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::boolean(bool v) { buf_.push_back(v ? 1 : 0); }

void Writer::bytes(BytesView v) {
  varint(v.size());
  raw(v);
}

void Writer::str(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw Error("serialize: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    std::uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7f) > 1) {
      throw Error("serialize: varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (v > 1) throw Error("serialize: malformed boolean");
  return v == 1;
}

Bytes Reader::bytes() {
  std::uint64_t n = varint();
  return raw(n);
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace veil::common
