#include "common/log.hpp"

#include <iostream>

namespace veil::common {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log(LogLevel level, const std::string& component, const std::string& msg) {
  if (level < g_level) return;
  std::clog << "[" << level_name(level) << "] " << component << ": " << msg
            << '\n';
}

}  // namespace veil::common
