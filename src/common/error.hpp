// Error hierarchy for the veil framework.
//
// Exceptions signal protocol violations, malformed inputs and broken
// invariants. Expected, recoverable outcomes (signature verification
// failures, missing keys) are reported through return values instead.
#pragma once

#include <stdexcept>
#include <string>

namespace veil::common {

/// Base class for all veil errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Cryptographic misuse: bad key sizes, malformed ciphertext, etc.
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Ledger-layer violation: invalid block linkage, unknown channel, etc.
class LedgerError : public Error {
 public:
  explicit LedgerError(const std::string& what) : Error("ledger: " + what) {}
};

/// A party attempted an operation it is not authorized for.
class AccessError : public Error {
 public:
  explicit AccessError(const std::string& what) : Error("access: " + what) {}
};

/// Protocol state machine violation (out-of-order messages, etc.).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol: " + what) {}
};

}  // namespace veil::common
