// Simulated clock.
//
// The network simulation advances this clock explicitly; nothing in the
// framework reads wall time, which keeps every run reproducible.
#pragma once

#include <cstdint>

namespace veil::common {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

class SimClock {
 public:
  SimTime now() const { return now_; }

  /// Move time forward. Time never goes backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  void advance_by(SimTime delta) { now_ += delta; }

 private:
  SimTime now_ = 0;
};

}  // namespace veil::common
