// Deterministic random number generation.
//
// All randomness in the framework flows through `Rng` so that simulations,
// tests and benchmarks are reproducible from a seed. The generator is
// xoshiro256** (public domain, Blackman & Vigna) — NOT cryptographically
// secure; in this simulated environment determinism is a feature, and the
// security arguments of the crypto layer are structural, not entropic.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace veil::common {

class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniform random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Throws std::invalid_argument if bound == 0.
  /// Uses rejection sampling, so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fill a fresh buffer with `n` random bytes.
  Bytes next_bytes(std::size_t n);

  /// Fork an independent child generator (for giving each simulated
  /// party its own stream while keeping global determinism).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace veil::common
