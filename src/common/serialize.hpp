// Canonical binary serialization.
//
// Every signed or hashed structure in the framework (transactions, blocks,
// certificates, attestation quotes) is encoded with Writer/Reader so that
// two parties always produce byte-identical encodings. Integers are
// little-endian fixed width; variable data is length-prefixed with a
// varint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace veil::common {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void varint(std::uint64_t v);
  void boolean(bool v);
  /// Length-prefixed byte string.
  void bytes(BytesView v);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view v);
  /// Raw bytes, no length prefix (caller manages framing).
  void raw(BytesView v);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Throws veil::common::Error-derived SerializeError on truncated or
/// malformed input; never reads past the end of the buffer.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  bool boolean();
  Bytes bytes();
  std::string str();
  Bytes raw(std::size_t n);

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace veil::common
