#include "pki/idemix.hpp"

#include "common/serialize.hpp"

namespace veil::pki {

namespace {

common::Bytes credential_message(const crypto::PublicKey& pseudonym_key,
                                 const std::string& attribute_class,
                                 std::uint64_t epoch) {
  common::Writer w;
  w.str("veil.idemix.credential");
  w.bytes(pseudonym_key.encode());
  w.str(attribute_class);
  w.u64(epoch);
  return w.take();
}

}  // namespace

common::Bytes IdemixCredential::signed_message() const {
  return credential_message(pseudonym_key, attribute_class, epoch);
}

std::optional<IdemixIssuer::SessionStart> IdemixIssuer::begin(
    const Certificate& identity_cert, const std::string& attribute_class,
    common::SimTime now, common::Rng& rng) {
  if (!ca_->validate(identity_cert, now)) return std::nullopt;
  // Entitlement check: the identity certificate must carry the attribute
  // class (e.g. attributes["class:org=Bank"] == "1").
  if (!identity_cert.attributes.contains("class:" + attribute_class)) {
    return std::nullopt;
  }
  const crypto::Group& group = ca_->group();
  const crypto::BigInt k = group.random_scalar(rng);
  const crypto::BigInt r = group.pow_g(k);

  const std::uint64_t id = next_session_++;
  log_.push_back(IssuerView{identity_cert.subject, attribute_class, r, {}});
  sessions_[id] = Session{k, log_.size() - 1};
  return SessionStart{id, r};
}

std::optional<crypto::BigInt> IdemixIssuer::complete(
    std::uint64_t session_id, const crypto::BigInt& blinded_challenge) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return std::nullopt;
  const crypto::Group& group = ca_->group();
  const crypto::BigInt e = blinded_challenge % group.q();
  log_[it->second.log_index].blinded_challenge = e;

  // s = k - x*e mod q (matches the sign convention of crypto::verify).
  const crypto::BigInt xe = (ca_->keypair().secret() * e) % group.q();
  const crypto::BigInt s = (it->second.nonce + group.q() - xe) % group.q();
  sessions_.erase(it);
  return s;
}

std::optional<IdemixCredential> request_credential(
    IdemixIssuer& issuer, const Certificate& identity_cert,
    const std::string& attribute_class, common::SimTime now,
    common::Rng& rng) {
  const crypto::Group& group = issuer.group();
  const crypto::BigInt y = issuer.public_key().y;

  auto start = issuer.begin(identity_cert, attribute_class, now, rng);
  if (!start) return std::nullopt;

  // Holder side: fresh pseudonym key, blinding factors alpha/beta.
  IdemixCredential cred;
  cred.pseudonym_secret = group.random_scalar(rng);
  cred.pseudonym_key = crypto::PublicKey{group.pow_g(cred.pseudonym_secret)};
  cred.attribute_class = attribute_class;
  cred.epoch = issuer.epoch();

  const crypto::BigInt alpha = group.random_scalar(rng);
  const crypto::BigInt beta = group.random_scalar(rng);
  // R' = R * g^alpha * y^beta
  const crypto::BigInt r_prime = group.mul(
      group.mul(start->nonce_commitment, group.pow_g(alpha)),
      group.pow(y, beta));
  const common::Bytes message = cred.signed_message();
  // e' = H(R' || y || m); blinded challenge e = e' - beta.
  const crypto::BigInt e_prime =
      crypto::schnorr_challenge(group, r_prime, y, message);
  const crypto::BigInt e =
      (e_prime + group.q() - (beta % group.q())) % group.q();

  auto s = issuer.complete(start->session_id, e);
  if (!s) return std::nullopt;

  // Unblind: s' = s + alpha. Then g^{s'} * y^{e'} == R', so (e', s', R')
  // is a standard Schnorr signature on m under the issuer key.
  const crypto::BigInt s_prime = (*s + alpha) % group.q();
  cred.issuer_signature = crypto::Signature{e_prime, s_prime, r_prime};
  return cred;
}

IdemixPresentation present(const crypto::Group& group,
                           const IdemixCredential& credential,
                           common::BytesView context, common::Rng& rng) {
  IdemixPresentation p;
  p.pseudonym_key = credential.pseudonym_key;
  p.attribute_class = credential.attribute_class;
  p.epoch = credential.epoch;
  p.issuer_signature = credential.issuer_signature;
  p.proof = crypto::prove_dlog(group, group.g(), credential.pseudonym_secret,
                               context, rng);
  return p;
}

bool verify_presentation(const crypto::Group& group,
                         const crypto::PublicKey& issuer_key,
                         const IdemixPresentation& presentation,
                         common::BytesView context,
                         std::uint64_t current_epoch) {
  if (presentation.epoch != current_epoch) return false;
  const common::Bytes message = credential_message(
      presentation.pseudonym_key, presentation.attribute_class,
      presentation.epoch);
  if (!crypto::verify(group, issuer_key, message,
                      presentation.issuer_signature)) {
    return false;
  }
  return crypto::verify_dlog(group, group.g(), presentation.pseudonym_key.y,
                             presentation.proof, context);
}

}  // namespace veil::pki
