#include "pki/membership.hpp"

#include "common/error.hpp"

namespace veil::pki {

MembershipService::MembershipService(CertificateAuthority& ca,
                                     bool expose_directory)
    : ca_(&ca), expose_directory_(expose_directory) {}

bool MembershipService::onboard(const Certificate& cert, common::SimTime now) {
  if (!ca_->validate(cert, now)) return false;
  Member member{cert.subject, cert};
  key_to_name_[cert.subject_key.fingerprint()] = cert.subject;
  members_[cert.subject] = std::move(member);
  return true;
}

void MembershipService::offboard(const std::string& name) {
  const auto it = members_.find(name);
  if (it == members_.end()) return;
  key_to_name_.erase(it->second.certificate.subject_key.fingerprint());
  members_.erase(it);
}

bool MembershipService::is_member(const std::string& name) const {
  return members_.contains(name);
}

std::optional<Member> MembershipService::find_by_key(
    const crypto::PublicKey& key) const {
  const auto it = key_to_name_.find(key.fingerprint());
  if (it == key_to_name_.end()) return std::nullopt;
  return members_.at(it->second);
}

std::optional<Member> MembershipService::find_by_name(
    const std::string& name) const {
  const auto it = members_.find(name);
  if (it == members_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> MembershipService::list_members() const {
  if (!expose_directory_) {
    throw common::AccessError("membership directory is not exposed");
  }
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (const auto& [name, member] : members_) names.push_back(name);
  return names;
}

}  // namespace veil::pki
