// One-time public keys (§2.1, Corda-style confidential identities).
//
// A party derives a chain of pseudonymous keys from a master secret. Each
// derived key is indistinguishable from random to outside observers, and
// the party can produce a *key linkage certificate* — signed by the CA —
// that discloses the binding between a one-time key and the long-lived
// identity to chosen counterparties only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/hmac.hpp"
#include "pki/ca.hpp"

namespace veil::pki {

class OneTimeKeyChain {
 public:
  /// `master_secret` stays client-side; derived keys are HKDF(master, i).
  OneTimeKeyChain(const crypto::Group& group, common::Bytes master_secret);

  /// Derive key #index (deterministic; the same index always yields the
  /// same keypair, so a wallet can be recovered from the master secret).
  crypto::KeyPair derive(std::uint64_t index) const;

  /// Fresh key: derive(next_index++).
  crypto::KeyPair next();

  std::uint64_t issued_count() const { return next_index_; }

 private:
  const crypto::Group* group_;
  common::Bytes master_secret_;
  std::uint64_t next_index_ = 0;
};

/// Certificate linking a one-time key to a real identity. The holder
/// requests it from the CA and shares it only with transaction
/// counterparties that must verify signatures (§2.1: "transacting parties
/// ... are then provided with a certificate that links the pseudonymous
/// public key with an identity").
struct KeyLinkage {
  Certificate certificate;  // subject = real identity, key = one-time key

  /// The identity disclosed by this linkage.
  const std::string& identity() const { return certificate.subject; }
};

/// Issue a linkage certificate for `one_time_key` belonging to
/// `identity`. The CA checks the requester controls the identity
/// certificate before issuing (modelled by passing the validated identity
/// cert in).
std::optional<KeyLinkage> issue_linkage(CertificateAuthority& ca,
                                        const Certificate& identity_cert,
                                        const crypto::PublicKey& one_time_key,
                                        common::SimTime now);

}  // namespace veil::pki
