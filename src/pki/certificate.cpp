#include "pki/certificate.hpp"

#include "common/serialize.hpp"

namespace veil::pki {

common::Bytes Certificate::to_be_signed() const {
  common::Writer w;
  w.u64(serial);
  w.str(subject);
  w.str(issuer);
  w.bytes(subject_key.encode());
  w.varint(attributes.size());
  for (const auto& [key, value] : attributes) {
    w.str(key);
    w.str(value);
  }
  w.u64(not_before);
  w.u64(not_after);
  return w.take();
}

common::Bytes Certificate::encode() const {
  common::Writer w;
  w.bytes(to_be_signed());
  w.bytes(issuer_signature.encode());
  return w.take();
}

Certificate Certificate::decode(common::BytesView data) {
  common::Reader outer(data);
  const common::Bytes tbs = outer.bytes();
  const common::Bytes sig = outer.bytes();

  common::Reader r(tbs);
  Certificate cert;
  cert.serial = r.u64();
  cert.subject = r.str();
  cert.issuer = r.str();
  const common::Bytes key = r.bytes();
  cert.subject_key = crypto::PublicKey::decode(key);
  const std::uint64_t attr_count = r.varint();
  for (std::uint64_t i = 0; i < attr_count; ++i) {
    std::string k = r.str();
    cert.attributes[std::move(k)] = r.str();
  }
  cert.not_before = r.u64();
  cert.not_after = r.u64();
  cert.issuer_signature = crypto::Signature::decode(sig);
  return cert;
}

bool Certificate::verify(const crypto::Group& group,
                         const crypto::PublicKey& issuer_key,
                         common::SimTime now) const {
  if (now < not_before || now > not_after) return false;
  return crypto::verify(group, issuer_key, to_be_signed(), issuer_signature);
}

}  // namespace veil::pki
