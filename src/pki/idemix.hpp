// Idemix-style anonymous credentials (§2.1 "Zero-knowledge proof of
// identity"; §5 "Fabric provides privacy of parties with Idemix").
//
// Trust model, matching Idemix at the design level:
//   * The issuer (CA) authenticates the requester's real identity and
//     checks entitlement to an attribute class ("org=Bank", "role=trader").
//   * Credentials are issued with a BLIND Schnorr signature: the issuer
//     never sees the pseudonym key it signs, so it cannot link later
//     presentations back to the issuance session or identity.
//   * A presentation shows: pseudonym key, attribute class, the issuer's
//     (blind) signature, and a fresh ZK proof of knowledge of the
//     pseudonym secret bound to the verifier's context. Verification
//     needs only the issuing CA's public key — identity is never
//     disclosed, and two presentations of different credentials are
//     unlinkable.
//
// Simplification vs. production Idemix (documented in DESIGN.md): one
// credential supports one attribute class and unlinkability across
// presentations comes from holding a batch of single-class credentials
// rather than from CL-signature randomization.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/zkp.hpp"
#include "pki/ca.hpp"

namespace veil::pki {

/// What the issuer is allowed to remember about an issuance session.
/// Tests assert that nothing in here links to the resulting credential.
struct IssuerView {
  std::string identity;
  std::string attribute_class;
  crypto::BigInt nonce_commitment;   // R = g^k sent to the holder
  crypto::BigInt blinded_challenge;  // e received from the holder
};

class IdemixIssuer {
 public:
  explicit IdemixIssuer(CertificateAuthority& ca) : ca_(&ca) {}

  /// Step 1 — holder authenticates with its identity certificate and
  /// requests a credential for `attribute_class`. The issuer checks the
  /// certificate is valid and carries the attribute. Returns a session id
  /// and the nonce commitment R, or nullopt if not entitled.
  struct SessionStart {
    std::uint64_t session_id;
    crypto::BigInt nonce_commitment;
  };
  std::optional<SessionStart> begin(const Certificate& identity_cert,
                                    const std::string& attribute_class,
                                    common::SimTime now, common::Rng& rng);

  /// Step 2 — holder sends the blinded challenge; issuer responds with
  /// s = k - x*e. The issuer never sees the message being signed.
  std::optional<crypto::BigInt> complete(std::uint64_t session_id,
                                         const crypto::BigInt& blinded_challenge);

  const crypto::PublicKey& public_key() const { return ca_->public_key(); }
  const crypto::Group& group() const { return ca_->group(); }

  /// Epoch-based revocation: advancing the epoch invalidates every
  /// credential issued under earlier epochs (verifiers learn the current
  /// epoch out of band, e.g. from channel configuration). Coarse-grained
  /// by design — revoking one holder means re-issuing the cohort, the
  /// price of unlinkability (the issuer cannot tell whose credential is
  /// whose).
  std::uint64_t epoch() const { return epoch_; }
  void advance_epoch() { ++epoch_; }

  /// Everything this issuer has observed, for leakage tests.
  const std::vector<IssuerView>& audit_log() const { return log_; }

 private:
  struct Session {
    crypto::BigInt nonce;  // k
    std::size_t log_index;
  };

  CertificateAuthority* ca_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_session_ = 1;
  std::map<std::uint64_t, Session> sessions_;
  std::vector<IssuerView> log_;
};

/// An unlinkable credential held by a party.
struct IdemixCredential {
  crypto::BigInt pseudonym_secret;
  crypto::PublicKey pseudonym_key;
  std::string attribute_class;
  std::uint64_t epoch = 0;             // issuance epoch (revocation)
  crypto::Signature issuer_signature;  // blind-issued, verifies normally

  /// The message the issuer signature covers.
  common::Bytes signed_message() const;
};

/// A presentation of a credential to a verifier.
struct IdemixPresentation {
  crypto::PublicKey pseudonym_key;
  std::string attribute_class;
  std::uint64_t epoch = 0;
  crypto::Signature issuer_signature;
  crypto::DlogProof proof;  // PoK of pseudonym secret, context-bound
};

/// Run the full issuance protocol against `issuer`. Returns nullopt if
/// the issuer refuses (invalid certificate / missing attribute).
std::optional<IdemixCredential> request_credential(
    IdemixIssuer& issuer, const Certificate& identity_cert,
    const std::string& attribute_class, common::SimTime now,
    common::Rng& rng);

/// Create a context-bound presentation (context = verifier nonce or
/// transaction hash; prevents replay).
IdemixPresentation present(const crypto::Group& group,
                           const IdemixCredential& credential,
                           common::BytesView context, common::Rng& rng);

/// Verify with the issuing CA's public key and the current revocation
/// epoch (distributed out of band). Presentations from earlier epochs
/// are rejected.
bool verify_presentation(const crypto::Group& group,
                         const crypto::PublicKey& issuer_key,
                         const IdemixPresentation& presentation,
                         common::BytesView context,
                         std::uint64_t current_epoch = 0);

}  // namespace veil::pki
