// Membership service (§2.1).
//
// Onboards verified parties onto the platform and maps public keys to
// identities. The global directory is optional, reflecting the paper's
// observation that exposing a membership list helps relationship
// formation but may itself be a privacy concern.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pki/ca.hpp"

namespace veil::pki {

struct Member {
  std::string name;          // organization or party name
  Certificate certificate;   // identity certificate from the network CA
};

class MembershipService {
 public:
  /// `expose_directory` controls whether list_members() is available.
  MembershipService(CertificateAuthority& ca, bool expose_directory);

  /// Verify the certificate and onboard the party. Returns false (and
  /// does not onboard) if the certificate fails validation.
  bool onboard(const Certificate& cert, common::SimTime now);

  void offboard(const std::string& name);

  bool is_member(const std::string& name) const;

  /// Resolve a public key fingerprint to an identity, as PKI consumers do
  /// when verifying endorsements.
  std::optional<Member> find_by_key(const crypto::PublicKey& key) const;

  std::optional<Member> find_by_name(const std::string& name) const;

  /// Global directory; throws common::AccessError if the network was
  /// configured without one.
  std::vector<std::string> list_members() const;

  bool directory_exposed() const { return expose_directory_; }
  std::size_t member_count() const { return members_.size(); }

 private:
  CertificateAuthority* ca_;
  bool expose_directory_;
  std::map<std::string, Member> members_;           // by name
  std::map<std::string, std::string> key_to_name_;  // fingerprint -> name
};

}  // namespace veil::pki
