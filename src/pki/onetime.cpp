#include "pki/onetime.hpp"

#include "common/serialize.hpp"

namespace veil::pki {

OneTimeKeyChain::OneTimeKeyChain(const crypto::Group& group,
                                 common::Bytes master_secret)
    : group_(&group), master_secret_(std::move(master_secret)) {}

crypto::KeyPair OneTimeKeyChain::derive(std::uint64_t index) const {
  common::Writer info;
  info.str("veil.onetime");
  info.u64(index);
  const common::Bytes seed =
      crypto::hkdf({}, master_secret_,
                   std::string_view(reinterpret_cast<const char*>(
                                        info.data().data()),
                                    info.data().size()),
                   64);
  const crypto::BigInt secret = crypto::BigInt::from_bytes_be(seed);
  return crypto::KeyPair::from_secret(*group_, secret);
}

crypto::KeyPair OneTimeKeyChain::next() { return derive(next_index_++); }

std::optional<KeyLinkage> issue_linkage(CertificateAuthority& ca,
                                        const Certificate& identity_cert,
                                        const crypto::PublicKey& one_time_key,
                                        common::SimTime now) {
  if (!ca.validate(identity_cert, now)) return std::nullopt;
  Certificate cert = ca.issue(
      identity_cert.subject, one_time_key,
      {{"linkage", "one-time"},
       {"identity-serial", std::to_string(identity_cert.serial)}},
      now, identity_cert.not_after);
  return KeyLinkage{std::move(cert)};
}

}  // namespace veil::pki
