#include "pki/ca.hpp"

namespace veil::pki {

CertificateAuthority::CertificateAuthority(std::string name,
                                           const crypto::Group& group,
                                           common::Rng& rng,
                                           common::SimTime valid_until)
    : name_(std::move(name)),
      group_(&group),
      keypair_(crypto::KeyPair::generate(group, rng)) {
  root_cert_.serial = next_serial_++;
  root_cert_.subject = name_;
  root_cert_.issuer = name_;
  root_cert_.subject_key = keypair_.public_key();
  root_cert_.not_before = 0;
  root_cert_.not_after = valid_until;
  root_cert_.issuer_signature = keypair_.sign(root_cert_.to_be_signed());
}

Certificate CertificateAuthority::issue(
    const std::string& subject, const crypto::PublicKey& key,
    std::map<std::string, std::string> attributes, common::SimTime not_before,
    common::SimTime not_after) {
  Certificate cert;
  cert.serial = next_serial_++;
  cert.subject = subject;
  cert.issuer = name_;
  cert.subject_key = key;
  cert.attributes = std::move(attributes);
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.issuer_signature = keypair_.sign(cert.to_be_signed());
  return cert;
}

void CertificateAuthority::revoke(std::uint64_t serial) {
  revoked_.insert(serial);
}

bool CertificateAuthority::is_revoked(std::uint64_t serial) const {
  return revoked_.contains(serial);
}

bool CertificateAuthority::validate(const Certificate& cert,
                                    common::SimTime now) const {
  if (cert.issuer != name_) return false;
  if (is_revoked(cert.serial)) return false;
  return cert.verify(*group_, keypair_.public_key(), now);
}

}  // namespace veil::pki
