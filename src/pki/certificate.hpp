// X.509-style certificates binding names to Schnorr public keys.
//
// The paper (§2.1) assumes a PKI service "that allows parties to map
// public keys to identities". Certificates here carry a subject name,
// free-form attributes (org, role), a validity window in simulated time
// and an issuer signature over the canonical encoding.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/signature.hpp"

namespace veil::pki {

struct Certificate {
  std::uint64_t serial = 0;
  std::string subject;
  std::string issuer;
  crypto::PublicKey subject_key;
  std::map<std::string, std::string> attributes;
  common::SimTime not_before = 0;
  common::SimTime not_after = 0;
  crypto::Signature issuer_signature;

  /// Canonical encoding of everything except the signature (the signed
  /// payload).
  common::Bytes to_be_signed() const;

  /// Full encoding including the signature.
  common::Bytes encode() const;
  static Certificate decode(common::BytesView data);

  /// Signature check against the issuer's public key plus validity-window
  /// check at `now`.
  bool verify(const crypto::Group& group, const crypto::PublicKey& issuer_key,
              common::SimTime now) const;

  bool operator==(const Certificate&) const = default;
};

}  // namespace veil::pki
