// Certificate authority with revocation.
//
// Issues identity certificates, verifies chains rooted at itself and
// maintains a revocation list. A network typically runs one root CA per
// consortium (or per organization, with cross-certification handled by
// registering multiple roots in the MembershipService).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "pki/certificate.hpp"

namespace veil::pki {

class CertificateAuthority {
 public:
  /// Create a root CA with a fresh keypair and a self-signed certificate.
  CertificateAuthority(std::string name, const crypto::Group& group,
                       common::Rng& rng,
                       common::SimTime valid_until = ~common::SimTime{0});

  const std::string& name() const { return name_; }
  const Certificate& root_certificate() const { return root_cert_; }
  const crypto::PublicKey& public_key() const {
    return keypair_.public_key();
  }
  const crypto::Group& group() const { return *group_; }

  /// Issue a certificate binding `subject` to `key` with `attributes`.
  Certificate issue(const std::string& subject, const crypto::PublicKey& key,
                    std::map<std::string, std::string> attributes,
                    common::SimTime not_before, common::SimTime not_after);

  /// Revoke by serial number; idempotent.
  void revoke(std::uint64_t serial);
  bool is_revoked(std::uint64_t serial) const;

  /// Full validation: issuer signature, validity window, revocation.
  bool validate(const Certificate& cert, common::SimTime now) const;

  /// Access to the CA signing key for protocol layers built on top
  /// (blind issuance in idemix.hpp signs with this key).
  const crypto::KeyPair& keypair() const { return keypair_; }

 private:
  std::string name_;
  const crypto::Group* group_;
  crypto::KeyPair keypair_;
  Certificate root_cert_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

}  // namespace veil::pki
