#include "mpc/protocol.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::mpc {

namespace {

common::Bytes encode_share(const crypto::Share& share) {
  common::Writer w;
  w.u64(share.x);
  w.bytes(share.y.to_bytes_be());
  return w.take();
}

crypto::Share decode_share(common::BytesView data) {
  common::Reader r(data);
  crypto::Share share;
  share.x = r.u64();
  share.y = crypto::BigInt::from_bytes_be(r.bytes());
  return share;
}

}  // namespace

SecureSum::SecureSum(crypto::Shamir field, net::Transport& network)
    : field_(std::move(field)), network_(&network) {}

MpcResult SecureSum::run(const std::map<std::string, crypto::BigInt>& inputs,
                         common::Rng& rng) {
  if (inputs.size() < 2) {
    throw common::ProtocolError("SecureSum: needs at least 2 parties");
  }
  const std::size_t n = inputs.size();
  std::vector<std::string> parties;
  parties.reserve(n);
  for (const auto& [name, value] : inputs) parties.push_back(name);

  // Per-party protocol state.
  struct PartyState {
    crypto::BigInt partial;             // sum of received shares
    std::vector<crypto::Share> finals;  // broadcast partials
  };
  std::map<std::string, PartyState> state;
  net::LeakageAuditor& auditor = network_->auditor();

  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = parties[i];
    // Each party privately observes its own input.
    auditor.record(name, "mpc/input/" + name,
                   inputs.at(name).to_bytes_be().size());
    network_->attach(name, [this, name, &state](const net::Message& msg) {
      const crypto::Share share = decode_share(msg.payload);
      PartyState& ps = state[name];
      if (msg.topic == "mpc.share") {
        ps.partial = (ps.partial + share.y) % field_.prime();
      } else if (msg.topic == "mpc.partial") {
        ps.finals.push_back(share);
      }
    });
  }

  const std::uint64_t messages_before = network_->stats().messages_sent;

  // Round 1: split and disseminate shares (threshold = n, so even n-1
  // colluding parties learn nothing about an honest input).
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& from = parties[i];
    const std::vector<crypto::Share> shares =
        field_.split(inputs.at(from), n, n, rng);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        state[from].partial =
            (state[from].partial + shares[j].y) % field_.prime();
      } else {
        network_->send(from, parties[j], "mpc.share", encode_share(shares[j]));
      }
    }
  }
  network_->run();

  // Round 2: broadcast share-of-total.
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& from = parties[i];
    const crypto::Share partial{i + 1, state[from].partial};
    state[from].finals.push_back(partial);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      network_->send(from, parties[j], "mpc.partial", encode_share(partial));
    }
  }
  network_->run();

  // Round 3: every party reconstructs; verify they all agree.
  crypto::BigInt result;
  bool first = true;
  for (const std::string& name : parties) {
    const crypto::BigInt local = field_.reconstruct(state[name].finals);
    if (first) {
      result = local;
      first = false;
    } else if (local != result) {
      throw common::ProtocolError("SecureSum: parties disagree on result");
    }
  }

  for (const std::string& name : parties) network_->detach(name);

  MpcResult out;
  out.value = result;
  out.messages_exchanged = network_->stats().messages_sent - messages_before;
  out.rounds = 2;
  return out;
}

BallotResult secret_ballot(const crypto::Shamir& field,
                           net::Transport& network,
                           const std::map<std::string, bool>& votes,
                           common::Rng& rng) {
  std::map<std::string, crypto::BigInt> inputs;
  for (const auto& [name, vote] : votes) {
    inputs[name] = crypto::BigInt(vote ? 1 : 0);
  }
  SecureSum sum(field, network);
  const MpcResult result = sum.run(inputs, rng);

  BallotResult ballot;
  ballot.yes = result.value.to_u64();
  ballot.no = votes.size() - ballot.yes;
  ballot.messages_exchanged = result.messages_exchanged;
  return ballot;
}

}  // namespace veil::mpc
