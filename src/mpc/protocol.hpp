// Multiparty computation over Shamir shares (§2.2).
//
// "Each party carries out a computation on their private data and shares
// the result with the other parties. All collected results are then used
// by each party to compute the same shared function, resulting in one
// consistent value that can be committed to the ledger."
//
// Protocol (secure sum, the linear-function workhorse):
//   round 1 — every party splits its input into n shares (threshold n)
//             and sends share j to party j over the simulated network;
//   round 2 — every party adds the shares it received (a share of the
//             total) and broadcasts that partial;
//   round 3 — everyone interpolates the n partials at x=0.
//
// No party ever observes another party's input — only shares, which are
// uniformly random in the field. The leakage auditor log lets tests
// assert exactly that. Secret ballots and averages are thin wrappers over
// the sum.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/shamir.hpp"
#include "net/network.hpp"

namespace veil::mpc {

struct MpcResult {
  crypto::BigInt value;
  std::uint64_t messages_exchanged = 0;
  int rounds = 0;
};

class SecureSum {
 public:
  /// `field` must exceed any possible sum of inputs.
  SecureSum(crypto::Shamir field, net::Transport& network);

  /// Run the protocol among `inputs.size()` parties (name -> private
  /// input). Every party learns only the sum. Requires >= 2 parties.
  MpcResult run(const std::map<std::string, crypto::BigInt>& inputs,
                common::Rng& rng);

 private:
  crypto::Shamir field_;
  net::Transport* network_;
};

/// Secret ballot (§3.2's example of a shared function on private
/// values): yes/no votes tallied without revealing individual votes.
struct BallotResult {
  std::uint64_t yes = 0;
  std::uint64_t no = 0;
  std::uint64_t messages_exchanged = 0;
};

BallotResult secret_ballot(const crypto::Shamir& field,
                           net::Transport& network,
                           const std::map<std::string, bool>& votes,
                           common::Rng& rng);

}  // namespace veil::mpc
