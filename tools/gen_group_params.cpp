// One-off generator for the pinned Schnorr-group parameters in
// src/crypto/group_params.hpp. Run manually; output is committed.
#include <cstdio>

#include "common/rng.hpp"
#include "crypto/group.hpp"

int main() {
  using veil::common::Rng;
  using veil::crypto::Group;

  Rng rng(0x7e11a9c0ffee5eedULL);

  const Group def = Group::generate(rng, 1024, 256);
  const Group test = Group::generate(rng, 512, 160);

  std::printf("inline constexpr const char* kDefaultP = \"%s\";\n",
              def.p().to_hex().c_str());
  std::printf("inline constexpr const char* kDefaultQ = \"%s\";\n",
              def.q().to_hex().c_str());
  std::printf("inline constexpr const char* kDefaultG = \"%s\";\n",
              def.g().to_hex().c_str());
  std::printf("inline constexpr const char* kDefaultH = \"%s\";\n\n",
              def.h().to_hex().c_str());

  std::printf("inline constexpr const char* kTestP = \"%s\";\n",
              test.p().to_hex().c_str());
  std::printf("inline constexpr const char* kTestQ = \"%s\";\n",
              test.q().to_hex().c_str());
  std::printf("inline constexpr const char* kTestG = \"%s\";\n",
              test.g().to_hex().c_str());
  std::printf("inline constexpr const char* kTestH = \"%s\";\n",
              test.h().to_hex().c_str());
  return 0;
}
