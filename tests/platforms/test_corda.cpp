#include "platforms/corda/corda.hpp"

#include <gtest/gtest.h>

namespace veil::corda {
namespace {

using common::to_bytes;

class CordaTest : public ::testing::Test {
 protected:
  CordaTest()
      : net_(common::Rng(17)),
        rng_(18),
        corda_(net_, crypto::Group::test_group(), rng_) {
    for (const char* p : {"Alice", "Bob", "Carol"}) corda_.add_party(p);
    corda_.add_notary("Notary", /*validating=*/false);
  }

  StateRef issue_cash(const std::string& owner, const std::string& amount) {
    const auto result = corda_.issue(owner, "Cash", to_bytes(amount),
                                     {owner}, "Notary");
    EXPECT_TRUE(result.success) << result.reason;
    return corda_.vault(owner).back().ref;
  }

  net::SimNetwork net_;
  common::Rng rng_;
  CordaNetwork corda_;
};

TEST_F(CordaTest, IssueCreatesVaultState) {
  corda_.issue("Alice", "Cash", to_bytes("100"), {"Alice"}, "Notary");
  const auto vault = corda_.vault("Alice");
  ASSERT_EQ(vault.size(), 1u);
  EXPECT_EQ(vault[0].data, to_bytes("100"));
  EXPECT_EQ(vault[0].contract, "Cash");
}

TEST_F(CordaTest, TransferMovesState) {
  const StateRef ref = issue_cash("Alice", "100");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("100"), {"Bob"}}}, "Notary");
  EXPECT_TRUE(result.success) << result.reason;
  EXPECT_TRUE(corda_.vault("Alice").empty());
  ASSERT_EQ(corda_.vault("Bob").size(), 1u);
  EXPECT_EQ(corda_.vault("Bob")[0].data, to_bytes("100"));
}

TEST_F(CordaTest, PeerToPeerConfidentiality) {
  // §5: "interactions between parties are kept private, both in terms of
  // the relationships that exist and data shared between them".
  const StateRef ref = issue_cash("Alice", "500");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("500"), {"Alice", "Bob"}}}, "Notary");
  ASSERT_TRUE(result.success);
  const std::string prefix = "tx/" + result.tx_id + "/";
  EXPECT_TRUE(corda_.auditor().saw("Bob", prefix + "data"));
  EXPECT_FALSE(corda_.auditor().saw("Carol", prefix + "data"));
  EXPECT_FALSE(corda_.auditor().saw("Carol", prefix + "parties"));
  // Carol received no network traffic at all for this transaction.
  EXPECT_FALSE(corda_.auditor().saw("Carol", "net/corda.sign-request"));
  EXPECT_FALSE(corda_.auditor().saw("Carol", "net/corda.finalize"));
}

TEST_F(CordaTest, NotaryPreventsDoubleSpend) {
  const StateRef ref = issue_cash("Alice", "100");
  const auto first = corda_.transact(
      "Alice", {ref}, {OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
      "Notary");
  EXPECT_TRUE(first.success);
  // Alice's vault no longer holds the ref, but try replaying it directly.
  const auto second = corda_.transact(
      "Alice", {ref}, {OutputSpec{"Cash", to_bytes("100"), {"Carol"}}},
      "Notary");
  EXPECT_FALSE(second.success);
  EXPECT_EQ(second.reason, "input not in initiator vault");
}

TEST_F(CordaTest, NotaryRejectsReplayedConsumedState) {
  // Even if the initiator still "had" the state (simulated replay), the
  // notary's consumed set is authoritative.
  const StateRef ref = issue_cash("Alice", "100");
  // Keep a copy of the vault state, consume it, then re-insert via a
  // second issue with identical data and try to trick the notary by
  // reusing the consumed ref. The direct replay path is covered above;
  // here we check notarized_count advances per transaction.
  const auto before = corda_.notarized_count("Notary");
  corda_.transact("Alice", {ref},
                  {OutputSpec{"Cash", to_bytes("100"), {"Bob"}}}, "Notary");
  EXPECT_EQ(corda_.notarized_count("Notary"), before + 1);
}

TEST_F(CordaTest, NonValidatingNotarySeesNoData) {
  const StateRef ref = issue_cash("Alice", "13,000 EUR");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("13,000 EUR"), {"Bob"}}}, "Notary");
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(
      corda_.auditor().saw("Notary", "tx/" + result.tx_id + "/data"));
  EXPECT_TRUE(corda_.auditor().saw_any_form(
      "Notary", "tx/" + result.tx_id + "/data"));
}

TEST_F(CordaTest, ValidatingNotarySeesEverything) {
  corda_.add_notary("ValidatingNotary", /*validating=*/true);
  const auto issued = corda_.issue("Alice", "Cash", to_bytes("x"),
                                   {"Alice"}, "ValidatingNotary");
  const StateRef ref = corda_.vault("Alice").back().ref;
  const auto result = corda_.transact(
      "Alice", {ref}, {OutputSpec{"Cash", to_bytes("x"), {"Bob"}}},
      "ValidatingNotary");
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(corda_.auditor().saw("ValidatingNotary",
                                   "tx/" + result.tx_id + "/data"));
}

TEST_F(CordaTest, ConfidentialIdentitiesUseOneTimeKeys) {
  const StateRef ref = issue_cash("Alice", "42");
  const auto result = corda_.transact(
      "Alice", {ref}, {OutputSpec{"Cash", to_bytes("42"), {"Bob"}}},
      "Notary", /*confidential=*/true);
  ASSERT_TRUE(result.success) << result.reason;
  const auto bob_vault = corda_.vault("Bob");
  ASSERT_EQ(bob_vault.size(), 1u);
  const std::string participant = bob_vault[0].participants[0];
  EXPECT_TRUE(participant.starts_with("ot:"));
  EXPECT_EQ(participant.find("Bob"), std::string::npos);

  // Counterparties hold the linkage; outsiders cannot resolve.
  const std::string fp = participant.substr(3);
  EXPECT_EQ(corda_.resolve_confidential("Alice", fp), "Bob");
  EXPECT_FALSE(corda_.resolve_confidential("Carol", fp).has_value());
}

TEST_F(CordaTest, FreshOneTimeKeyPerTransaction) {
  const StateRef r1 = issue_cash("Alice", "1");
  const StateRef r2 = issue_cash("Alice", "2");
  const auto t1 = corda_.transact(
      "Alice", {r1}, {OutputSpec{"Cash", to_bytes("1"), {"Bob"}}}, "Notary",
      true);
  const auto t2 = corda_.transact(
      "Alice", {r2}, {OutputSpec{"Cash", to_bytes("2"), {"Bob"}}}, "Notary",
      true);
  ASSERT_TRUE(t1.success && t2.success);
  const auto vault = corda_.vault("Bob");
  ASSERT_EQ(vault.size(), 2u);
  // Two transfers to the same party use unlinkable keys.
  EXPECT_NE(vault[0].participants[0], vault[1].participants[0]);
}

TEST_F(CordaTest, OracleTearOffFlow) {
  corda_.add_oracle("FxOracle", {{"USD/EUR", "0.93"}});
  const StateRef ref = issue_cash("Alice", "trade@?");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("trade@0.93"), {"Alice", "Bob"}}},
      "Notary", false, OracleRequest{"FxOracle", "USD/EUR", "0.93"});
  ASSERT_TRUE(result.success) << result.reason;
  // Oracle attests without seeing transaction data.
  EXPECT_TRUE(
      corda_.auditor().saw("FxOracle", "tx/" + result.tx_id + "/fact"));
  EXPECT_FALSE(
      corda_.auditor().saw("FxOracle", "tx/" + result.tx_id + "/data"));
}

TEST_F(CordaTest, OracleRefusesWrongFact) {
  corda_.add_oracle("FxOracle", {{"USD/EUR", "0.93"}});
  const StateRef ref = issue_cash("Alice", "x");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("x"), {"Alice"}}}, "Notary", false,
      OracleRequest{"FxOracle", "USD/EUR", "1.50"});
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.reason, "oracle refused: fact mismatch");
}

TEST_F(CordaTest, UnknownEntitiesRejected) {
  EXPECT_FALSE(corda_.transact("Ghost", {}, {}, "Notary").success);
  EXPECT_FALSE(corda_.transact("Alice", {}, {}, "GhostNotary").success);
  const StateRef bogus{"nonexistent", 0};
  EXPECT_FALSE(
      corda_.transact("Alice", {bogus}, {}, "Notary").success);
}

TEST_F(CordaTest, MultiOutputSplit) {
  const StateRef ref = issue_cash("Alice", "100");
  const auto result = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("60"), {"Bob"}},
       OutputSpec{"Cash", to_bytes("40"), {"Alice"}}},
      "Notary");
  ASSERT_TRUE(result.success);
  EXPECT_EQ(corda_.vault("Bob").size(), 1u);
  EXPECT_EQ(corda_.vault("Alice").size(), 1u);
  EXPECT_EQ(corda_.vault("Alice")[0].data, to_bytes("40"));
}


TEST_F(CordaTest, BackchainResolvesToIssuance) {
  // Alice -> Bob -> Carol: Carol resolves the chain back to the issue.
  const StateRef issued = issue_cash("Alice", "100");
  const auto t1 = corda_.transact(
      "Alice", {issued}, {OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
      "Notary");
  ASSERT_TRUE(t1.success);
  const auto bob_ref = corda_.vault("Bob").front().ref;
  const auto t2 = corda_.transact(
      "Bob", {bob_ref}, {OutputSpec{"Cash", to_bytes("100"), {"Carol"}}},
      "Notary");
  ASSERT_TRUE(t2.success);

  const auto carol_ref = corda_.vault("Carol").front().ref;
  const auto chain = corda_.resolve_backchain("Carol", carol_ref);
  EXPECT_TRUE(chain.valid) << chain.reason;
  EXPECT_EQ(chain.depth, 3u);  // issue + two transfers
  EXPECT_EQ(chain.tx_ids.front(), t2.tx_id);
}

TEST_F(CordaTest, BackchainRevealsHistoryToNewOwner) {
  // The documented trade-off: resolution hands Carol every ancestor tx,
  // including the Alice->Bob hop she was never part of.
  const StateRef issued = issue_cash("Alice", "77");
  const auto t1 = corda_.transact(
      "Alice", {issued}, {OutputSpec{"Cash", to_bytes("77"), {"Bob"}}},
      "Notary");
  const auto bob_ref = corda_.vault("Bob").front().ref;
  const auto t2 = corda_.transact(
      "Bob", {bob_ref}, {OutputSpec{"Cash", to_bytes("77"), {"Carol"}}},
      "Notary");

  EXPECT_FALSE(corda_.auditor().saw("Carol", "tx/" + t1.tx_id + "/data"));
  const auto chain =
      corda_.resolve_backchain("Carol", corda_.vault("Carol").front().ref);
  ASSERT_TRUE(chain.valid);
  // After resolution Carol has observed the ancestor transaction data.
  EXPECT_TRUE(corda_.auditor().saw("Carol", "tx/" + t1.tx_id + "/data"));
}

TEST_F(CordaTest, BackchainOfUnknownRefFails) {
  const auto result =
      corda_.resolve_backchain("Alice", StateRef{"not-a-tx", 0});
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.reason.find("missing ancestor"), std::string::npos);
  EXPECT_FALSE(
      corda_.resolve_backchain("Ghost", StateRef{"x", 0}).valid);
}

TEST_F(CordaTest, BackchainDepthGrowsWithTransfers) {
  StateRef ref = issue_cash("Alice", "5");
  const std::vector<std::string> owners = {"Bob", "Carol", "Alice", "Bob"};
  std::string holder = "Alice";
  for (const std::string& next : owners) {
    const auto r = corda_.transact(
        holder, {ref}, {OutputSpec{"Cash", to_bytes("5"), {next}}},
        "Notary");
    ASSERT_TRUE(r.success) << r.reason;
    ref = corda_.vault(next).back().ref;
    holder = next;
  }
  const auto chain = corda_.resolve_backchain(holder, ref);
  EXPECT_TRUE(chain.valid);
  EXPECT_EQ(chain.depth, 1u + owners.size());
}


namespace {
// Cash conservation: numeric sum of inputs equals sum of outputs.
long value_of(const common::Bytes& data) {
  return std::stol(common::to_string(data));
}
}  // namespace

TEST_F(CordaTest, ContractVerifierEnforcesConservation) {
  corda_.register_contract(
      "Cash", [](const std::vector<CordaState>& inputs,
                 const std::vector<OutputSpec>& outputs) {
        long in = 0, out = 0;
        for (const auto& s : inputs) in += value_of(s.data);
        for (const auto& o : outputs) out += value_of(o.data);
        return inputs.empty() || in == out;  // issuance exempt
      });

  const StateRef ref = issue_cash("Alice", "100");
  // Forging money: 100 in, 150 out -> vetoed by the contract.
  const auto forged = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("150"), {"Bob"}}}, "Notary");
  EXPECT_FALSE(forged.success);
  EXPECT_EQ(forged.reason, "contract verification failed: Cash");
  // The state was NOT consumed by the failed attempt.
  EXPECT_EQ(corda_.vault("Alice").size(), 1u);

  // A conserving split passes.
  const auto split = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("60"), {"Bob"}},
       OutputSpec{"Cash", to_bytes("40"), {"Alice"}}},
      "Notary");
  EXPECT_TRUE(split.success) << split.reason;
}

TEST_F(CordaTest, UnregisteredContractsAreNotVetoed) {
  const StateRef ref = issue_cash("Alice", "100");
  // "Cash" has no verifier here; anything goes (flow logic decides).
  const auto r = corda_.transact(
      "Alice", {ref},
      {OutputSpec{"Cash", to_bytes("999999"), {"Bob"}}}, "Notary");
  EXPECT_TRUE(r.success);
}

TEST_F(CordaTest, VerifierSeesCrossContractTransaction) {
  // A swap touching two contracts runs both verifiers.
  int cash_checks = 0, bond_checks = 0;
  corda_.register_contract(
      "Cash", [&cash_checks](const std::vector<CordaState>&,
                             const std::vector<OutputSpec>&) {
        ++cash_checks;
        return true;
      });
  corda_.register_contract(
      "Bond", [&bond_checks](const std::vector<CordaState>&,
                             const std::vector<OutputSpec>&) {
        ++bond_checks;
        return true;
      });
  const StateRef cash = issue_cash("Alice", "100");
  const auto r = corda_.transact(
      "Alice", {cash},
      {OutputSpec{"Bond", to_bytes("100"), {"Alice"}}}, "Notary");
  EXPECT_TRUE(r.success);
  EXPECT_GE(cash_checks, 1);
  EXPECT_GE(bond_checks, 1);
}

}  // namespace
}  // namespace veil::corda
