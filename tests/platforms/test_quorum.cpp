#include "platforms/quorum/quorum.hpp"

#include <gtest/gtest.h>

namespace veil::quorum {
namespace {

using common::to_bytes;

class QuorumTest : public ::testing::Test {
 protected:
  QuorumTest()
      : net_(common::Rng(27)),
        rng_(28),
        quorum_(net_, crypto::Group::test_group(), rng_, /*block_size=*/1) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum_.add_node(n);
  }

  net::SimNetwork net_;
  common::Rng rng_;
  QuorumNetwork quorum_;
};

TEST_F(QuorumTest, PublicTransactionVisibleEverywhere) {
  const auto result = quorum_.submit_public(
      "NodeA", {{"greeting", to_bytes("hello"), false}});
  ASSERT_TRUE(result.accepted);
  for (const char* node : {"NodeA", "NodeB", "NodeC"}) {
    EXPECT_EQ(quorum_.public_state(node).get("greeting")->value,
              to_bytes("hello"))
        << node;
    EXPECT_EQ(quorum_.public_chain(node).height(), 1u);
    EXPECT_TRUE(
        quorum_.auditor().saw(node, "tx/" + result.tx_id + "/data"));
  }
}

TEST_F(QuorumTest, PrivateTransactionPayloadReachesRecipientsOnly) {
  const auto result = quorum_.submit_private(
      "NodeA", {"NodeB"}, {{"deal", to_bytes("1M"), false}});
  ASSERT_TRUE(result.accepted);
  // Private state updated at sender and recipient only.
  EXPECT_TRUE(quorum_.private_state("NodeA").get("deal").has_value());
  EXPECT_TRUE(quorum_.private_state("NodeB").get("deal").has_value());
  EXPECT_FALSE(quorum_.private_state("NodeC").get("deal").has_value());
  // Transaction-manager payload only at participants.
  EXPECT_TRUE(quorum_.private_payload("NodeA", result.tx_id).has_value());
  EXPECT_TRUE(quorum_.private_payload("NodeB", result.tx_id).has_value());
  EXPECT_FALSE(quorum_.private_payload("NodeC", result.tx_id).has_value());
}

TEST_F(QuorumTest, PublicChainCarriesHashOnly) {
  const auto result = quorum_.submit_private(
      "NodeA", {"NodeB"}, {{"deal", to_bytes("secret-value"), false}});
  ASSERT_TRUE(result.accepted);
  // Every node's chain contains the tx — with opaque payload.
  const auto block =
      quorum_.public_chain("NodeC").find_transaction_block(result.tx_id);
  ASSERT_TRUE(block.has_value());
  const auto& tx = block->transactions.front();
  EXPECT_TRUE(tx.data_opaque);
  EXPECT_EQ(tx.payload.size(), crypto::kSha256DigestSize);
  // NodeC saw only the opaque form of the data.
  EXPECT_FALSE(quorum_.auditor().saw("NodeC", "tx/" + result.tx_id + "/data"));
  EXPECT_TRUE(quorum_.auditor().saw_any_form(
      "NodeC", "tx/" + result.tx_id + "/data"));
}

TEST_F(QuorumTest, ParticipantListLeaksToEveryone) {
  // §5 documented flaw: "the public ledger includes private transactions,
  // including the list of participants ... revealing to the entire
  // network which parties are interacting".
  const auto result = quorum_.submit_private(
      "NodeA", {"NodeB"}, {{"k", to_bytes("v"), false}});
  ASSERT_TRUE(result.accepted);
  const auto block =
      quorum_.public_chain("NodeC").find_transaction_block(result.tx_id);
  ASSERT_TRUE(block.has_value());
  const auto& tx = block->transactions.front();
  EXPECT_FALSE(tx.parties_pseudonymous);
  EXPECT_EQ(tx.participants,
            (std::vector<std::string>{"NodeA", "NodeB"}));
  EXPECT_TRUE(
      quorum_.auditor().saw("NodeC", "tx/" + result.tx_id + "/parties"));
}

TEST_F(QuorumTest, DoubleSpendOfPrivateAssetSucceeds) {
  // §5 documented flaw: no global visibility of private assets means the
  // same asset can be privately "transferred" to two disjoint parties.
  quorum_.submit_private("NodeA", {"NodeB"},
                         {{"asset/bond-7/owner", to_bytes("NodeB"), false}});
  quorum_.submit_private("NodeA", {"NodeC"},
                         {{"asset/bond-7/owner", to_bytes("NodeC"), false}});
  // Both recipients now believe they own the asset — the flaw reproduced.
  EXPECT_EQ(quorum_.private_owner("NodeB", "bond-7"), "NodeB");
  EXPECT_EQ(quorum_.private_owner("NodeC", "bond-7"), "NodeC");
}

TEST_F(QuorumTest, HashRefMatchesPrivatePayload) {
  const auto result = quorum_.submit_private(
      "NodeA", {"NodeB"}, {{"k", to_bytes("v"), false}}, to_bytes("extra"));
  const auto payload = quorum_.private_payload("NodeB", result.tx_id);
  ASSERT_TRUE(payload.has_value());
  const auto block =
      quorum_.public_chain("NodeA").find_transaction_block(result.tx_id);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->transactions.front().payload,
            crypto::digest_bytes(crypto::sha256(*payload)));
}

TEST_F(QuorumTest, BatchingSealsOnBlockSize) {
  net::SimNetwork net(common::Rng(1));
  common::Rng rng(2);
  QuorumNetwork q(net, crypto::Group::test_group(), rng, /*block_size=*/3);
  q.add_node("A");
  q.add_node("B");
  q.submit_public("A", {{"k1", to_bytes("1"), false}});
  q.submit_public("A", {{"k2", to_bytes("2"), false}});
  EXPECT_EQ(q.public_chain("B").height(), 0u);  // still pending
  q.submit_public("A", {{"k3", to_bytes("3"), false}});
  EXPECT_EQ(q.public_chain("B").height(), 1u);  // batch sealed
  q.submit_public("A", {{"k4", to_bytes("4"), false}});
  q.seal_block();
  EXPECT_EQ(q.public_chain("B").height(), 2u);
}

TEST_F(QuorumTest, UnknownSenderOrRecipientRejected) {
  EXPECT_FALSE(quorum_.submit_public("Ghost", {}).accepted);
  EXPECT_FALSE(
      quorum_.submit_private("NodeA", {"Ghost"}, {}).accepted);
}

TEST_F(QuorumTest, CountsSplitByKind) {
  quorum_.submit_public("NodeA", {{"a", to_bytes("1"), false}});
  quorum_.submit_private("NodeA", {"NodeB"}, {{"b", to_bytes("2"), false}});
  quorum_.submit_private("NodeA", {"NodeC"}, {{"c", to_bytes("3"), false}});
  EXPECT_EQ(quorum_.public_tx_count(), 1u);
  EXPECT_EQ(quorum_.private_tx_count(), 2u);
}

TEST_F(QuorumTest, ChainsStayConsistentAcrossNodes) {
  for (int i = 0; i < 5; ++i) {
    quorum_.submit_public("NodeA",
                          {{"k" + std::to_string(i), to_bytes("v"), false}});
  }
  const auto& a = quorum_.public_chain("NodeA");
  const auto& b = quorum_.public_chain("NodeB");
  EXPECT_EQ(a.height(), b.height());
  EXPECT_EQ(a.tip_hash(), b.tip_hash());
  EXPECT_TRUE(a.verify_integrity());
}

TEST_F(QuorumTest, PrivateStateDivergesByDesign) {
  // Public state identical everywhere; private state differs per node —
  // the architectural split that defines Quorum.
  quorum_.submit_public("NodeA", {{"pub", to_bytes("x"), false}});
  quorum_.submit_private("NodeA", {"NodeB"}, {{"priv", to_bytes("y"), false}});
  EXPECT_EQ(quorum_.public_state("NodeC").get("pub")->value, to_bytes("x"));
  EXPECT_EQ(quorum_.private_state("NodeB").get("priv")->value, to_bytes("y"));
  EXPECT_FALSE(quorum_.private_state("NodeC").get("priv").has_value());
}

}  // namespace
}  // namespace veil::quorum
