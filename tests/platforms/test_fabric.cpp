#include "platforms/fabric/fabric.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::fabric {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> kv_chaincode() {
  return std::make_shared<contracts::FunctionContract>(
      "kv", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  common::Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        if (action == "reject") return contracts::InvokeStatus::Rejected;
        return contracts::InvokeStatus::UnknownAction;
      });
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : net_(common::Rng(7)),
        rng_(8),
        fab_(net_, crypto::Group::test_group(), rng_) {
    for (const char* org : {"OrgA", "OrgB", "OrgC"}) fab_.add_org(org);
    fab_.create_channel("trade", {"OrgA", "OrgB"});
    fab_.install_chaincode("trade", "OrgA", kv_chaincode(),
                           contracts::EndorsementPolicy::require("OrgA"));
  }

  net::SimNetwork net_;
  common::Rng rng_;
  FabricNetwork fab_;
};

TEST_F(FabricTest, EndorseOrderCommit) {
  const auto receipt =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("5000"));
  EXPECT_TRUE(receipt.committed) << receipt.reason;
  // Both members hold the committed state.
  EXPECT_EQ(fab_.state("trade", "OrgA").get("deal")->value, to_bytes("5000"));
  EXPECT_EQ(fab_.state("trade", "OrgB").get("deal")->value, to_bytes("5000"));
  EXPECT_EQ(fab_.chain("trade", "OrgA").height(), 1u);
}

TEST_F(FabricTest, ChannelIsolation) {
  fab_.submit("trade", "OrgA", "kv", "put:secret", to_bytes("x"));
  // OrgC is not a member: no replica, no observations.
  EXPECT_THROW(fab_.state("trade", "OrgC"), common::AccessError);
  EXPECT_THROW(fab_.chain("trade", "OrgC"), common::AccessError);
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgC", "tx/"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgC", "net/fabric.block"));
}

TEST_F(FabricTest, NonMemberCannotSubmit) {
  const auto receipt =
      fab_.submit("trade", "OrgC", "kv", "put:k", to_bytes("v"));
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(receipt.reason, "client not a channel member");
}

TEST_F(FabricTest, UnknownChannelRejected) {
  const auto receipt =
      fab_.submit("ghost", "OrgA", "kv", "put:k", to_bytes("v"));
  EXPECT_FALSE(receipt.committed);
}

TEST_F(FabricTest, UnknownChaincodeRejected) {
  const auto receipt =
      fab_.submit("trade", "OrgA", "ghost", "put:k", to_bytes("v"));
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(receipt.reason, "chaincode not installed on channel");
}

TEST_F(FabricTest, StateAndCompositeRoots) {
  // Per-channel roots are just the authenticated trie digest; the
  // composite root folds every channel an org belongs to (ledger
  // compose_roots), so it moves when any member channel commits and
  // differs between orgs with different channel memberships.
  fab_.create_channel("ops", {"OrgA", "OrgC"});
  fab_.install_chaincode("ops", "OrgA", kv_chaincode(),
                         contracts::EndorsementPolicy::require("OrgA"));

  const crypto::Digest a0 = fab_.composite_state_root("OrgA");
  EXPECT_NE(fab_.composite_state_root("OrgB"), a0);  // OrgB lacks "ops"

  ASSERT_TRUE(fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("1"))
                  .committed);
  EXPECT_EQ(fab_.state_root("trade", "OrgA"),
            fab_.state("trade", "OrgA").digest());
  // Members agree per channel; the composite moved for both members.
  EXPECT_EQ(fab_.state_root("trade", "OrgA"), fab_.state_root("trade", "OrgB"));
  const crypto::Digest a1 = fab_.composite_state_root("OrgA");
  EXPECT_NE(a1, a0);

  // A commit on "ops" moves OrgA's composite but not OrgB's.
  const crypto::Digest b1 = fab_.composite_state_root("OrgB");
  ASSERT_TRUE(
      fab_.submit("ops", "OrgA", "kv", "put:cfg", to_bytes("2")).committed);
  EXPECT_NE(fab_.composite_state_root("OrgA"), a1);
  EXPECT_EQ(fab_.composite_state_root("OrgB"), b1);
  // Non-members cannot read a channel root at all.
  EXPECT_THROW(fab_.state_root("ops", "OrgB"), common::AccessError);
}

TEST_F(FabricTest, RejectedInvocationDoesNotCommit) {
  const auto receipt = fab_.submit("trade", "OrgA", "kv", "reject", {});
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(receipt.reason, "no endorsements");
}

TEST_F(FabricTest, EndorsementPolicyAcrossOrgs) {
  fab_.install_chaincode("trade", "OrgB", kv_chaincode(),
                         contracts::EndorsementPolicy::all_of(
                             {contracts::EndorsementPolicy::require("OrgA"),
                              contracts::EndorsementPolicy::require("OrgB")}));
  const auto receipt =
      fab_.submit("trade", "OrgA", "kv", "put:joint", to_bytes("v"));
  EXPECT_TRUE(receipt.committed) << receipt.reason;
  // Find the committed tx and check both endorsements are present.
  const auto block =
      fab_.chain("trade", "OrgA").find_transaction_block(receipt.tx_id);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->transactions.front().endorsements.size(), 2u);
}

TEST_F(FabricTest, PolicyUnsatisfiableWithoutInstall) {
  // Policy requires OrgB, but only OrgA has the code for "kv" initially
  // in this test's channel? Both have it after previous install; use a
  // fresh contract name requiring an org with no install.
  auto other = std::make_shared<contracts::FunctionContract>(
      "other", 1,
      [](contracts::ContractContext& ctx, const std::string&) {
        ctx.put("x", common::to_bytes("1"));
        return contracts::InvokeStatus::Ok;
      });
  fab_.install_chaincode("trade", "OrgA", other,
                         contracts::EndorsementPolicy::require("OrgB"));
  const auto receipt = fab_.submit("trade", "OrgA", "other", "go", {});
  EXPECT_FALSE(receipt.committed);
}

TEST_F(FabricTest, SharedOrdererSeesChannelTraffic) {
  const auto receipt =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("secret"));
  const std::string prefix = "tx/" + receipt.tx_id + "/";
  EXPECT_EQ(fab_.orderer_operator("trade"), "orderer-org");
  EXPECT_TRUE(fab_.auditor().saw("orderer-org", prefix + "data"));
  EXPECT_TRUE(fab_.auditor().saw("orderer-org", prefix + "parties"));
}

TEST_F(FabricTest, PrivateOrdererKeepsThirdPartyOut) {
  net::SimNetwork net(common::Rng(70));
  common::Rng rng(71);
  FabricConfig config;
  config.orderer_deployment = ledger::OrdererDeployment::Private;
  FabricNetwork fab(net, crypto::Group::test_group(), rng, config);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("private-trade", {"OrgA", "OrgB"});
  fab.install_chaincode("private-trade", "OrgA", kv_chaincode(),
                        contracts::EndorsementPolicy::require("OrgA"));
  const auto receipt =
      fab.submit("private-trade", "OrgA", "kv", "put:k", to_bytes("v"));
  EXPECT_TRUE(receipt.committed);
  EXPECT_EQ(fab.orderer_operator("private-trade"), "OrgA");
  EXPECT_FALSE(fab.auditor().saw("orderer-org", "tx/"));
}

TEST_F(FabricTest, MvccConflictOnConcurrentEndorsement) {
  // Two transactions endorsed against the same state version: the second
  // to commit must be invalidated. We simulate by replaying an identical
  // read set: first put bumps the version, replay then conflicts.
  auto rmw = std::make_shared<contracts::FunctionContract>(
      "rmw", 1,
      [](contracts::ContractContext& ctx, const std::string&) {
        ctx.get("counter");
        ctx.put("counter", common::to_bytes("x"));
        return contracts::InvokeStatus::Ok;
      });
  fab_.install_chaincode("trade", "OrgA", rmw,
                         contracts::EndorsementPolicy::require("OrgA"));
  const auto r1 = fab_.submit("trade", "OrgA", "rmw", "go", {});
  EXPECT_TRUE(r1.committed);
  const auto r2 = fab_.submit("trade", "OrgA", "rmw", "go", {});
  EXPECT_TRUE(r2.committed);  // fresh endorsement reads the new version
}

TEST_F(FabricTest, PrivateDataCollectionFlow) {
  fab_.create_channel("wide", {"OrgA", "OrgB", "OrgC"});
  fab_.install_chaincode("wide", "OrgA", kv_chaincode(),
                         contracts::EndorsementPolicy::require("OrgA"));
  fab_.define_collection("wide", {"ab", {"OrgA", "OrgB"}, 0});
  const auto receipt = fab_.submit(
      "wide", "OrgA", "kv", "put:ref", to_bytes("public-part"),
      PrivatePayload{"ab", "price", to_bytes("1,000,000")});
  EXPECT_TRUE(receipt.committed) << receipt.reason;

  EXPECT_TRUE(fab_.read_private("wide", "ab", "price", "OrgA").has_value());
  EXPECT_TRUE(fab_.read_private("wide", "ab", "price", "OrgB").has_value());
  EXPECT_FALSE(fab_.read_private("wide", "ab", "price", "OrgC").has_value());

  // The transaction on the channel carries the hash ref and — the paper's
  // caveat — the collection member list.
  const auto block =
      fab_.chain("wide", "OrgC").find_transaction_block(receipt.tx_id);
  ASSERT_TRUE(block.has_value());
  const auto& tx = block->transactions.front();
  EXPECT_EQ(tx.hash_refs.size(), 1u);
  bool lists_members = false;
  for (const auto& p : tx.participants) {
    if (p == "pdc-member:OrgB") lists_members = true;
  }
  EXPECT_TRUE(lists_members);
}

TEST_F(FabricTest, UnknownCollectionRejected) {
  const auto receipt =
      fab_.submit("trade", "OrgA", "kv", "put:k", to_bytes("v"),
                  PrivatePayload{"ghost", "k", to_bytes("v")});
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(receipt.reason, "unknown collection");
}

TEST_F(FabricTest, IdemixSubmissionHidesClient) {
  const auto cred = fab_.issue_idemix_credential("OrgB", "role=auditor");
  ASSERT_TRUE(cred.has_value());
  const auto receipt = fab_.submit("trade", "OrgB", "kv", "put:audit",
                                   to_bytes("ok"), {}, &*cred);
  EXPECT_TRUE(receipt.committed) << receipt.reason;
  const auto block =
      fab_.chain("trade", "OrgA").find_transaction_block(receipt.tx_id);
  ASSERT_TRUE(block.has_value());
  const auto& tx = block->transactions.front();
  EXPECT_TRUE(tx.parties_pseudonymous);
  for (const auto& p : tx.participants) {
    EXPECT_EQ(p.find("client:OrgB"), std::string::npos);
  }
}

TEST_F(FabricTest, ChaincodeConfidentiality) {
  // Installed on OrgA's peer only: OrgB admin never observed the code.
  EXPECT_TRUE(fab_.auditor().saw("peer.OrgA", "contract/kv/code"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgB", "contract/kv/code"));
}

TEST_F(FabricTest, DuplicateChannelRejected) {
  EXPECT_THROW(fab_.create_channel("trade", {"OrgA"}),
               common::ProtocolError);
}

TEST_F(FabricTest, UnknownOrgInChannelRejected) {
  EXPECT_THROW(fab_.create_channel("x", {"OrgA", "Ghost"}),
               common::ProtocolError);
}

TEST_F(FabricTest, InstallRequiresMembership) {
  EXPECT_THROW(
      fab_.install_chaincode("trade", "OrgC", kv_chaincode(),
                             contracts::EndorsementPolicy::require("OrgC")),
      common::AccessError);
}

TEST_F(FabricTest, CommittedCountAdvances) {
  const auto before = fab_.committed_tx_count();
  fab_.submit("trade", "OrgA", "kv", "put:a", to_bytes("1"));
  fab_.submit("trade", "OrgA", "kv", "put:b", to_bytes("2"));
  EXPECT_EQ(fab_.committed_tx_count(), before + 2);
}


TEST_F(FabricTest, ChaincodeUpgradeLifecycle) {
  // Multi-org policy: both OrgA and OrgB endorse with "joint" v1.
  auto joint_v1 = std::make_shared<contracts::FunctionContract>(
      "joint", 1,
      [](contracts::ContractContext& ctx, const std::string&) {
        ctx.put("v", common::to_bytes("one"));
        return contracts::InvokeStatus::Ok;
      });
  auto joint_v2 = std::make_shared<contracts::FunctionContract>(
      "joint", 2,
      [](contracts::ContractContext& ctx, const std::string&) {
        ctx.put("v", common::to_bytes("two"));
        return contracts::InvokeStatus::Ok;
      });
  const auto policy = contracts::EndorsementPolicy::all_of(
      {contracts::EndorsementPolicy::require("OrgA"),
       contracts::EndorsementPolicy::require("OrgB")});
  fab_.install_chaincode("trade", "OrgA", joint_v1, policy);
  fab_.install_chaincode("trade", "OrgB", joint_v1, policy);

  EXPECT_TRUE(fab_.submit("trade", "OrgA", "joint", "go", {}).committed);
  EXPECT_EQ(fab_.chaincode_version("OrgA", "joint"), 1u);

  // Upgrade OrgA only: the network must refuse mixed-version endorsement.
  fab_.upgrade_chaincode("trade", "OrgA", joint_v2);
  const auto mixed = fab_.submit("trade", "OrgA", "joint", "go", {});
  EXPECT_FALSE(mixed.committed);
  EXPECT_EQ(mixed.reason, "chaincode version mismatch between endorsers");

  // Once every endorser upgrades, v2 behaviour commits.
  fab_.upgrade_chaincode("trade", "OrgB", joint_v2);
  EXPECT_TRUE(fab_.submit("trade", "OrgA", "joint", "go", {}).committed);
  EXPECT_EQ(fab_.state("trade", "OrgB").get("v")->value,
            common::to_bytes("two"));
  EXPECT_EQ(fab_.chaincode_version("OrgB", "joint"), 2u);
}

TEST_F(FabricTest, ChaincodeVersionQuery) {
  EXPECT_EQ(fab_.chaincode_version("OrgA", "kv"), 1u);
  EXPECT_FALSE(fab_.chaincode_version("OrgB", "kv").has_value());
  EXPECT_FALSE(fab_.chaincode_version("OrgA", "ghost").has_value());
}

TEST_F(FabricTest, UpgradeRequiresMembership) {
  EXPECT_THROW(fab_.upgrade_chaincode("trade", "OrgC", kv_chaincode()),
               common::AccessError);
}


TEST_F(FabricTest, JoinChannelBootstrapsFullHistory) {
  fab_.submit("trade", "OrgA", "kv", "put:pre-join", to_bytes("old"));
  // OrgC joins later and must catch up from the ordered log.
  fab_.join_channel("trade", "OrgC");
  EXPECT_TRUE(fab_.is_channel_member("trade", "OrgC"));
  EXPECT_EQ(fab_.chain("trade", "OrgC").height(),
            fab_.chain("trade", "OrgA").height());
  EXPECT_EQ(fab_.state("trade", "OrgC").get("pre-join")->value,
            to_bytes("old"));
  // The design consequence: the joiner observed the historical data.
  EXPECT_TRUE(fab_.auditor().saw("peer.OrgC", "tx/"));
  // New transactions reach the joiner too.
  fab_.submit("trade", "OrgA", "kv", "put:post-join", to_bytes("new"));
  EXPECT_TRUE(fab_.state("trade", "OrgC").get("post-join").has_value());
}

TEST_F(FabricTest, LeaveChannelStopsNewDataButKeepsOld) {
  fab_.submit("trade", "OrgA", "kv", "put:before", to_bytes("1"));
  fab_.leave_channel("trade", "OrgB");
  fab_.submit("trade", "OrgA", "kv", "put:after", to_bytes("2"));
  // OrgB's frozen replica has the old state, never the new one.
  EXPECT_TRUE(fab_.state("trade", "OrgB").get("before").has_value());
  EXPECT_FALSE(fab_.state("trade", "OrgB").get("after").has_value());
  EXPECT_FALSE(fab_.is_channel_member("trade", "OrgB"));
}

TEST_F(FabricTest, PdcRequiredPeerCountEnforced) {
  fab_.create_channel("wide2", {"OrgA", "OrgB", "OrgC"});
  fab_.install_chaincode("wide2", "OrgA", kv_chaincode(),
                         contracts::EndorsementPolicy::require("OrgA"));
  offchain::CollectionConfig cfg;
  cfg.name = "strict";
  cfg.members = {"OrgA", "OrgB", "OrgC"};
  cfg.required_peer_count = 2;  // both other members must ack
  fab_.define_collection("wide2", cfg);

  // Healthy network: dissemination succeeds.
  const auto ok = fab_.submit("wide2", "OrgA", "kv", "put:r", to_bytes("x"),
                              PrivatePayload{"strict", "k1", to_bytes("v")});
  EXPECT_TRUE(ok.committed) << ok.reason;

  // With dissemination traffic lost, the submission must fail CLOSED
  // rather than leave a hash on the ledger that nobody can resolve.
  net_.set_drop_probability(1.0);
  const auto starved =
      fab_.submit("wide2", "OrgA", "kv", "put:r2", to_bytes("x"),
                  PrivatePayload{"strict", "k2", to_bytes("v")});
  EXPECT_FALSE(starved.committed);
  EXPECT_EQ(starved.reason, "insufficient pdc dissemination");
  net_.set_drop_probability(0.0);
}

TEST_F(FabricTest, IdemixEpochRevocation) {
  fab_.install_chaincode("trade", "OrgB", kv_chaincode(),
                         contracts::EndorsementPolicy::require("OrgB"));
  const auto cred = fab_.issue_idemix_credential("OrgA", "role=member");
  ASSERT_TRUE(cred.has_value());
  EXPECT_TRUE(fab_.submit("trade", "OrgA", "kv", "put:e0", to_bytes("v"), {},
                          &*cred)
                  .committed);
  // Epoch rotation revokes the whole credential cohort.
  fab_.idemix_issuer().advance_epoch();
  const auto rejected = fab_.submit("trade", "OrgA", "kv", "put:e1",
                                    to_bytes("v"), {}, &*cred);
  EXPECT_FALSE(rejected.committed);
  EXPECT_EQ(rejected.reason, "idemix presentation invalid");
  // A freshly issued credential (new epoch) works again.
  const auto fresh = fab_.issue_idemix_credential("OrgA", "role=member");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(fab_.submit("trade", "OrgA", "kv", "put:e2", to_bytes("v"), {},
                          &*fresh)
                  .committed);
}


TEST_F(FabricTest, SnapshotJoinGetsStateWithoutHistory) {
  fab_.submit("trade", "OrgA", "kv", "put:hist1", to_bytes("h1"));
  fab_.submit("trade", "OrgA", "kv", "put:hist2", to_bytes("h2"));

  fab_.join_channel("trade", "OrgC", FabricNetwork::JoinMode::Snapshot);

  // Current state is there...
  EXPECT_EQ(fab_.state("trade", "OrgC").get("hist1")->value, to_bytes("h1"));
  EXPECT_EQ(fab_.state("trade", "OrgC").get("hist2")->value, to_bytes("h2"));
  // ...but no historical blocks or transaction observations.
  EXPECT_FALSE(fab_.chain("trade", "OrgC").block_at(0).has_value());
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgC", "tx/"));
  // The snapshot itself was observed (it IS current data).
  EXPECT_TRUE(fab_.auditor().saw("peer.OrgC", "channel/trade/state-snapshot"));

  // New blocks append cleanly on the checkpointed chain.
  const auto r = fab_.submit("trade", "OrgA", "kv", "put:new", to_bytes("n"));
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(fab_.state("trade", "OrgC").get("new")->value, to_bytes("n"));
  EXPECT_TRUE(fab_.chain("trade", "OrgC").verify_integrity());
  EXPECT_EQ(fab_.chain("trade", "OrgC").height(),
            fab_.chain("trade", "OrgA").height());
}

TEST_F(FabricTest, SnapshotVsReplayPrivacyContrast) {
  fab_.submit("trade", "OrgA", "kv", "put:old-deal", to_bytes("secret-old"));
  fab_.add_org("OrgD");
  fab_.add_org("OrgE");
  fab_.join_channel("trade", "OrgD", FabricNetwork::JoinMode::Replay);
  fab_.join_channel("trade", "OrgE", FabricNetwork::JoinMode::Snapshot);
  // The replay joiner saw historical transactions; the snapshot joiner
  // did not — the privacy difference between the two bootstrap modes.
  EXPECT_TRUE(fab_.auditor().saw("peer.OrgD", "tx/"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgE", "tx/"));
}

}  // namespace
}  // namespace veil::fabric
