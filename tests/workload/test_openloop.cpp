// Open-loop load generation: Poisson arrival rate, Zipf party skew,
// seed determinism, TTL stamping, and the latency recorder's
// nearest-rank percentiles.
#include <gtest/gtest.h>

#include "workload/openloop.hpp"

namespace veil::workload {
namespace {

TEST(OpenLoop, PoissonScheduleTracksOfferedRate) {
  OpenLoopConfig config;
  config.offered_per_s = 1'000.0;
  config.arrivals = 10'000;
  OpenLoopGenerator gen(config, /*seed=*/1);
  const std::vector<Arrival> schedule = gen.generate();
  ASSERT_EQ(schedule.size(), config.arrivals);

  // Monotone non-decreasing times, sequential seq numbers.
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].at, schedule[i - 1].at);
    EXPECT_EQ(schedule[i].seq, i);
  }
  // 10k arrivals at 1k/s should span ~10 simulated seconds; the law of
  // large numbers puts the realized rate well within 10% of offered.
  const double span_s = static_cast<double>(schedule.back().at) / 1e6;
  EXPECT_GT(span_s, 9.0);
  EXPECT_LT(span_s, 11.0);
}

TEST(OpenLoop, ScheduleIsSeedDeterministic) {
  OpenLoopConfig config;
  config.arrivals = 500;
  config.parties = 8;
  config.ttl_us = 50'000;
  const auto a = OpenLoopGenerator(config, 7).generate();
  const auto b = OpenLoopGenerator(config, 7).generate();
  const auto c = OpenLoopGenerator(config, 8).generate();
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].party, b[i].party);
    EXPECT_EQ(a[i].deadline_us, b[i].deadline_us);
    any_difference |= a[i].at != c[i].at || a[i].party != c[i].party;
  }
  EXPECT_TRUE(any_difference);  // a different seed moves the schedule
}

TEST(OpenLoop, TtlStampsAbsoluteDeadlines) {
  OpenLoopConfig config;
  config.arrivals = 100;
  config.ttl_us = 25'000;
  config.start_us = 1'000'000;
  for (const Arrival& a : OpenLoopGenerator(config, 3).generate()) {
    EXPECT_GT(a.at, config.start_us);
    EXPECT_EQ(a.deadline_us, a.at + config.ttl_us);
  }
  // Without a TTL, deadlines stay zero (no deadline).
  config.ttl_us = 0;
  for (const Arrival& a : OpenLoopGenerator(config, 3).generate()) {
    EXPECT_EQ(a.deadline_us, 0u);
  }
}

TEST(OpenLoop, ZipfConcentratesOnLowRanks) {
  OpenLoopConfig config;
  config.arrivals = 10'000;
  config.parties = 10;
  config.zipf_s = 1.0;
  std::vector<std::size_t> counts(config.parties, 0);
  for (const Arrival& a : OpenLoopGenerator(config, 11).generate()) {
    ASSERT_LT(a.party, config.parties);
    ++counts[a.party];
  }
  // Rank 0 carries ~34% of a 10-party Zipf(1); rank 9 ~3.4%. Assert the
  // ordering loosely rather than the exact proportions.
  EXPECT_GT(counts[0], counts[9] * 3);
  EXPECT_GT(counts[0], config.arrivals / 5);
}

TEST(OpenLoop, ZipfExponentZeroIsUniform) {
  OpenLoopConfig config;
  config.arrivals = 10'000;
  config.parties = 4;
  config.zipf_s = 0.0;
  std::vector<std::size_t> counts(config.parties, 0);
  for (const Arrival& a : OpenLoopGenerator(config, 13).generate()) {
    ++counts[a.party];
  }
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 2'000u);  // expected 2'500 each; generous slack
    EXPECT_LT(c, 3'000u);
  }
}

TEST(OpenLoop, CrossFractionZeroLeavesScheduleUntouched) {
  // cross_fraction = 0 must not draw from the RNG at all, so schedules
  // generated before the knob existed replay bit-identically.
  OpenLoopConfig config;
  config.arrivals = 400;
  config.parties = 8;
  for (const Arrival& a : OpenLoopGenerator(config, 21).generate()) {
    EXPECT_FALSE(a.cross);
    EXPECT_EQ(a.party_b, 0u);
  }
}

TEST(OpenLoop, CrossFractionMarksArrivalsDeterministically) {
  OpenLoopConfig config;
  config.arrivals = 4'000;
  config.parties = 16;
  config.cross_fraction = 0.3;
  const auto a = OpenLoopGenerator(config, 23).generate();
  const auto b = OpenLoopGenerator(config, 23).generate();
  std::size_t cross = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cross, b[i].cross);
    EXPECT_EQ(a[i].party_b, b[i].party_b);
    if (a[i].cross) {
      ++cross;
      ASSERT_LT(a[i].party_b, config.parties);
      EXPECT_NE(a[i].party_b, a[i].party);  // two distinct legs
    }
  }
  // ~30% of 4000 = 1200; allow generous sampling slack.
  EXPECT_GT(cross, 1'000u);
  EXPECT_LT(cross, 1'400u);
}

TEST(OpenLoop, LatencyRecorderNearestRankPercentiles) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.percentile(50), 0u);  // empty recorder
  EXPECT_EQ(rec.count(), 0u);

  // Insert 1..100 shuffled-ish (reverse order): sorting is on demand.
  for (common::SimTime v = 100; v >= 1; --v) rec.record(v);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.p50(), 50u);
  EXPECT_EQ(rec.p95(), 95u);
  EXPECT_EQ(rec.p99(), 99u);
  EXPECT_EQ(rec.max(), 100u);
  EXPECT_DOUBLE_EQ(rec.mean(), 50.5);

  // Recording after a percentile read re-sorts correctly.
  rec.record(1'000);
  EXPECT_EQ(rec.max(), 1'000u);
  EXPECT_EQ(rec.percentile(0), 1u);
}

}  // namespace
}  // namespace veil::workload
