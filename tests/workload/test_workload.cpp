#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace veil::workload {
namespace {

TEST(TradeWorkload, DeterministicFromSeed) {
  TradeWorkload a({"A", "B", "C"}, {}, 42);
  TradeWorkload b({"A", "B", "C"}, {}, 42);
  for (int i = 0; i < 50; ++i) {
    const TradeEvent x = a.next();
    const TradeEvent y = b.next();
    EXPECT_EQ(x.buyer, y.buyer);
    EXPECT_EQ(x.seller, y.seller);
    EXPECT_EQ(x.amount, y.amount);
    EXPECT_EQ(x.details, y.details);
  }
}

TEST(TradeWorkload, BuyerNeverEqualsSeller) {
  TradeWorkload w({"A", "B"}, {}, 7);
  for (const TradeEvent& e : w.take(200)) {
    EXPECT_NE(e.buyer, e.seller);
  }
}

TEST(TradeWorkload, ConfidentialFractionRespected) {
  TradeConfig config;
  config.confidential_fraction = 0.5;
  TradeWorkload w({"A", "B", "C", "D"}, config, 11);
  int confidential = 0;
  const auto events = w.take(1000);
  for (const TradeEvent& e : events) confidential += e.confidential;
  EXPECT_GT(confidential, 400);
  EXPECT_LT(confidential, 600);

  TradeConfig all_public;
  all_public.confidential_fraction = 0.0;
  TradeWorkload w2({"A", "B"}, all_public, 12);
  for (const TradeEvent& e : w2.take(100)) EXPECT_FALSE(e.confidential);
}

TEST(TradeWorkload, AmountsAndDetailsSized) {
  TradeConfig config;
  config.max_amount = 100;
  config.details_bytes = 32;
  TradeWorkload w({"A", "B"}, config, 13);
  for (const TradeEvent& e : w.take(200)) {
    EXPECT_GE(e.amount, 1u);
    EXPECT_LE(e.amount, 100u);
    EXPECT_EQ(e.details.size(), 32u);
  }
}

TEST(TradeWorkload, HubBiasConcentratesTraffic) {
  std::vector<std::string> parties;
  for (int i = 0; i < 10; ++i) parties.push_back("P" + std::to_string(i));
  TradeConfig biased;
  biased.hub_bias = 4.0;
  TradeWorkload hub(parties, biased, 14);
  TradeWorkload flat(parties, {}, 14);
  auto count_p0 = [](TradeWorkload& w) {
    int n = 0;
    for (const TradeEvent& e : w.take(500)) {
      if (e.buyer == "P0" || e.seller == "P0") ++n;
    }
    return n;
  };
  EXPECT_GT(count_p0(hub), count_p0(flat));
}

TEST(TradeWorkload, TooFewPartiesThrows) {
  EXPECT_THROW(TradeWorkload({"solo"}, {}, 1), common::Error);
}

TEST(SupplyChain, ItemsProgressThroughHops) {
  SupplyChainConfig config;
  config.hops_per_item = 3;
  SupplyChainWorkload w({"Farm", "Mill", "Dist", "Shop"}, config, 21);
  const auto events = w.take(6);  // two full item journeys
  // Item 0: hops 0,1,2; item 1: hops 0,1,2.
  EXPECT_EQ(events[0].item, "item-0");
  EXPECT_EQ(events[0].from, "Farm");
  EXPECT_EQ(events[0].to, "Mill");
  EXPECT_FALSE(events[0].final_hop);
  EXPECT_EQ(events[2].to, "Shop");
  EXPECT_TRUE(events[2].final_hop);
  EXPECT_EQ(events[3].item, "item-1");
  EXPECT_EQ(events[3].hop, 0u);
}

TEST(SupplyChain, HopsClampedToChainLength) {
  SupplyChainConfig config;
  config.hops_per_item = 99;
  SupplyChainWorkload w({"A", "B", "C"}, config, 22);
  const auto events = w.take(2);
  EXPECT_EQ(events[1].to, "C");
  EXPECT_TRUE(events[1].final_hop);
}

TEST(SupplyChain, DeterministicAndDistinctInspections) {
  SupplyChainWorkload a({"A", "B", "C"}, {}, 23);
  SupplyChainWorkload b({"A", "B", "C"}, {}, 23);
  std::set<std::string> seen;
  for (int i = 0; i < 10; ++i) {
    const CustodyEvent x = a.next();
    const CustodyEvent y = b.next();
    EXPECT_EQ(x.inspection, y.inspection);
    seen.insert(common::to_hex(x.inspection));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST(SupplyChain, TooShortChainThrows) {
  EXPECT_THROW(SupplyChainWorkload({"only"}, {}, 1), common::Error);
}

}  // namespace
}  // namespace veil::workload
