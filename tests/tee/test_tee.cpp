#include <gtest/gtest.h>

#include "tee/enclave.hpp"

namespace veil::tee {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> adder_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "adder", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action != "add") return contracts::InvokeStatus::UnknownAction;
        const auto current = ctx.get("sum");
        const int base = current ? std::stoi(common::to_string(*current)) : 0;
        const int delta = std::stoi(common::to_string(
            common::Bytes(ctx.args().begin(), ctx.args().end())));
        ctx.put("sum", to_bytes(std::to_string(base + delta)));
        return contracts::InvokeStatus::Ok;
      });
}

class TeeTest : public ::testing::Test {
 protected:
  TeeTest()
      : manufacturer_(crypto::Group::test_group(), rng_),
        enclave_("untrusted-host", manufacturer_, "dev-1", auditor_, rng_,
                 0) {}

  common::Rng rng_{606};
  net::LeakageAuditor auditor_;
  Manufacturer manufacturer_;
  Enclave enclave_;
};

TEST_F(TeeTest, AttestationVerifies) {
  enclave_.load(adder_contract());
  const common::Bytes nonce = rng_.next_bytes(16);
  const AttestationQuote quote = enclave_.attest(nonce);
  EXPECT_TRUE(verify_quote(crypto::Group::test_group(),
                           manufacturer_.root_key(), quote,
                           enclave_.measurement(), nonce, 10));
}

TEST_F(TeeTest, AttestationRejectsWrongMeasurement) {
  enclave_.load(adder_contract());
  const common::Bytes nonce = rng_.next_bytes(16);
  const AttestationQuote quote = enclave_.attest(nonce);
  const crypto::Digest wrong = crypto::sha256(to_bytes("other-code"));
  EXPECT_FALSE(verify_quote(crypto::Group::test_group(),
                            manufacturer_.root_key(), quote, wrong, nonce,
                            10));
}

TEST_F(TeeTest, AttestationRejectsStaleNonce) {
  const AttestationQuote quote = enclave_.attest(rng_.next_bytes(16));
  EXPECT_FALSE(verify_quote(crypto::Group::test_group(),
                            manufacturer_.root_key(), quote,
                            enclave_.measurement(), rng_.next_bytes(16), 10));
}

TEST_F(TeeTest, AttestationRejectsForgedDeviceCert) {
  const common::Bytes nonce = rng_.next_bytes(16);
  AttestationQuote quote = enclave_.attest(nonce);
  // A different "manufacturer" cannot vouch for this device.
  common::Rng rng2(707);
  Manufacturer rogue(crypto::Group::test_group(), rng2);
  EXPECT_FALSE(verify_quote(crypto::Group::test_group(), rogue.root_key(),
                            quote, enclave_.measurement(), nonce, 10));
}

TEST_F(TeeTest, MeasurementChangesWithLoadedCode) {
  const crypto::Digest before = enclave_.measurement();
  enclave_.load(adder_contract());
  EXPECT_NE(enclave_.measurement(), before);
}

TEST_F(TeeTest, SealedInvokeRoundTrip) {
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));

  const SealedRequest request =
      client.seal(InvokeRequest{"adder", "add", to_bytes("5")}, rng_);
  const auto sealed_response = enclave_.invoke(request);
  ASSERT_TRUE(sealed_response.has_value());
  const auto response = client.open(*sealed_response);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
  ASSERT_EQ(response->writes.size(), 1u);
  EXPECT_EQ(response->writes[0].value, to_bytes("5"));
}

TEST_F(TeeTest, EnclaveStateAccumulates) {
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  for (int i = 0; i < 3; ++i) {
    const auto resp = enclave_.invoke(
        client.seal(InvokeRequest{"adder", "add", to_bytes("10")}, rng_));
    ASSERT_TRUE(resp.has_value());
  }
  EXPECT_EQ(enclave_.private_state().get("sum")->value, to_bytes("30"));
}

TEST_F(TeeTest, HostSeesOnlyCiphertext) {
  // The defining property (§2.2): the node admin cannot inspect code or
  // data inside the enclave.
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  enclave_.invoke(
      client.seal(InvokeRequest{"adder", "add", to_bytes("7")}, rng_));

  EXPECT_FALSE(auditor_.saw("untrusted-host", "contract/adder/code"));
  EXPECT_TRUE(auditor_.saw_any_form("untrusted-host", "contract/adder/code"));
  EXPECT_FALSE(auditor_.saw("untrusted-host", "tee/request"));
  EXPECT_TRUE(auditor_.saw_any_form("untrusted-host", "tee/request"));
  EXPECT_GT(auditor_.opaque_bytes_seen("untrusted-host", "tee/"), 0u);
  EXPECT_EQ(auditor_.bytes_seen("untrusted-host", "tee/"), 0u);
}

TEST_F(TeeTest, InvokeUnknownSessionFails) {
  SealedRequest bogus{999, to_bytes("junk")};
  EXPECT_FALSE(enclave_.invoke(bogus).has_value());
}

TEST_F(TeeTest, InvokeTamperedCiphertextFails) {
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  SealedRequest request =
      client.seal(InvokeRequest{"adder", "add", to_bytes("5")}, rng_);
  request.ciphertext[20] ^= 0xff;
  EXPECT_FALSE(enclave_.invoke(request).has_value());
}

TEST_F(TeeTest, EavesdropperCannotOpenResponses) {
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  const auto sealed = enclave_.invoke(
      client.seal(InvokeRequest{"adder", "add", to_bytes("1")}, rng_));
  ASSERT_TRUE(sealed.has_value());
  // A second client with its own session key cannot read the response.
  EnclaveClient eve(crypto::Group::test_group(), rng_);
  eve.accept(enclave_.open_session(eve.public_key(), rng_));
  EXPECT_FALSE(eve.open(*sealed).has_value());
}

TEST_F(TeeTest, SealedStorageRoundTrip) {
  enclave_.load(adder_contract());
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  enclave_.invoke(
      client.seal(InvokeRequest{"adder", "add", to_bytes("42")}, rng_));

  const common::Bytes sealed = enclave_.seal_state();
  // Host persists the blob but sees only ciphertext.
  EXPECT_FALSE(auditor_.saw("untrusted-host", "tee/sealed-state"));

  // A fresh enclave on the same device restores the state.
  Enclave restored("untrusted-host", manufacturer_, "dev-1", auditor_, rng_,
                   0);
  restored.load(adder_contract());
  EXPECT_TRUE(restored.unseal_state(sealed));
  EXPECT_EQ(restored.private_state().get("sum")->value, to_bytes("42"));
}

TEST_F(TeeTest, SealedStateBoundToDevice) {
  const common::Bytes sealed = enclave_.seal_state();
  // A different device has a different sealing key.
  Enclave other("host2", manufacturer_, "dev-2", auditor_, rng_, 0);
  EXPECT_FALSE(other.unseal_state(sealed));
}

TEST_F(TeeTest, UnknownContractInsideEnclaveReportsFailure) {
  EnclaveClient client(crypto::Group::test_group(), rng_);
  client.accept(enclave_.open_session(client.public_key(), rng_));
  const auto sealed = enclave_.invoke(
      client.seal(InvokeRequest{"ghost", "add", to_bytes("1")}, rng_));
  ASSERT_TRUE(sealed.has_value());
  const auto response = client.open(*sealed);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok);
}

}  // namespace
}  // namespace veil::tee
