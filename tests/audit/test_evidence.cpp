#include "audit/evidence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::audit {
namespace {

using common::to_bytes;

Evidence sample(common::Rng& rng, const crypto::KeyPair& reporter_key) {
  Evidence e;
  e.kind = Misbehavior::EndorserEquivocation;
  e.accused = "OrgB";
  e.reporter = "OrgA";
  e.detail = "conflicting write-sets for one proposal";
  e.detected_at = 42'000;
  e.proof_a = rng.next_bytes(32);
  e.proof_b = rng.next_bytes(32);
  e.sign(reporter_key);
  return e;
}

TEST(Evidence, SignVerifyRoundTrip) {
  common::Rng rng(5);
  const crypto::Group group = crypto::Group::test_group();
  const crypto::KeyPair reporter = crypto::KeyPair::generate(group, rng);
  const crypto::KeyPair stranger = crypto::KeyPair::generate(group, rng);
  const Evidence e = sample(rng, reporter);
  EXPECT_TRUE(e.verify(group, reporter.public_key()));
  EXPECT_FALSE(e.verify(group, stranger.public_key()));

  const Evidence back = Evidence::decode(e.encode());
  EXPECT_TRUE(back.verify(group, reporter.public_key()));
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.accused, e.accused);
  EXPECT_EQ(back.detail, e.detail);
  EXPECT_EQ(back.proof_a, e.proof_a);
  EXPECT_EQ(back.proof_b, e.proof_b);
}

TEST(Evidence, TamperingBreaksVerification) {
  common::Rng rng(6);
  const crypto::Group group = crypto::Group::test_group();
  const crypto::KeyPair reporter = crypto::KeyPair::generate(group, rng);
  Evidence e = sample(rng, reporter);
  e.accused = "OrgC";  // pin the blame on someone else
  EXPECT_FALSE(e.verify(group, reporter.public_key()));
}

TEST(EvidenceLog, DeduplicatesIndependentDetections) {
  common::Rng rng(7);
  const crypto::Group group = crypto::Group::test_group();
  const crypto::KeyPair a = crypto::KeyPair::generate(group, rng);
  const crypto::KeyPair b = crypto::KeyPair::generate(group, rng);

  EvidenceLog log;
  Evidence first = sample(rng, a);
  // A second reporter, at a later time, convicting the same offense:
  // one conviction, not two.
  Evidence second = first;
  second.reporter = "OrgC";
  second.detected_at = 99'000;
  second.sign(b);

  EXPECT_TRUE(log.add(first));
  EXPECT_FALSE(log.add(second));
  EXPECT_EQ(log.count(), 1u);
  EXPECT_TRUE(log.convicted("OrgB"));
  EXPECT_FALSE(log.convicted("OrgC"));
  EXPECT_EQ(log.against("OrgB").size(), 1u);

  // A genuinely different offense (different proofs) is a new entry.
  Evidence other = sample(rng, a);
  other.proof_b = to_bytes("different conflicting artifact");
  other.sign(a);
  EXPECT_TRUE(log.add(other));
  EXPECT_EQ(log.count(), 2u);
}

TEST(EvidenceLog, DigestTracksInsertionOrder) {
  common::Rng rng(8);
  const crypto::Group group = crypto::Group::test_group();
  const crypto::KeyPair key = crypto::KeyPair::generate(group, rng);

  common::Rng rng_a(9), rng_b(9);
  EvidenceLog log_a, log_b;
  log_a.add(sample(rng_a, key));
  log_b.add(sample(rng_b, key));
  EXPECT_EQ(log_a.digest(), log_b.digest());

  Evidence extra = sample(rng_a, key);
  extra.proof_a = to_bytes("x");
  extra.sign(key);
  log_a.add(extra);
  EXPECT_NE(log_a.digest(), log_b.digest());
}

TEST(Evidence, DecodeRejectsUnknownKindAndTrailingBytes) {
  common::Rng rng(10);
  const crypto::Group group = crypto::Group::test_group();
  const crypto::KeyPair key = crypto::KeyPair::generate(group, rng);
  const Evidence e = sample(rng, key);
  common::Bytes enc = e.encode();
  common::Bytes bad_kind = enc;
  bad_kind[0] = 0x7f;
  EXPECT_THROW(Evidence::decode(bad_kind), common::Error);
  common::Bytes trailing = enc;
  trailing.push_back(0);
  EXPECT_THROW(Evidence::decode(trailing), common::Error);
  enc.pop_back();
  EXPECT_THROW(Evidence::decode(enc), common::Error);
}

}  // namespace
}  // namespace veil::audit
