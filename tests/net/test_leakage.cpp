#include "net/leakage.hpp"

#include <gtest/gtest.h>

namespace veil::net {
namespace {

TEST(Leakage, RecordAndQuery) {
  LeakageAuditor auditor;
  auditor.record("orderer", "tx/1/data", 100);
  EXPECT_TRUE(auditor.saw("orderer", "tx/1/data"));
  EXPECT_FALSE(auditor.saw("peer", "tx/1/data"));
  EXPECT_EQ(auditor.bytes_seen("orderer", "tx/1/data"), 100u);
}

TEST(Leakage, PrefixMatching) {
  LeakageAuditor auditor;
  auditor.record("p", "tx/42/data", 10);
  auditor.record("p", "tx/42/parties", 5);
  auditor.record("p", "tx/43/data", 7);
  EXPECT_TRUE(auditor.saw("p", "tx/42/"));
  EXPECT_EQ(auditor.bytes_seen("p", "tx/42/"), 15u);
  EXPECT_EQ(auditor.bytes_seen("p", "tx/"), 22u);
  EXPECT_EQ(auditor.bytes_seen("p", ""), 22u);
  EXPECT_FALSE(auditor.saw("p", "tx/44/"));
}

TEST(Leakage, OpaqueObservationsDontCountAsPlaintext) {
  LeakageAuditor auditor;
  auditor.record("orderer", "tx/1/data", 32, /*plaintext=*/false);
  EXPECT_FALSE(auditor.saw("orderer", "tx/1/data"));
  EXPECT_TRUE(auditor.saw_any_form("orderer", "tx/1/data"));
  EXPECT_EQ(auditor.bytes_seen("orderer", "tx/1/data"), 0u);
  EXPECT_EQ(auditor.opaque_bytes_seen("orderer", "tx/1/data"), 32u);
}

TEST(Leakage, ObserversOf) {
  LeakageAuditor auditor;
  auditor.record("a", "secret", 1);
  auditor.record("b", "secret", 1);
  auditor.record("c", "secret", 1, /*plaintext=*/false);
  const auto observers = auditor.observers_of("secret");
  EXPECT_EQ(observers.size(), 2u);
  EXPECT_TRUE(observers.contains("a"));
  EXPECT_TRUE(observers.contains("b"));
  EXPECT_FALSE(observers.contains("c"));  // only saw ciphertext
}

TEST(Leakage, MultipleObservationsAccumulate) {
  LeakageAuditor auditor;
  auditor.record("p", "x", 10);
  auditor.record("p", "x", 20);
  EXPECT_EQ(auditor.bytes_seen("p", "x"), 30u);
  EXPECT_EQ(auditor.observations().size(), 2u);
}

TEST(Leakage, ClearResets) {
  LeakageAuditor auditor;
  auditor.record("p", "x", 10);
  auditor.clear();
  EXPECT_FALSE(auditor.saw("p", "x"));
  EXPECT_TRUE(auditor.observations().empty());
}

TEST(Leakage, EmptyAuditorSeesNothing) {
  const LeakageAuditor auditor;
  EXPECT_FALSE(auditor.saw("anyone", ""));
  EXPECT_TRUE(auditor.observers_of("").empty());
  EXPECT_EQ(auditor.bytes_seen("anyone"), 0u);
}

}  // namespace
}  // namespace veil::net
