// Frame codec: round-trips, streaming reassembly across arbitrary read
// boundaries, and decode-fuzz — truncation, oversized declared lengths,
// checksum bit-flips, and random junk must all be rejected as
// ProtocolError (poisoning the decoder), never crash or misparse.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace veil::net {
namespace {

using common::Bytes;

Frame data_frame(std::uint64_t seq, const std::string& body) {
  Frame f;
  f.type = FrameType::Data;
  f.link_seq = seq;
  f.body = Bytes(body.begin(), body.end());
  return f;
}

TEST(Frame, EncodeDecodeRoundTrip) {
  const Frame f = data_frame(42, "hello wire");
  const Frame back = Frame::decode(f.encode());
  EXPECT_EQ(back, f);
}

TEST(Frame, ControlFramesRoundTrip) {
  for (const FrameType t : {FrameType::Hello, FrameType::Welcome,
                            FrameType::Ack, FrameType::Ping, FrameType::Pong}) {
    Frame f;
    f.type = t;
    f.link_seq = 0;
    f.body = {0x01, 0x02};
    EXPECT_EQ(Frame::decode(f.encode()), f);
  }
}

TEST(Frame, EmptyBodyRoundTrip) {
  Frame f;
  f.type = FrameType::Ping;
  EXPECT_EQ(Frame::decode(f.encode()), f);
}

TEST(Frame, TrailingBytesRejected) {
  Bytes wire = data_frame(1, "x").encode();
  wire.push_back(0x00);
  EXPECT_THROW(Frame::decode(wire), common::ProtocolError);
}

TEST(Frame, EveryTruncationRejectedOrIncomplete) {
  // A truncated buffer — including one cut inside the length prefix —
  // must either report "need more bytes" (streaming) or throw; whole-
  // buffer decode always throws.
  const Bytes wire = data_frame(7, "truncate me").encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(Frame::decode(cut), common::ProtocolError) << "len=" << len;
  }
}

TEST(Frame, OversizedDeclaredLengthRejectedBeforeBuffering) {
  Bytes wire = data_frame(1, "abc").encode();
  // Corrupt body_len (offset 13..16) to declare > kMaxBody.
  wire[13] = 0xff;
  wire[14] = 0xff;
  wire[15] = 0xff;
  wire[16] = 0x7f;
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_THROW(decoder.next(out), common::ProtocolError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, EveryChecksumAndHeaderBitFlipRejected) {
  const Frame f = data_frame(9, "integrity");
  const Bytes wire = f.encode();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = wire;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const Frame back = Frame::decode(flipped);
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " decoded to " << (back == f ? "same" : "different")
                      << " frame";
      } catch (const common::Error&) {
        // rejected cleanly — required
      }
    }
  }
}

TEST(Frame, DecoderPoisonIsPermanent) {
  Bytes wire = data_frame(1, "poison").encode();
  wire[wire.size() - 1] ^= 0x01;  // break the checksum
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_THROW(decoder.next(out), common::ProtocolError);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_THROW(decoder.next(out), common::ProtocolError);
  EXPECT_THROW(decoder.feed(wire), common::ProtocolError);
}

TEST(Frame, BadMagicRejected) {
  Bytes wire = data_frame(1, "magic").encode();
  wire[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame out;
  EXPECT_THROW(decoder.next(out), common::ProtocolError);
}

class FrameFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameFuzz, ReassemblyAcrossArbitrarySplitBoundaries) {
  common::Rng rng(GetParam());
  // A stream of frames with random bodies, fed to the decoder in random
  // chunk sizes (1..17 bytes): every frame must come out intact, in
  // order, regardless of where the reads split.
  std::vector<Frame> frames;
  Bytes stream;
  for (int i = 0; i < 50; ++i) {
    Frame f = data_frame(static_cast<std::uint64_t>(i + 1),
                         std::string(rng.next_below(64), 'a'));
    for (auto& b : f.body) b = static_cast<std::uint8_t>(rng.next_below(256));
    const Bytes wire = f.encode();
    stream.insert(stream.end(), wire.begin(), wire.end());
    frames.push_back(std::move(f));
  }
  FrameDecoder decoder;
  std::vector<Frame> out;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.next_below(17), stream.size() - pos);
    decoder.feed(common::BytesView(stream.data() + pos, n));
    pos += n;
    Frame f;
    while (decoder.next(f)) out.push_back(f);
  }
  ASSERT_EQ(out.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(out[i], frames[i]) << "frame " << i;
  }
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST_P(FrameFuzz, RandomJunkNeverCrashesTheDecoder) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes junk = rng.next_bytes(rng.next_below(512));
    FrameDecoder decoder;
    Frame out;
    try {
      decoder.feed(junk);
      while (decoder.next(out)) {
        // Random bytes passing a 64-bit checksum: effectively impossible.
        ADD_FAILURE() << "junk decoded as a frame";
      }
    } catch (const common::Error&) {
      // rejected cleanly
    }
  }
}

TEST_P(FrameFuzz, BodyCodecsRejectJunkAndTruncation) {
  common::Rng rng(GetParam());
  const auto check = [](const Bytes& d) {
    try {
      (void)WireMessage::decode(d);
    } catch (const common::Error&) {
    }
    try {
      (void)HelloBody::decode(d);
    } catch (const common::Error&) {
    }
    try {
      (void)WelcomeBody::decode(d);
    } catch (const common::Error&) {
    }
    try {
      (void)AckBody::decode(d);
    } catch (const common::Error&) {
    }
  };
  for (int i = 0; i < 100; ++i) {
    check(rng.next_bytes(rng.next_below(128)));
  }
  WireMessage wm;
  wm.message = Message{"a", "b", "topic", {1, 2, 3}, 10, 20};
  wm.engine_seq = 7;
  const Bytes good = wm.encode();
  for (std::size_t len = 0; len < good.size(); ++len) {
    check(Bytes(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len)));
  }
  const WireMessage back = WireMessage::decode(good);
  EXPECT_EQ(back.message.from, "a");
  EXPECT_EQ(back.message.payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(back.engine_seq, 7u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace veil::net
