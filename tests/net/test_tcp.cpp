// TcpTransport: the real-socket backend must be observationally
// identical to SimNetwork at the engine layer — same transcripts, same
// message-layer stats under the same seed — while its supervisor and
// session-resumption machinery absorb real connection loss, torn frames
// and syscall chaos below.
#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"

namespace veil::net {
namespace {

using common::to_bytes;

void spin_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Poll `pred` (which may refresh stats) for up to `budget_ms`.
template <typename Pred>
bool eventually(Pred pred, int budget_ms = 5000) {
  for (int waited = 0; waited < budget_ms; waited += 2) {
    if (pred()) return true;
    spin_ms(2);
  }
  return pred();
}

TEST(TcpTransport, DeliversOverRealSockets) {
  TcpTransport net(common::Rng(1), LatencyModel{500, 0, 0.0});
  std::vector<std::string> got;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message& m) {
    got.push_back(m.topic + ":" + common::to_string(m.payload));
  });
  net.send("a", "b", "greet", to_bytes("hello"));
  net.send("a", "b", "again", to_bytes("world"));
  EXPECT_EQ(net.run(), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "greet:hello");
  EXPECT_EQ(got[1], "again:world");
  EXPECT_TRUE(eventually([&] { return net.stats().tcp_connects >= 1; }));
  EXPECT_EQ(net.stats().tcp_reconnects, 0u);
}

TEST(TcpTransport, BidirectionalBurstKeepsEngineOrder) {
  TcpTransport net(common::Rng(7));
  std::vector<common::SimTime> stamps;
  const auto record = [&](const Message& m) {
    stamps.push_back(m.delivered_at);
  };
  net.attach("a", record);
  net.attach("b", record);
  for (int i = 0; i < 200; ++i) {
    net.send("a", "b", "ab", to_bytes(std::to_string(i)));
    net.send("b", "a", "ba", to_bytes(std::to_string(i)));
  }
  EXPECT_EQ(net.run(), 400u);
  ASSERT_EQ(stamps.size(), 400u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]) << "delivery left time order at " << i;
  }
}

// ---------------------------------------------------------------------
// Backend equivalence: one scripted workload with modeled faults at
// every layer (loss, corruption, partitions, crash/restart, quarantine),
// executed on both backends with the same seed. Transcripts and
// message-layer stats must match bit for bit.
// ---------------------------------------------------------------------

std::vector<std::string> run_script(Transport& net) {
  std::vector<std::string> log;
  const auto attach = [&](const std::string& name) {
    net.attach(name, [&log, name](const Message& m) {
      log.push_back(name + "<-" + m.from + ":" + m.topic + ":" +
                    common::to_hex(m.payload) + "@" +
                    std::to_string(m.delivered_at));
    });
  };
  attach("alice");
  attach("bob");
  attach("carol");

  net.set_drop_probability(0.15);
  net.set_corruption_probability(0.1);
  for (int i = 0; i < 40; ++i) {
    net.send("alice", "bob", "t" + std::to_string(i),
             to_bytes("payload-" + std::to_string(i)));
    if (i % 3 == 0) {
      net.send("bob", "carol", "u" + std::to_string(i), to_bytes("relay"));
    }
    if (i % 7 == 0) net.broadcast("carol", "bcast", to_bytes("fanout"));
  }
  net.run();

  net.set_drop_probability(0.0);
  net.set_corruption_probability(0.0);
  net.set_partitions({{"alice"}, {"bob", "carol"}});
  for (int i = 0; i < 10; ++i) {
    net.send("alice", "bob", "cut" + std::to_string(i), to_bytes("lost"));
    net.send("carol", "bob", "in" + std::to_string(i), to_bytes("kept"));
  }
  net.run();
  net.set_partitions({});

  net.crash("bob");
  net.send("alice", "bob", "while-down", to_bytes("dropped"));
  net.run();
  net.restart("bob");
  net.send("alice", "bob", "after-up", to_bytes("arrives"));
  net.run();

  net.quarantine("carol");
  net.send("carol", "alice", "muzzled", to_bytes("dropped"));
  net.send("bob", "alice", "fine", to_bytes("arrives"));
  net.run();
  net.release("carol");
  return log;
}

TEST(TcpTransport, BitIdenticalToSimNetworkUnderModeledFaults) {
  SimNetwork sim(common::Rng(4242));
  TcpTransport tcp(common::Rng(4242));
  const auto sim_log = run_script(sim);
  const auto tcp_log = run_script(tcp);
  ASSERT_EQ(sim_log.size(), tcp_log.size());
  for (std::size_t i = 0; i < sim_log.size(); ++i) {
    EXPECT_EQ(sim_log[i], tcp_log[i]) << "transcripts diverge at " << i;
  }
  const NetworkStats& a = sim.stats();
  const NetworkStats& b = tcp.stats();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.dropped_random_loss, b.dropped_random_loss);
  EXPECT_EQ(a.dropped_partition, b.dropped_partition);
  EXPECT_EQ(a.dropped_crashed, b.dropped_crashed);
  EXPECT_EQ(a.dropped_quarantined, b.dropped_quarantined);
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted);
  // And the sim backend, by definition, has no transport tier.
  EXPECT_EQ(a.tcp_connects, 0u);
  EXPECT_GT(b.tcp_connects, 0u);
}

// ---------------------------------------------------------------------
// Session resumption and the fault injector.
// ---------------------------------------------------------------------

struct ExactlyOnce {
  std::map<std::string, int> seen;
  void note(const Message& m) { ++seen[m.topic]; }
  int duplicates() const {
    int d = 0;
    for (const auto& [t, n] : seen) d += n - 1;
    return d;
  }
};

TEST(TcpTransport, MidstreamResetsNeverDropOrDuplicate) {
  TcpConfig config;
  config.fault_seed = 99;
  config.faults.midstream_reset = 0.1;
  config.faults.partial_write = 0.3;
  config.faults.short_read = 0.3;
  TcpTransport net(common::Rng(11), LatencyModel{}, config);
  ExactlyOnce tally;
  net.attach("tx", [](const Message&) {});
  net.attach("rx", [&](const Message& m) { tally.note(m); });
  // Deliver in small batches: each run() is a quiescence barrier, so the
  // stream cannot coalesce into a handful of giant writes — the injector
  // gets hundreds of syscall decisions to work with.
  const int kMessages = 400;
  std::size_t delivered = 0;
  for (int i = 0; i < kMessages; ++i) {
    net.send("tx", "rx", "m" + std::to_string(i), to_bytes("chaos"));
    if (i % 4 == 3) delivered += net.run();
  }
  delivered += net.run();
  EXPECT_EQ(delivered, static_cast<std::size_t>(kMessages));
  EXPECT_EQ(static_cast<int>(tally.seen.size()), kMessages);
  EXPECT_EQ(tally.duplicates(), 0);
  EXPECT_TRUE(eventually([&] { return net.stats().tcp_reconnects > 0; }));
  EXPECT_GT(net.stats().tcp_session_resumptions, 0u);
  EXPECT_GT(net.stats().tcp_injected_faults, 0u);
  EXPECT_GT(net.stats().tcp_partial_write_continuations, 0u);
  EXPECT_GT(net.stats().tcp_short_reads, 0u);
}

TEST(TcpTransport, TornFramesAreRepairedBySessionResumption) {
  TcpConfig config;
  config.fault_seed = 7;
  config.faults.torn_frame = 0.05;
  TcpTransport net(common::Rng(12), LatencyModel{}, config);
  ExactlyOnce tally;
  net.attach("tx", [](const Message&) {});
  net.attach("rx", [&](const Message& m) { tally.note(m); });
  const int kMessages = 300;
  for (int i = 0; i < kMessages; ++i) {
    net.send("tx", "rx", "m" + std::to_string(i), to_bytes("torn?"));
  }
  EXPECT_EQ(net.run(), static_cast<std::size_t>(kMessages));
  EXPECT_EQ(static_cast<int>(tally.seen.size()), kMessages);
  EXPECT_EQ(tally.duplicates(), 0);
  EXPECT_TRUE(eventually([&] { return net.stats().tcp_frames_torn > 0; }));
  EXPECT_GT(net.stats().tcp_reconnects, 0u);
}

TEST(TcpTransport, UniformChaosProfileConvergesExactlyOnce) {
  TcpConfig config;
  config.fault_seed = 2026;
  config.faults = SocketFaultProfile::uniform(0.2);
  TcpTransport net(common::Rng(13), LatencyModel{}, config);
  ExactlyOnce tally;
  const auto note = [&](const Message& m) { tally.note(m); };
  net.attach("a", note);
  net.attach("b", note);
  net.attach("c", note);
  int sent = 0;
  for (int i = 0; i < 120; ++i) {
    net.send("a", "b", "ab" + std::to_string(i), to_bytes("x"));
    net.send("b", "c", "bc" + std::to_string(i), to_bytes("y"));
    net.send("c", "a", "ca" + std::to_string(i), to_bytes("z"));
    sent += 3;
  }
  EXPECT_EQ(net.run(), static_cast<std::size_t>(sent));
  EXPECT_EQ(static_cast<int>(tally.seen.size()), sent);
  EXPECT_EQ(tally.duplicates(), 0);
  EXPECT_TRUE(eventually([&] { return net.stats().tcp_injected_faults > 0; }));
}

// ---------------------------------------------------------------------
// Bounded write queues: a link with a wedged peer fills its window and
// surfaces net::Busy instead of buffering without bound.
// ---------------------------------------------------------------------

TEST(TcpTransport, WriteQueueOverflowSurfacesBusy) {
  TcpConfig config;
  config.link_window = 8;
  TcpTransport net(common::Rng(21), LatencyModel{}, config);
  std::set<std::string> delivered;
  std::set<std::string> refused;
  net.attach("tx", [&](const Message& m) {
    if (m.topic == "net.busy") {
      refused.insert(Busy::decode(m.payload).topic);
    }
  });
  net.attach("rx", [&](const Message& m) { delivered.insert(m.topic); });

  // Establish the link, then wedge the receiver.
  net.send("tx", "rx", "warmup", to_bytes("w"));
  net.run();
  ASSERT_TRUE(eventually([&] { return net.stats().tcp_connects >= 1; }));
  spin_ms(20);  // let the warmup ack drain the ring
  net.debug_freeze("rx", true);

  const int kBurst = static_cast<int>(config.link_window) + 6;
  for (int i = 0; i < kBurst; ++i) {
    net.send("tx", "rx", "m" + std::to_string(i), to_bytes("burst"));
  }
  // Refusals are decided synchronously at the send point.
  EXPECT_GE(net.stats().tcp_write_overflow, 5u);
  EXPECT_GE(net.stats().busy_notices, 5u);

  // Thaw: every admitted message lands exactly once, every refused one
  // was answered with a Busy naming its topic — nothing vanished.
  net.debug_freeze("rx", false);
  net.run();
  delivered.erase("warmup");
  EXPECT_EQ(delivered.size() + refused.size(),
            static_cast<std::size_t>(kBurst));
  for (const auto& t : refused) {
    EXPECT_FALSE(delivered.contains(t)) << t << " both refused and delivered";
  }
}

// ---------------------------------------------------------------------
// Connection supervision: heartbeat misses convict a wedged peer, feed
// the circuit breaker, and recovery closes the loop.
// ---------------------------------------------------------------------

TEST(TcpTransport, HeartbeatMissesFeedBreakerAndRecoveryCloses) {
  TcpConfig config;
  config.heartbeat_interval_ms = 5;
  config.heartbeat_miss_limit = 2;
  TcpTransport net(common::Rng(31), LatencyModel{}, config);
  BreakerConfig bc;
  bc.failure_threshold = 1;
  bc.open_duration_us = 1'000;
  CircuitBreaker breaker(bc);
  net.set_link_breaker(&breaker);

  int rx_count = 0;
  net.attach("tx", [](const Message&) {});
  net.attach("rx", [&](const Message&) { ++rx_count; });
  net.send("tx", "rx", "establish", to_bytes("hb"));
  net.run();
  ASSERT_EQ(rx_count, 1);

  // Wedge the peer: pings go unanswered, misses accumulate, the link is
  // declared failed and the breaker opens — all from transport signals.
  net.debug_freeze("rx", true);
  ASSERT_TRUE(eventually([&] {
    net.stats();  // drains supervisor events into the breaker
    return breaker.state("rx", net.clock().now()) == BreakerState::Open;
  }));
  EXPECT_GT(net.stats().tcp_heartbeat_misses, 0u);

  // Thaw. Advance the sim clock past the open window so the breaker will
  // admit a half-open probe, then send: the reconnect handshake reports
  // success and closes the breaker.
  net.debug_freeze("rx", false);
  net.schedule(net.clock().now() + bc.open_duration_us + 1, [] {});
  net.run();
  EXPECT_TRUE(breaker.allow("rx", net.clock().now()));  // half-open probe
  net.send("tx", "rx", "probe", to_bytes("hb"));
  net.run();
  EXPECT_EQ(rx_count, 2);
  EXPECT_TRUE(eventually([&] {
    net.stats();
    return breaker.state("rx", net.clock().now()) == BreakerState::Closed;
  }));
  EXPECT_TRUE(eventually([&] { return net.stats().tcp_reconnects >= 1; }));
}

}  // namespace
}  // namespace veil::net
