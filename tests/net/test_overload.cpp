// Overload tier, network layer: the Busy wire codec, bounded inboxes
// with explicit backpressure, busy-driven retransmission deferral,
// deadline-carrying envelopes, per-link send windows, decorrelated
// retry jitter, and the circuit breaker (unit state machine + channel
// integration).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/overload.hpp"
#include "net/reliable.hpp"

namespace veil::net {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

TEST(Overload, BusyRoundTrip) {
  Busy busy;
  busy.topic = "fabric.deliver";
  busy.retry_after_us = 20'000;
  busy.queue_depth = 7;
  const Busy back = Busy::decode(busy.encode());
  EXPECT_EQ(back, busy);

  // Trailing bytes are rejected.
  Bytes enc = busy.encode();
  enc.push_back(0);
  EXPECT_THROW(Busy::decode(enc), common::Error);
  // Wrong magic is rejected.
  Bytes wrong = busy.encode();
  wrong[0] ^= 0xff;
  EXPECT_THROW(Busy::decode(wrong), common::Error);
  // Truncation is rejected.
  EXPECT_THROW(Busy::decode(common::BytesView(enc.data(), 3)), common::Error);
}

TEST(Overload, BoundedInboxRefusesWithBusyNotice) {
  SimNetwork net{Rng(11), LatencyModel{100, 0, 0.0}};
  net.set_inbox_capacity(2);
  std::size_t delivered = 0;
  std::vector<Busy> notices;
  net.attach("a", [&](const Message& m) {
    if (m.topic == "net.busy") notices.push_back(Busy::decode(m.payload));
  });
  net.attach("b", [&](const Message&) { ++delivered; });

  // Four back-to-back sends: the receiver's queue holds two, the rest
  // are refused and answered with Busy instead of silently vanishing.
  for (int i = 0; i < 4; ++i) net.send("a", "b", "t", to_bytes("x"));
  EXPECT_EQ(net.inbox_depth("b"), 2u);
  net.run();

  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(net.stats().dropped_overflow, 2u);
  EXPECT_EQ(net.stats().busy_notices, 2u);
  EXPECT_EQ(net.stats().inbox_high_water, 2u);
  ASSERT_EQ(notices.size(), 2u);
  EXPECT_EQ(notices[0].topic, "t");
  EXPECT_EQ(notices[0].queue_depth, 2u);
  EXPECT_GT(notices[0].retry_after_us, 0u);
  EXPECT_EQ(net.inbox_depth("b"), 0u);  // drained
}

TEST(Overload, BusyNoticeBypassesCapacity) {
  // "Never answer backpressure with backpressure": the notice itself is
  // enqueued even when the sender's own inbox is full, and a refused
  // net.busy message never generates another notice.
  SimNetwork net{Rng(12), LatencyModel{100, 0, 0.0}};
  net.set_inbox_capacity(1);
  std::size_t a_busy = 0;
  net.attach("a", [&](const Message& m) { a_busy += m.topic == "net.busy"; });
  net.attach("b", [](const Message&) {});

  net.send("b", "a", "fill", to_bytes("x"));  // a's inbox is now full
  net.send("a", "b", "t", to_bytes("x"));     // accepted by b
  net.send("a", "b", "t", to_bytes("x"));     // refused -> Busy to full a
  net.run();

  EXPECT_EQ(net.stats().busy_notices, 1u);
  EXPECT_EQ(a_busy, 1u);  // delivered despite a's inbox being at capacity
}

TEST(Overload, BusyDefersRetransmissionWithoutSpendingAttempts) {
  SimNetwork net{Rng(13), LatencyModel{100, 0, 0.0}};
  net.set_inbox_capacity(1);
  net.set_busy_retry_after(3'000);
  ReliableChannel channel(net);
  std::size_t received = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++received; });

  // Two concurrent sends: the second overflows b's single-slot inbox,
  // draws a Busy, and its flight defers until the receiver drains.
  channel.send("a", "b", "t", to_bytes("one"));
  channel.send("a", "b", "t", to_bytes("two"));
  net.run();

  EXPECT_EQ(received, 2u);  // exactly once each, despite the refusal
  EXPECT_GE(channel.stats().busy_deferrals, 1u);
  EXPECT_EQ(net.stats().busy_deferrals, channel.stats().busy_deferrals);
  EXPECT_GE(net.stats().busy_notices, 1u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(Overload, ExpiredFlightAbandonsRetransmission) {
  SimNetwork net{Rng(14), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(1.0);  // network is dead
  ReliableChannel channel(net);
  channel.attach("a", nullptr);
  channel.attach("b", [](const Message&) {});

  // Deadline between the first and second retransmission: the channel
  // stops paying for the message instead of burning its full budget.
  channel.send("a", "b", "t", to_bytes("x"), /*deadline_us=*/8'000);
  net.run();

  EXPECT_EQ(channel.stats().expired, 1u);
  EXPECT_EQ(channel.stats().gave_up, 0u);
  EXPECT_EQ(channel.stats().retransmits, 1u);  // one try, then abandoned
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(net.stats().expired_in_flight, 1u);
  EXPECT_EQ(net.stats().retries_exhausted, 0u);
}

TEST(Overload, LateArrivalAckedButDropped) {
  SimNetwork net{Rng(15), LatencyModel{100, 0, 0.0}};
  ReliableChannel channel(net);
  std::size_t handled = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++handled; });

  // Deadline shorter than one hop: the message arrives late. The
  // receiver acks (so the sender stops retransmitting) but never
  // forwards stale work to the handler.
  channel.send("a", "b", "t", to_bytes("x"), /*deadline_us=*/50);
  net.run();

  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(channel.stats().expired_on_arrival, 1u);
  EXPECT_EQ(channel.stats().acked, 1u);
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(net.stats().expired_in_flight, 1u);
}

TEST(Overload, SendWindowQueuesThenRefuses) {
  SimNetwork net{Rng(16), LatencyModel{100, 0, 0.0}};
  RetryPolicy policy;
  policy.window = 1;
  policy.window_queue = 1;
  ReliableChannel channel(net, policy);
  std::size_t received = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++received; });

  channel.send("a", "b", "t", to_bytes("1"));  // dispatches
  channel.send("a", "b", "t", to_bytes("2"));  // queued behind the window
  channel.send("a", "b", "t", to_bytes("3"));  // refused: queue full
  EXPECT_EQ(channel.stats().window_queued, 1u);
  EXPECT_EQ(channel.stats().window_rejected, 1u);

  net.run();
  // The queued send dispatched once the first flight settled.
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(Overload, DecorrelatedJitterIsSeedReproducible) {
  const auto run = [] {
    SimNetwork net{Rng(17), LatencyModel{100, 50, 0.0}};
    net.set_drop_probability(0.5);
    ReliableChannel channel(net);
    std::size_t received = 0;
    channel.attach("a", nullptr);
    channel.attach("b", [&](const Message&) { ++received; });
    for (int i = 0; i < 20; ++i) {
      channel.send("a", "b", "t", to_bytes("x"));
      net.run();
    }
    return std::make_tuple(received, channel.stats().retransmits,
                           net.clock().now());
  };
  // Same seeds, same jittered schedule, same transcript — bit-identical
  // down to the final clock reading.
  EXPECT_EQ(run(), run());
}

TEST(Overload, JitterCapsAtMaxTimeout) {
  // With jitter on, every drawn timeout stays within
  // [initial, max_timeout] — indirectly pinned by forcing many
  // retransmissions and checking the give-up clock bound.
  SimNetwork net{Rng(18), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(1.0);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.max_timeout_us = 20'000;
  ReliableChannel channel(net, policy);
  channel.attach("a", nullptr);
  channel.attach("b", [](const Message&) {});
  channel.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(channel.stats().gave_up, 1u);
  // 3 timer arms, each in [5'000, 20'000]: the clock lands in range.
  EXPECT_GE(net.clock().now(), 15'000u);
  EXPECT_LE(net.clock().now(), 60'000u);
}

TEST(Breaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 3});
  EXPECT_TRUE(breaker.allow("peer", 0));
  breaker.record_failure("peer", 10);
  breaker.record_failure("peer", 20);
  EXPECT_EQ(breaker.state("peer", 25), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow("peer", 25));
  breaker.record_failure("peer", 30);
  EXPECT_EQ(breaker.state("peer", 35), BreakerState::Open);
  EXPECT_FALSE(breaker.allow("peer", 35));
  EXPECT_EQ(breaker.stats().opened, 1u);
  EXPECT_EQ(breaker.stats().rejected, 1u);
}

TEST(Breaker, SuccessResetsFailureStreak) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 3});
  breaker.record_failure("peer", 10);
  breaker.record_failure("peer", 20);
  breaker.record_success("peer", 30);  // streak broken
  breaker.record_failure("peer", 40);
  breaker.record_failure("peer", 50);
  EXPECT_EQ(breaker.state("peer", 60), BreakerState::Closed);
  breaker.record_failure("peer", 70);
  EXPECT_EQ(breaker.state("peer", 80), BreakerState::Open);
}

TEST(Breaker, HalfOpenAdmitsOneProbeThenCloses) {
  CircuitBreaker breaker(
      BreakerConfig{.failure_threshold = 1, .open_duration_us = 1'000});
  breaker.record_failure("peer", 0);
  EXPECT_FALSE(breaker.allow("peer", 500));  // still open
  // Past the open window the breaker half-opens and admits ONE probe.
  EXPECT_TRUE(breaker.allow("peer", 1'500));
  EXPECT_EQ(breaker.state("peer", 1'500), BreakerState::HalfOpen);
  EXPECT_FALSE(breaker.allow("peer", 1'600));  // probe outstanding
  EXPECT_EQ(breaker.stats().half_open_probes, 1u);

  breaker.record_success("peer", 2'000);
  EXPECT_EQ(breaker.state("peer", 2'100), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow("peer", 2'100));
  EXPECT_EQ(breaker.stats().closed, 1u);
}

TEST(Breaker, FailedProbeReopens) {
  CircuitBreaker breaker(
      BreakerConfig{.failure_threshold = 1, .open_duration_us = 1'000});
  breaker.record_failure("peer", 0);
  EXPECT_TRUE(breaker.allow("peer", 1'500));  // the probe
  breaker.record_failure("peer", 1'600);      // probe failed
  EXPECT_EQ(breaker.state("peer", 1'700), BreakerState::Open);
  EXPECT_FALSE(breaker.allow("peer", 1'700));
  // A fresh open window admits the next probe.
  EXPECT_TRUE(breaker.allow("peer", 2'700));
  EXPECT_EQ(breaker.stats().opened, 2u);
}

TEST(Breaker, PeersAreIndependent) {
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1});
  breaker.record_failure("down", 10);
  EXPECT_FALSE(breaker.allow("down", 20));
  EXPECT_TRUE(breaker.allow("up", 20));
  EXPECT_EQ(breaker.state("up", 20), BreakerState::Closed);
}

TEST(Breaker, ChannelOpensBreakerOverDeadPeer) {
  SimNetwork net{Rng(19), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(1.0);
  ReliableChannel channel(net);
  CircuitBreaker breaker(BreakerConfig{.failure_threshold = 1});
  channel.set_breaker(&breaker);
  channel.attach("a", nullptr);
  channel.attach("b", [](const Message&) {});

  // First send burns its retry budget; the exhaustion trips the breaker.
  channel.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(channel.stats().gave_up, 1u);
  EXPECT_EQ(breaker.state("b", net.clock().now()), BreakerState::Open);

  // Second send is refused up front — no wire traffic, no retry storm.
  const std::uint64_t sent_before = channel.stats().sent;
  channel.send("a", "b", "t", to_bytes("y"));
  EXPECT_EQ(channel.stats().sent, sent_before);
  EXPECT_EQ(channel.stats().breaker_rejected, 1u);
  EXPECT_EQ(net.stats().breaker_rejected, 1u);
}

TEST(Breaker, AckClosesAfterRecovery) {
  SimNetwork net{Rng(20), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(1.0);
  RetryPolicy policy;
  policy.max_attempts = 2;
  ReliableChannel channel(net, policy);
  CircuitBreaker breaker(
      BreakerConfig{.failure_threshold = 1, .open_duration_us = 50'000});
  channel.set_breaker(&breaker);
  std::size_t received = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++received; });

  channel.send("a", "b", "t", to_bytes("x"));
  net.run();
  ASSERT_EQ(breaker.state("b", net.clock().now()), BreakerState::Open);

  // The peer heals; after the open window a probe send goes through and
  // its ack closes the breaker.
  net.set_drop_probability(0.0);
  net.schedule(net.clock().now() + 60'000, [] {});
  net.run();  // advance past the open window
  channel.send("a", "b", "t", to_bytes("probe"));
  net.run();
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(breaker.state("b", net.clock().now()), BreakerState::Closed);
}

}  // namespace
}  // namespace veil::net
