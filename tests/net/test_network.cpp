#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::net {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

TEST(Network, PointToPointDelivery) {
  SimNetwork net{Rng(1)};
  std::vector<std::string> received;
  net.attach("alice", [](const Message&) {});
  net.attach("bob", [&](const Message& m) {
    received.push_back(common::to_string(m.payload));
  });
  net.send("alice", "bob", "greeting", to_bytes("hi"));
  EXPECT_EQ(net.run(), 1u);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hi");
}

TEST(Network, SendToUnknownThrows) {
  SimNetwork net{Rng(1)};
  net.attach("alice", [](const Message&) {});
  EXPECT_THROW(net.send("alice", "nobody", "t", {}), common::ProtocolError);
}

TEST(Network, DeliveryOrderRespectsSimTime) {
  SimNetwork net{Rng(2), LatencyModel{100, 0, 0.0}};
  std::vector<std::string> order;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message& m) { order.push_back(m.topic); });
  net.send("a", "b", "first", {});
  net.send("a", "b", "second", {});
  net.run();
  ASSERT_EQ(order.size(), 2u);
  // Equal latency: FIFO by sequence number.
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
}

TEST(Network, HandlersCanSendMore) {
  SimNetwork net{Rng(3)};
  int pongs = 0;
  net.attach("ping", [&](const Message& m) {
    if (m.topic == "pong") ++pongs;
  });
  net.attach("pong", [&](const Message& m) {
    net.send("pong", "ping", "pong", m.payload);
  });
  net.send("ping", "pong", "ping", to_bytes("x"));
  net.run();
  EXPECT_EQ(pongs, 1);
}

TEST(Network, ClockAdvancesWithDeliveries) {
  SimNetwork net{Rng(4), LatencyModel{500, 0, 0.0}};
  net.attach("a", [](const Message&) {});
  net.attach("b", [](const Message&) {});
  EXPECT_EQ(net.clock().now(), 0u);
  net.send("a", "b", "t", {});
  net.run();
  EXPECT_GE(net.clock().now(), 500u);
}

TEST(Network, PerByteLatency) {
  SimNetwork net{Rng(5), LatencyModel{0, 0, 1.0}};
  common::SimTime delivered_at = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message& m) { delivered_at = m.delivered_at; });
  net.send("a", "b", "t", Bytes(1000, 0));
  net.run();
  EXPECT_GE(delivered_at, 1000u);
}

TEST(Network, BroadcastReachesAllButSender) {
  SimNetwork net{Rng(6)};
  int count = 0;
  for (const char* name : {"a", "b", "c", "d"}) {
    net.attach(name, [&](const Message&) { ++count; });
  }
  net.broadcast("a", "announce", to_bytes("x"));
  net.run();
  EXPECT_EQ(count, 3);
}

TEST(Network, DropProbabilityDropsEverythingAtOne) {
  SimNetwork net{Rng(7)};
  int received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  net.set_drop_probability(1.0);
  for (int i = 0; i < 10; ++i) net.send("a", "b", "t", {});
  net.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().messages_dropped, 10u);
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  SimNetwork net{Rng(8)};
  int ab = 0, ac = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++ab; });
  net.attach("c", [&](const Message&) { ++ac; });
  net.set_partitions({{"a", "b"}, {"c"}});
  net.send("a", "b", "t", {});
  net.send("a", "c", "t", {});
  net.run();
  EXPECT_EQ(ab, 1);
  EXPECT_EQ(ac, 0);
  // Healing the partition restores delivery.
  net.set_partitions({});
  net.send("a", "c", "t", {});
  net.run();
  EXPECT_EQ(ac, 1);
}

TEST(Network, DetachedReceiverCountsAsDrop) {
  SimNetwork net{Rng(9)};
  net.attach("a", [](const Message&) {});
  net.attach("b", [](const Message&) {});
  net.send("a", "b", "t", {});
  net.detach("b");
  net.run();
  EXPECT_EQ(net.stats().messages_delivered, 0u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST(Network, StatsAccumulate) {
  SimNetwork net{Rng(10)};
  net.attach("a", [](const Message&) {});
  net.attach("b", [](const Message&) {});
  net.send("a", "b", "t", Bytes(10, 0));
  net.send("b", "a", "t", Bytes(20, 0));
  net.run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 30u);
}

TEST(Network, RecipientObservationRecorded) {
  SimNetwork net{Rng(11)};
  net.attach("a", [](const Message&) {});
  net.attach("b", [](const Message&) {});
  net.send("a", "b", "secret-topic", Bytes(64, 1));
  net.run();
  EXPECT_TRUE(net.auditor().saw("b", "net/secret-topic"));
  EXPECT_FALSE(net.auditor().saw("a", "net/secret-topic"));
  EXPECT_EQ(net.auditor().bytes_seen("b", "net/secret-topic"), 64u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto trace = [](std::uint64_t seed) {
    SimNetwork net{Rng(seed)};
    std::vector<common::SimTime> times;
    net.attach("a", [](const Message&) {});
    net.attach("b", [&](const Message& m) { times.push_back(m.delivered_at); });
    for (int i = 0; i < 20; ++i) net.send("a", "b", "t", Bytes(i, 0));
    net.run();
    return times;
  };
  EXPECT_EQ(trace(123), trace(123));
  EXPECT_NE(trace(123), trace(456));
}

}  // namespace
}  // namespace veil::net
