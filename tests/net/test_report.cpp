#include "net/report.hpp"

#include <gtest/gtest.h>

namespace veil::net {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auditor_.record("orderer", "tx/1/data", 100);
    auditor_.record("orderer", "tx/1/parties", 10);
    auditor_.record("orderer", "tx/2/data", 50);
    auditor_.record("peerA", "tx/1/data", 100);
    auditor_.record("peerB", "tx/1/data", 100, /*plaintext=*/false);
    auditor_.record("peerA", "pdc/coll/k", 30);
  }

  LeakageAuditor auditor_;
};

TEST_F(ReportTest, SummaryTotalsAndOrdering) {
  const auto summary = summarize(auditor_);
  ASSERT_EQ(summary.size(), 3u);
  // Sorted by plaintext bytes descending: orderer (160) > peerA (130) >
  // peerB (0 plaintext).
  EXPECT_EQ(summary[0].principal, "orderer");
  EXPECT_EQ(summary[0].plaintext_bytes, 160u);
  EXPECT_EQ(summary[0].distinct_labels, 3u);
  EXPECT_EQ(summary[1].principal, "peerA");
  EXPECT_EQ(summary[1].plaintext_bytes, 130u);
  EXPECT_EQ(summary[2].principal, "peerB");
  EXPECT_EQ(summary[2].plaintext_bytes, 0u);
  EXPECT_EQ(summary[2].opaque_bytes, 100u);
}

TEST_F(ReportTest, SummaryPrefixFilter) {
  const auto summary = summarize(auditor_, "pdc/");
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].principal, "peerA");
  EXPECT_EQ(summary[0].plaintext_bytes, 30u);
}

TEST_F(ReportTest, SummaryRepeatedLabelsCountOnce) {
  auditor_.record("orderer", "tx/1/data", 5);  // same label again
  const auto summary = summarize(auditor_);
  EXPECT_EQ(summary[0].distinct_labels, 3u);   // unchanged
  EXPECT_EQ(summary[0].plaintext_bytes, 165u);  // bytes accumulate
}

TEST_F(ReportTest, RenderSummaryContainsEveryPrincipal) {
  const std::string out = render_summary(summarize(auditor_));
  for (const char* p : {"orderer", "peerA", "peerB"}) {
    EXPECT_NE(out.find(p), std::string::npos) << p;
  }
  EXPECT_NE(out.find("plaintext bytes"), std::string::npos);
}

TEST_F(ReportTest, DisclosuresDistinguishForms) {
  const auto records = disclosures(auditor_, "tx/1/data");
  ASSERT_EQ(records.size(), 3u);
  for (const DisclosureRecord& r : records) {
    if (r.principal == "peerB") {
      EXPECT_FALSE(r.saw_plaintext);
      EXPECT_TRUE(r.saw_opaque);
    } else {
      EXPECT_TRUE(r.saw_plaintext);
    }
  }
}

TEST_F(ReportTest, DisclosuresEmptyForUnknownLabel) {
  EXPECT_TRUE(disclosures(auditor_, "tx/999/").empty());
  const std::string out = render_disclosures("tx/999/", {});
  EXPECT_NE(out.find("no principal observed"), std::string::npos);
}

TEST_F(ReportTest, RenderDisclosuresMarksForms) {
  const std::string out =
      render_disclosures("tx/1/data", disclosures(auditor_, "tx/1/data"));
  EXPECT_NE(out.find("PLAINTEXT"), std::string::npos);
  EXPECT_NE(out.find("ciphertext/hash only"), std::string::npos);
}

TEST(Report, EmptyAuditor) {
  LeakageAuditor empty;
  EXPECT_TRUE(summarize(empty).empty());
  EXPECT_FALSE(render_summary({}).empty());  // header still renders
}

TEST(Report, NetworkStatsRenderRetriesExhausted) {
  NetworkStats stats;
  stats.retries_exhausted = 3;
  const std::string out = render_network_stats(stats);
  EXPECT_NE(out.find("retries exhausted"), std::string::npos);
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(Report, NetworkStatsRenderOverloadCounters) {
  NetworkStats stats;
  stats.dropped_overflow = 11;
  stats.busy_notices = 12;
  stats.busy_deferrals = 13;
  stats.busy_rejected = 14;
  stats.breaker_rejected = 15;
  stats.shed_admission = 16;
  stats.expired_endorse = 17;
  stats.expired_order = 18;
  stats.expired_validate = 19;
  stats.expired_in_flight = 20;
  stats.inbox_high_water = 21;
  const std::string out = render_network_stats(stats);
  EXPECT_NE(out.find("overload control:"), std::string::npos);
  for (const char* label :
       {"inbox overflow (dropped)", "busy notices", "busy deferrals",
        "busy rejected (platform)", "breaker rejected", "shed at admission",
        "expired: endorse", "expired: ordering", "expired: validation",
        "expired in flight", "inbox high water"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  for (int v = 11; v <= 21; ++v) {
    EXPECT_NE(out.find(std::to_string(v)), std::string::npos) << v;
  }
}

TEST(Report, NetworkStatsRenderCrossShardCounters) {
  NetworkStats stats;
  stats.xshard_prepares = 31;
  stats.xshard_commits = 32;
  stats.xshard_aborts_voteno = 33;
  stats.xshard_aborts_timeout = 34;
  stats.xshard_aborts_equivocation = 35;
  stats.xshard_failovers = 36;
  const std::string out = render_network_stats(stats);
  EXPECT_NE(out.find("cross-shard atomic commit:"), std::string::npos);
  for (const char* label :
       {"prepares sent", "commits", "aborts: vote-no", "aborts: timeout",
        "aborts: equivocation", "coordinator failovers"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  for (int v = 31; v <= 36; ++v) {
    EXPECT_NE(out.find(std::to_string(v)), std::string::npos) << v;
  }
}

TEST(Report, NetworkStatsRenderTransportTierCounters) {
  NetworkStats stats;
  stats.tcp_connects = 41;
  stats.tcp_reconnects = 42;
  stats.tcp_heartbeat_misses = 43;
  stats.tcp_session_resumptions = 44;
  stats.tcp_partial_write_continuations = 45;
  stats.tcp_short_reads = 46;
  stats.tcp_frames_torn = 47;
  stats.tcp_frames_rejected = 48;
  stats.tcp_write_overflow = 49;
  stats.tcp_injected_faults = 50;
  const std::string out = render_network_stats(stats);
  EXPECT_NE(out.find("transport tier (tcp):"), std::string::npos);
  for (const char* label :
       {"connects", "reconnects", "heartbeat misses", "session resumptions",
        "partial-write continuations", "short reads", "frames torn",
        "frames rejected (dup)", "write overflow (busy)",
        "injected socket faults"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  for (int v = 41; v <= 50; ++v) {
    EXPECT_NE(out.find(std::to_string(v)), std::string::npos) << v;
  }
}

}  // namespace
}  // namespace veil::net
