// SocketFaultInjector: persona determinism, liveness bounds, clamp
// ranges — the contracts that make injected chaos reproducible and
// non-wedging.
#include "net/socket_fault.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace veil::net {
namespace {

SocketFaultProfile heavy() { return SocketFaultProfile::uniform(0.5); }

std::vector<IoFault> decision_stream(SocketFaultInjector& inj, int n) {
  std::vector<IoFault> out;
  for (int i = 0; i < n; ++i) out.push_back(inj.pre_read());
  return out;
}

TEST(SocketFault, DisabledProfileInjectsNothing) {
  SocketFaultProfile off;
  EXPECT_FALSE(off.enabled());
  SocketFaultInjector inj(off, 1, "a", "b", 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.pre_read(), IoFault::None);
    EXPECT_EQ(inj.pre_write(), IoFault::None);
    EXPECT_FALSE(inj.clamp_read_due());
    EXPECT_FALSE(inj.clamp_write_due());
    EXPECT_EQ(inj.tear_offset(100), std::numeric_limits<std::size_t>::max());
  }
  EXPECT_EQ(inj.injected(), 0u);
}

TEST(SocketFault, SamePersonaSameDecisions) {
  SocketFaultInjector a(heavy(), 42, "alice", "bob", 3);
  SocketFaultInjector b(heavy(), 42, "alice", "bob", 3);
  EXPECT_EQ(decision_stream(a, 200), decision_stream(b, 200));
  EXPECT_EQ(a.injected(), b.injected());
}

TEST(SocketFault, PersonaVariesWithSeedLinkAndEpoch) {
  SocketFaultInjector base(heavy(), 42, "alice", "bob", 3);
  SocketFaultInjector seed(heavy(), 43, "alice", "bob", 3);
  SocketFaultInjector link(heavy(), 42, "alice", "carol", 3);
  SocketFaultInjector rev(heavy(), 42, "bob", "alice", 3);
  SocketFaultInjector epoch(heavy(), 42, "alice", "bob", 4);
  const auto ref = decision_stream(base, 200);
  EXPECT_NE(ref, decision_stream(seed, 200));
  EXPECT_NE(ref, decision_stream(link, 200));
  EXPECT_NE(ref, decision_stream(rev, 200));
  EXPECT_NE(ref, decision_stream(epoch, 200));
}

TEST(SocketFault, LivenessCapForcesRealSyscallsThrough) {
  // Even at rate 1.0 for every class, at most max_consecutive injections
  // fire before a real syscall is let through — the injector can slow a
  // connection but never wedge it.
  SocketFaultProfile p;
  p.eintr = 1.0;
  p.max_consecutive = 4;
  SocketFaultInjector inj(p, 7, "a", "b", 1);
  int streak = 0;
  int real = 0;
  for (int i = 0; i < 1000; ++i) {
    if (inj.pre_read() == IoFault::None) {
      ++real;
      streak = 0;
    } else {
      ++streak;
      ASSERT_LE(streak, 4);
    }
  }
  EXPECT_GT(real, 0);
}

TEST(SocketFault, ClampsStayInRange) {
  SocketFaultProfile p;
  p.partial_write = 1.0;
  p.short_read = 1.0;
  SocketFaultInjector inj(p, 9, "a", "b", 1);
  for (int i = 0; i < 200; ++i) {
    if (inj.clamp_write_due()) {
      const std::size_t n = inj.clamp_write(100);
      EXPECT_GE(n, 1u);
      EXPECT_LE(n, 100u);
    }
    if (inj.clamp_read_due()) {
      const std::size_t n = inj.clamp_read(1);
      EXPECT_EQ(n, 1u);
    }
  }
  EXPECT_GT(inj.injected(), 0u);
}

TEST(SocketFault, TearOffsetWithinFrame) {
  SocketFaultProfile p;
  p.torn_frame = 1.0;
  SocketFaultInjector inj(p, 11, "a", "b", 1);
  bool tore = false;
  for (int i = 0; i < 64; ++i) {
    const std::size_t off = inj.tear_offset(37);
    if (off != std::numeric_limits<std::size_t>::max()) {
      EXPECT_LT(off, 37u);
      tore = true;
    }
  }
  EXPECT_TRUE(tore);
  EXPECT_EQ(inj.tear_offset(0), std::numeric_limits<std::size_t>::max());
}

TEST(SocketFault, UniformProfileScalesExpensiveFaultsDown) {
  const SocketFaultProfile p = SocketFaultProfile::uniform(0.2);
  EXPECT_TRUE(p.enabled());
  EXPECT_DOUBLE_EQ(p.partial_write, 0.2);
  EXPECT_DOUBLE_EQ(p.short_read, 0.2);
  EXPECT_LT(p.connect_reset, p.partial_write);
  EXPECT_LT(p.midstream_reset, p.connect_reset);
  EXPECT_LT(p.stall, p.partial_write);
  EXPECT_EQ(SocketFaultProfile::uniform(0.0).enabled(), false);
}

}  // namespace
}  // namespace veil::net
