#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::net {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

TEST(Reliable, DeliversWithoutLoss) {
  SimNetwork net{Rng(1)};
  ReliableChannel channel(net);
  std::vector<std::string> received;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message& m) {
    received.push_back(common::to_string(m.payload));
  });
  channel.send("a", "b", "app.topic", to_bytes("hello"));
  net.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_EQ(channel.stats().acked, 1u);
  EXPECT_EQ(channel.stats().retransmits, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(Reliable, InnerTopicPreserved) {
  // The wire keeps the ORIGINAL topic, so leakage labels ("net/<topic>")
  // are unchanged by the reliability layer.
  SimNetwork net{Rng(2)};
  ReliableChannel channel(net);
  std::string seen_topic;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message& m) { seen_topic = m.topic; });
  channel.send("a", "b", "fabric.deliver", to_bytes("x"));
  net.run();
  EXPECT_EQ(seen_topic, "fabric.deliver");
  EXPECT_TRUE(net.auditor().saw_any_form("b", "net/fabric.deliver"));
}

TEST(Reliable, RetransmitsThroughHeavyLoss) {
  SimNetwork net{Rng(3), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(0.5);
  ReliableChannel channel(net);
  std::size_t received = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++received; });
  for (int i = 0; i < 20; ++i) {
    channel.send("a", "b", "t", to_bytes("x"));
    net.run();
  }
  // At 50% loss with 6 attempts, effectively everything gets through —
  // and each message reaches the handler exactly once.
  EXPECT_EQ(received, 20u);
  EXPECT_GT(channel.stats().retransmits, 0u);
  EXPECT_EQ(net.stats().retransmits, channel.stats().retransmits);
}

TEST(Reliable, ExactlyOnceDespiteDuplicateWire) {
  // Force a duplicate by dropping the ACK: the sender retransmits, the
  // receiver sees the data twice, the handler runs once.
  SimNetwork net{Rng(4), LatencyModel{100, 0, 0.0}};
  ReliableChannel channel(net);
  std::size_t handled = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++handled; });

  // 100% loss window long enough to eat the first ack but not the
  // retransmission (initial timeout 5000us): deliver the data, lose the
  // ack, then heal.
  channel.send("a", "b", "t", to_bytes("x"));
  net.run();  // clean first delivery
  ASSERT_EQ(handled, 1u);

  // Second message: drop everything for one round trip so both the data
  // and its retransmit path get exercised.
  net.set_drop_probability(1.0);
  channel.send("a", "b", "t", to_bytes("y"));
  net.schedule(net.clock().now() + 1'000,
               [&] { net.set_drop_probability(0.0); });
  net.run();
  EXPECT_EQ(handled, 2u);
  EXPECT_GT(channel.stats().retransmits, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(Reliable, DuplicateSuppressionCountsOnAckLoss) {
  // Deliver data, then retransmit anyway by making the ack disappear: the
  // receiver must suppress the duplicate.
  SimNetwork net{Rng(5), LatencyModel{100, 0, 0.0}};
  ReliableChannel channel(net);
  std::size_t handled = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++handled; });

  channel.send("a", "b", "t", to_bytes("x"));
  // Eat only the ack: data delivers at t=100; drop window [100, 150)
  // catches the ack sent at t=100.
  net.schedule(50, [&] { net.set_drop_probability(1.0); });
  net.schedule(150, [&] { net.set_drop_probability(0.0); });
  net.run();
  EXPECT_EQ(handled, 1u);
  EXPECT_GE(channel.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(net.stats().duplicates_suppressed,
            channel.stats().duplicates_suppressed);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(Reliable, GivesUpAfterBoundedRetries) {
  SimNetwork net{Rng(6), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(1.0);  // network is dead
  ReliableChannel channel(net);
  std::size_t received = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++received; });
  channel.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(channel.stats().gave_up, 1u);
  EXPECT_EQ(channel.in_flight(), 0u);  // fail closed, no retry leak
  EXPECT_EQ(channel.stats().retransmits, channel.policy().max_attempts - 1);
  // Budget exhaustion is its own network-level counter, distinct from
  // give-ups caused by crashed/detached endpoints.
  EXPECT_EQ(net.stats().retries_exhausted, 1u);
}

TEST(Reliable, GivesUpWhenReceiverDetaches) {
  SimNetwork net{Rng(7), LatencyModel{100, 0, 0.0}};
  ReliableChannel channel(net);
  channel.attach("a", nullptr);
  channel.attach("b", [](const Message&) {});
  channel.send("a", "b", "t", to_bytes("x"));
  // Receiver detaches while the message is in flight: the retry loop must
  // terminate promptly instead of retransmitting into the void.
  net.schedule(50, [&] { net.detach("b"); });
  net.run();
  EXPECT_EQ(channel.stats().gave_up, 1u);
  EXPECT_EQ(channel.stats().retransmits, 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
  // A detached receiver is a lifecycle give-up, not a retry-budget
  // exhaustion — the distinct counter must stay at zero.
  EXPECT_EQ(net.stats().retries_exhausted, 0u);
}

TEST(Reliable, MalformedEnvelopeDroppedNotCrashed) {
  SimNetwork net{Rng(8)};
  ReliableChannel channel(net);
  std::size_t handled = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const Message&) { ++handled; });
  // Raw junk straight onto the wire, bypassing the channel.
  net.send("a", "b", "t", to_bytes("not an envelope"));
  net.run();
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(channel.stats().malformed, 1u);
}

TEST(Reliable, EnvelopeRoundTrip) {
  ReliableChannel::Envelope env;
  env.seq = 42;
  env.payload = to_bytes("payload");
  const ReliableChannel::Envelope back =
      ReliableChannel::Envelope::decode(env.encode());
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.payload, to_bytes("payload"));
  // Trailing bytes are rejected.
  Bytes enc = env.encode();
  enc.push_back(0);
  EXPECT_THROW(ReliableChannel::Envelope::decode(enc), common::Error);
}

TEST(Reliable, RetransmissionOnlyReachesOriginalRecipient) {
  // The privacy property: retries add no new observers. An uninvolved
  // principal sees zero bytes even when the channel retransmits heavily.
  SimNetwork net{Rng(9), LatencyModel{100, 0, 0.0}};
  net.set_drop_probability(0.4);
  ReliableChannel channel(net);
  channel.attach("a", nullptr);
  channel.attach("b", [](const Message&) {});
  channel.attach("outsider", [](const Message&) {});
  for (int i = 0; i < 10; ++i) {
    channel.send("a", "b", "secret.topic", to_bytes("secret"));
    net.run();
  }
  EXPECT_GT(channel.stats().retransmits, 0u);
  EXPECT_FALSE(net.auditor().saw_any_form("outsider", "net/secret.topic"));
  EXPECT_FALSE(net.auditor().saw_any_form("outsider", "net/rel.ack"));
}

}  // namespace
}  // namespace veil::net
