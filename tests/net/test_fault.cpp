#include "net/fault.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/network.hpp"

namespace veil::net {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

// Flood `count` messages from a->b over `net`, returning how many arrive.
std::size_t flood(SimNetwork& net, std::size_t count) {
  std::size_t received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  for (std::size_t i = 0; i < count; ++i) {
    net.send("a", "b", "t", to_bytes("x"));
    net.run();  // drain so sim time advances between sends
  }
  return received;
}

TEST(FaultPlan, OrderedEventsStableSorted) {
  FaultPlan plan;
  plan.drop_from(100, 0.5)
      .heal_at(50)
      .partition_at(100, {{"a"}, {"b"}})  // same time as drop_from: after it
      .crash_at(10, "a");
  const auto events = plan.ordered_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::Crash);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::Heal);
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::SetDropRate);
  EXPECT_EQ(events[3].kind, FaultEvent::Kind::SetPartitions);
}

TEST(FaultPlan, DropWindowLosesMessagesOnlyInsideWindow) {
  // 100% loss inside the window makes the boundary sharp and
  // deterministic regardless of the RNG.
  SimNetwork net{Rng(7), LatencyModel{100, 0, 0.0}};
  FaultPlan plan;
  plan.drop_window(0, 5'000, 1.0);
  net.set_fault_plan(plan);
  std::size_t received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  // Sends while inside the window (sim time 0): all dropped.
  for (int i = 0; i < 5; ++i) net.send("a", "b", "t", to_bytes("x"));
  net.run();  // drains; the window-close event fires in the tail
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(net.stats().dropped_random_loss, 5u);
  // Past the window: delivered.
  net.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 1u);
}

TEST(FaultPlan, SeedReproducibleLossPattern) {
  // Same seed + same plan => identical delivery count, twice.
  const auto run_once = [] {
    SimNetwork net{Rng(42), LatencyModel{100, 0, 0.0}};
    FaultPlan plan;
    plan.drop_from(0, 0.5);
    net.set_fault_plan(plan);
    return flood(net, 50);
  };
  const std::size_t first = run_once();
  const std::size_t second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 50u);
}

TEST(FaultPlan, PartitionThenHeal) {
  SimNetwork net{Rng(9), LatencyModel{100, 0, 0.0}};
  FaultPlan plan;
  plan.partition_at(0, {{"a"}, {"b"}}).heal_at(50'000);
  net.set_fault_plan(plan);
  std::size_t received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  net.send("a", "b", "t", to_bytes("x"));
  net.run();  // dropped at send; heal fires in the drain tail
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
  // After the heal the same link works.
  net.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 1u);
}

TEST(FaultPlan, CrashStopsDeliveryAndFiresHooks) {
  SimNetwork net{Rng(11), LatencyModel{100, 0, 0.0}};
  FaultPlan plan;
  plan.crash_at(1'000, "b").restart_at(50'000, "b");
  net.set_fault_plan(plan);
  int crashes = 0;
  int restarts = 0;
  std::size_t received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  net.set_crash_hook("b", [&] { ++crashes; });
  net.set_restart_hook("b", [&] { ++restarts; });

  // Before the crash time: delivered.
  net.send("a", "b", "t", to_bytes("x"));
  // Inside the crash window, b is unreachable; observe it via a timer so
  // the drain tail doesn't fast-forward past the restart first.
  bool crashed_mid_window = false;
  net.schedule(2'000, [&] {
    crashed_mid_window = net.crashed("b");
    net.send("a", "b", "t", to_bytes("x"));  // dropped: receiver crashed
  });
  net.run();  // restart event fires in the drain tail
  EXPECT_EQ(received, 1u);
  EXPECT_TRUE(crashed_mid_window);
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
  EXPECT_GE(net.stats().dropped_crashed, 1u);

  // After the restart, delivery resumes.
  EXPECT_FALSE(net.crashed("b"));
  net.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 2u);
}

TEST(FaultPlan, StatsBreakdownSumsToTotalDrops) {
  SimNetwork net{Rng(13), LatencyModel{100, 0, 0.0}};
  net.attach("a", [](const Message&) {});
  net.attach("b", [](const Message&) {});
  net.attach("c", [](const Message&) {});

  net.set_drop_probability(1.0);
  net.send("a", "b", "t", to_bytes("x"));  // random loss
  net.run();
  net.set_drop_probability(0.0);

  net.set_partitions({{"a"}, {"b", "c"}});
  net.send("a", "b", "t", to_bytes("x"));  // partition
  net.run();
  net.set_partitions({});

  net.crash("c");
  net.send("a", "c", "t", to_bytes("x"));  // crashed receiver
  net.run();
  net.restart("c");

  net.send("a", "b", "t", to_bytes("x"));  // in flight when b detaches
  net.detach("b");
  net.run();

  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.dropped_random_loss, 1u);
  EXPECT_EQ(s.dropped_partition, 1u);
  EXPECT_EQ(s.dropped_crashed, 1u);
  EXPECT_EQ(s.dropped_detached, 1u);
  EXPECT_EQ(s.messages_dropped, s.dropped_random_loss + s.dropped_partition +
                                    s.dropped_crashed + s.dropped_detached);
}

TEST(ByzantinePlan, BuilderOrdersEventsByTime) {
  ByzantinePlan plan;
  plan.replay_from(500, "eve", 9'000)
      .tamper_from(100, "mallory", 0.25)
      .quarantine_at(100, "eve")  // same time as tamper_from: after it
      .honest_from(50, "mallory");
  const auto events = plan.ordered_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, ByzantineEvent::Kind::Honest);
  EXPECT_EQ(events[1].kind, ByzantineEvent::Kind::Tamper);
  EXPECT_EQ(events[1].probability, 0.25);
  EXPECT_EQ(events[2].kind, ByzantineEvent::Kind::Quarantine);
  EXPECT_EQ(events[3].kind, ByzantineEvent::Kind::Replay);
  EXPECT_EQ(events[3].delay_us, 9'000u);
}

TEST(ByzantinePlan, EventCodecRoundTrip) {
  ByzantinePlan plan;
  plan.silence_from(42'000, "mallory", "bob").delay_from(50'000, "eve", 7'500);
  for (const ByzantineEvent& event : plan.ordered_events()) {
    const ByzantineEvent back = ByzantineEvent::decode(event.encode());
    EXPECT_EQ(back.kind, event.kind);
    EXPECT_EQ(back.at, event.at);
    EXPECT_EQ(back.principal, event.principal);
    EXPECT_EQ(back.target, event.target);
    EXPECT_EQ(back.probability, event.probability);
    EXPECT_EQ(back.delay_us, event.delay_us);
  }
}

TEST(ByzantinePlan, DecodeRejectsMalformedEvents) {
  ByzantinePlan plan;
  plan.tamper_from(1, "m", 1.0);
  Bytes enc = plan.ordered_events().front().encode();
  // Unknown kind byte.
  Bytes bad_kind = enc;
  bad_kind[8] = 0xee;  // kind follows the u64 timestamp
  EXPECT_THROW(ByzantineEvent::decode(bad_kind), common::Error);
  // Trailing garbage.
  Bytes trailing = enc;
  trailing.push_back(0x00);
  EXPECT_THROW(ByzantineEvent::decode(trailing), common::Error);
  // Truncation.
  enc.pop_back();
  EXPECT_THROW(ByzantineEvent::decode(enc), common::Error);
}

TEST(FaultPlan, CrashedSenderCannotSend) {
  SimNetwork net{Rng(17)};
  std::size_t received = 0;
  net.attach("a", [](const Message&) {});
  net.attach("b", [&](const Message&) { ++received; });
  net.crash("a");
  net.send("a", "b", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 0u);
  EXPECT_GE(net.stats().dropped_crashed, 1u);
}

}  // namespace
}  // namespace veil::net
