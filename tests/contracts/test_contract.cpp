#include "contracts/contract.hpp"

#include <gtest/gtest.h>

namespace veil::contracts {
namespace {

using common::to_bytes;

std::shared_ptr<FunctionContract> counter_contract() {
  return std::make_shared<FunctionContract>(
      "counter", 1,
      [](ContractContext& ctx, const std::string& action) -> InvokeStatus {
        if (action == "increment") {
          const auto current = ctx.get("count");
          const int value =
              current ? std::stoi(common::to_string(*current)) : 0;
          ctx.put("count", to_bytes(std::to_string(value + 1)));
          return InvokeStatus::Ok;
        }
        if (action == "reset") {
          ctx.del("count");
          return InvokeStatus::Ok;
        }
        return InvokeStatus::UnknownAction;
      });
}

TEST(ContractContext, RecordsReadVersions) {
  ledger::WorldState state;
  state.put("k", to_bytes("v"));
  state.put("k", to_bytes("v2"));  // version 2
  ContractContext ctx(state, {});
  EXPECT_EQ(ctx.get("k"), to_bytes("v2"));
  EXPECT_EQ(ctx.get("missing"), std::nullopt);
  ASSERT_EQ(ctx.reads().size(), 2u);
  EXPECT_EQ(ctx.reads()[0].version, 2u);
  EXPECT_EQ(ctx.reads()[1].version, 0u);  // absent key reads version 0
}

TEST(ContractContext, BuffersWritesWithoutMutatingState) {
  ledger::WorldState state;
  ContractContext ctx(state, {});
  ctx.put("a", to_bytes("1"));
  ctx.del("b");
  EXPECT_EQ(ctx.writes().size(), 2u);
  EXPECT_TRUE(ctx.writes()[1].is_delete);
  EXPECT_FALSE(state.get("a").has_value());  // state untouched
}

TEST(ContractContext, ArgsArePassedThrough) {
  ledger::WorldState state;
  const common::Bytes args = to_bytes("amount=5");
  ContractContext ctx(state, args);
  EXPECT_EQ(common::Bytes(ctx.args().begin(), ctx.args().end()), args);
}

TEST(FunctionContract, InvokeDispatch) {
  ledger::WorldState state;
  auto contract = counter_contract();
  ContractContext ctx(state, {});
  EXPECT_EQ(contract->invoke(ctx, "increment"), InvokeStatus::Ok);
  EXPECT_EQ(ctx.writes().size(), 1u);
  EXPECT_EQ(ctx.writes()[0].value, to_bytes("1"));
  ContractContext ctx2(state, {});
  EXPECT_EQ(contract->invoke(ctx2, "bogus"), InvokeStatus::UnknownAction);
}

TEST(FunctionContract, NameAndVersion) {
  auto contract = counter_contract();
  EXPECT_EQ(contract->name(), "counter");
  EXPECT_EQ(contract->version(), 1u);
}

TEST(SmartContract, CodeDigestDependsOnNameAndVersion) {
  const FunctionContract a("cc", 1, nullptr);
  const FunctionContract b("cc", 2, nullptr);
  const FunctionContract c("dd", 1, nullptr);
  EXPECT_NE(a.code_digest(), b.code_digest());
  EXPECT_NE(a.code_digest(), c.code_digest());
  EXPECT_EQ(a.code_digest(), FunctionContract("cc", 1, nullptr).code_digest());
}

}  // namespace
}  // namespace veil::contracts
