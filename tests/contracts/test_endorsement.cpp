#include "contracts/endorsement.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::contracts {
namespace {

using Policy = EndorsementPolicy;

TEST(Endorsement, RequireSingleOrg) {
  const Policy p = Policy::require("BankA");
  EXPECT_TRUE(p.satisfied_by({"BankA"}));
  EXPECT_TRUE(p.satisfied_by({"BankA", "BankB"}));
  EXPECT_FALSE(p.satisfied_by({"BankB"}));
  EXPECT_FALSE(p.satisfied_by({}));
}

TEST(Endorsement, AllOf) {
  const Policy p =
      Policy::all_of({Policy::require("A"), Policy::require("B")});
  EXPECT_TRUE(p.satisfied_by({"A", "B"}));
  EXPECT_TRUE(p.satisfied_by({"A", "B", "C"}));
  EXPECT_FALSE(p.satisfied_by({"A"}));
  EXPECT_FALSE(p.satisfied_by({"B"}));
}

TEST(Endorsement, AnyOf) {
  const Policy p =
      Policy::any_of({Policy::require("A"), Policy::require("B")});
  EXPECT_TRUE(p.satisfied_by({"A"}));
  EXPECT_TRUE(p.satisfied_by({"B"}));
  EXPECT_FALSE(p.satisfied_by({"C"}));
}

TEST(Endorsement, KOfN) {
  const Policy p = Policy::k_of(
      2, {Policy::require("A"), Policy::require("B"), Policy::require("C")});
  EXPECT_FALSE(p.satisfied_by({"A"}));
  EXPECT_TRUE(p.satisfied_by({"A", "C"}));
  EXPECT_TRUE(p.satisfied_by({"A", "B", "C"}));
}

TEST(Endorsement, NestedPolicies) {
  // AND(A, OR(B, C)) — a classic two-org sign-off with an alternate.
  const Policy p = Policy::all_of(
      {Policy::require("A"),
       Policy::any_of({Policy::require("B"), Policy::require("C")})});
  EXPECT_TRUE(p.satisfied_by({"A", "B"}));
  EXPECT_TRUE(p.satisfied_by({"A", "C"}));
  EXPECT_FALSE(p.satisfied_by({"A"}));
  EXPECT_FALSE(p.satisfied_by({"B", "C"}));
}

TEST(Endorsement, MentionedOrgs) {
  const Policy p = Policy::k_of(
      2, {Policy::require("A"),
          Policy::all_of({Policy::require("B"), Policy::require("C")}),
          Policy::require("A")});  // duplicate mention
  const auto orgs = p.mentioned_orgs();
  EXPECT_EQ(orgs, (std::set<std::string>{"A", "B", "C"}));
}

TEST(Endorsement, Describe) {
  const Policy p = Policy::all_of(
      {Policy::require("A"),
       Policy::any_of({Policy::require("B"), Policy::require("C")})});
  EXPECT_EQ(p.describe(), "AND(A, OR(B, C))");
  EXPECT_EQ(Policy::k_of(2, {Policy::require("X"), Policy::require("Y"),
                             Policy::require("Z")})
                .describe(),
            "2-of(X, Y, Z)");
}

TEST(Endorsement, InvalidConstructionsThrow) {
  EXPECT_THROW(Policy::all_of({}), common::Error);
  EXPECT_THROW(Policy::any_of({}), common::Error);
  EXPECT_THROW(Policy::k_of(0, {Policy::require("A")}), common::Error);
  EXPECT_THROW(Policy::k_of(3, {Policy::require("A"), Policy::require("B")}),
               common::Error);
}

class EndorsementBreadth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EndorsementBreadth, MentionedOrgsEqualsPolicyWidth) {
  // Table 1 coupling: the broader the policy, the more nodes need the
  // contract code.
  const std::size_t n = GetParam();
  std::vector<Policy> clauses;
  for (std::size_t i = 0; i < n; ++i) {
    clauses.push_back(Policy::require("Org" + std::to_string(i)));
  }
  const Policy p = Policy::k_of((n + 1) / 2, clauses);
  EXPECT_EQ(p.mentioned_orgs().size(), n);
}

INSTANTIATE_TEST_SUITE_P(Widths, EndorsementBreadth,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace veil::contracts
