#include <gtest/gtest.h>

#include "contracts/engine.hpp"
#include "contracts/offchain_engine.hpp"
#include "contracts/registry.hpp"

namespace veil::contracts {
namespace {

using common::to_bytes;

std::shared_ptr<FunctionContract> writer_contract(const std::string& name,
                                                  std::uint32_t version,
                                                  const std::string& suffix = "") {
  return std::make_shared<FunctionContract>(
      name, version,
      [suffix](ContractContext& ctx, const std::string& action) {
        if (action != "write") return InvokeStatus::UnknownAction;
        ctx.get("input");
        ctx.put("output",
                common::to_bytes(common::to_string(common::Bytes(
                                     ctx.args().begin(), ctx.args().end())) +
                                 suffix));
        return InvokeStatus::Ok;
      });
}

class EngineTest : public ::testing::Test {
 protected:
  net::LeakageAuditor auditor_;
  ContractRegistry registry_{auditor_};
  ExecutionEngine engine_{registry_};
  ledger::WorldState state_;
};

TEST_F(EngineTest, ExecuteProducesReadWriteSets) {
  registry_.install("peer.A", writer_contract("cc", 1));
  const auto result =
      engine_.execute("peer.A", "cc", "write", to_bytes("x"), state_, "ch");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, InvokeStatus::Ok);
  EXPECT_EQ(result->tx.channel, "ch");
  EXPECT_EQ(result->tx.contract, "cc");
  ASSERT_EQ(result->tx.reads.size(), 1u);
  EXPECT_EQ(result->tx.reads[0].key, "input");
  ASSERT_EQ(result->tx.writes.size(), 1u);
  EXPECT_EQ(result->tx.writes[0].value, to_bytes("x"));
}

TEST_F(EngineTest, NodeWithoutInstallCannotExecute) {
  registry_.install("peer.A", writer_contract("cc", 1));
  EXPECT_FALSE(
      engine_.execute("peer.B", "cc", "write", {}, state_, "ch").has_value());
}

TEST_F(EngineTest, UnknownActionReported) {
  registry_.install("peer.A", writer_contract("cc", 1));
  const auto result =
      engine_.execute("peer.A", "cc", "nope", {}, state_, "ch");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, InvokeStatus::UnknownAction);
}

TEST_F(EngineTest, RegistryTracksCodeVisibility) {
  registry_.install("peer.A", writer_contract("secret", 1));
  registry_.install("peer.B", writer_contract("secret", 1));
  EXPECT_TRUE(auditor_.saw("peer.A", "contract/secret/code"));
  EXPECT_TRUE(auditor_.saw("peer.B", "contract/secret/code"));
  EXPECT_FALSE(auditor_.saw("peer.C", "contract/secret/code"));
  EXPECT_EQ(registry_.nodes_with("secret"),
            (std::set<std::string>{"peer.A", "peer.B"}));
}

TEST_F(EngineTest, UninstallRemovesAccess) {
  registry_.install("peer.A", writer_contract("cc", 1));
  registry_.uninstall("peer.A", "cc");
  EXPECT_FALSE(registry_.installed("peer.A", "cc"));
  EXPECT_FALSE(
      engine_.execute("peer.A", "cc", "write", {}, state_, "ch").has_value());
}

// --- Off-chain execution engine ----------------------------------------------

class OffChainEngineTest : public ::testing::Test {
 protected:
  net::LeakageAuditor auditor_;
  ledger::WorldState state_;
};

TEST_F(OffChainEngineTest, ExecutesAndHidesLogicName) {
  OffChainEngine engine("OrgA", auditor_);
  engine.load(writer_contract("pricing", 1));
  const auto result =
      engine.execute("pricing", "write", to_bytes("42"), state_, "ch");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, InvokeStatus::Ok);
  // The ledger sees only the stub, never the business-logic name.
  EXPECT_EQ(result->tx.contract, "rw-stub");
}

TEST_F(OffChainEngineTest, CodeVisibleToOwnerOnly) {
  OffChainEngine engine("OrgA", auditor_);
  engine.load(writer_contract("pricing", 1));
  EXPECT_TRUE(auditor_.saw("OrgA", "contract/pricing/code"));
  EXPECT_FALSE(auditor_.saw("OrgB", "contract/pricing/code"));
}

TEST_F(OffChainEngineTest, MissingContract) {
  OffChainEngine engine("OrgA", auditor_);
  EXPECT_FALSE(engine.has("ghost"));
  EXPECT_FALSE(engine.execute("ghost", "write", {}, state_, "ch").has_value());
  EXPECT_FALSE(engine.code_digest("ghost").has_value());
}

TEST_F(OffChainEngineTest, VersionConsistencyDetection) {
  OffChainEngine a("OrgA", auditor_), b("OrgB", auditor_), c("OrgC", auditor_);
  a.load(writer_contract("model", 3));
  b.load(writer_contract("model", 3));
  c.load(writer_contract("model", 4));  // drifted
  EXPECT_TRUE(OffChainEngine::versions_consistent({&a, &b}, "model"));
  EXPECT_FALSE(OffChainEngine::versions_consistent({&a, &b, &c}, "model"));
  // An engine missing the contract entirely also counts as drift.
  OffChainEngine empty("OrgD", auditor_);
  EXPECT_FALSE(OffChainEngine::versions_consistent({&a, &empty}, "model"));
}

TEST_F(OffChainEngineTest, DriftManifestsAsDivergentWriteSets) {
  // The paper's warning: without in-DLT version control, engines can
  // drift and produce different results for the same invocation.
  OffChainEngine a("OrgA", auditor_), b("OrgB", auditor_);
  a.load(writer_contract("model", 1, ""));
  b.load(writer_contract("model", 1, "-DRIFTED"));
  const auto ra = a.execute("model", "write", to_bytes("in"), state_, "ch");
  const auto rb = b.execute("model", "write", to_bytes("in"), state_, "ch");
  ASSERT_TRUE(ra && rb);
  EXPECT_TRUE(OffChainEngine::results_diverge(*ra, *rb));
  // Identical engines do not diverge.
  OffChainEngine a2("OrgA2", auditor_);
  a2.load(writer_contract("model", 1, ""));
  const auto ra2 = a2.execute("model", "write", to_bytes("in"), state_, "ch");
  EXPECT_FALSE(OffChainEngine::results_diverge(*ra, *ra2));
}

}  // namespace
}  // namespace veil::contracts
