#include "offchain/pdc.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace veil::offchain {
namespace {

using common::to_bytes;

class PdcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_.define({"ab-collection", {"OrgA", "OrgB"}, 0});
  }

  net::LeakageAuditor auditor_;
  PdcManager manager_{auditor_};
};

TEST_F(PdcTest, MembersReadNonMembersDont) {
  const auto ref =
      manager_.put_private("ab-collection", "deal", to_bytes("1M"), 0);
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(manager_.get_private("ab-collection", "deal", "OrgA").has_value());
  EXPECT_TRUE(manager_.get_private("ab-collection", "deal", "OrgB").has_value());
  EXPECT_FALSE(
      manager_.get_private("ab-collection", "deal", "OrgC").has_value());
}

TEST_F(PdcTest, HashRefMatchesData) {
  const common::Bytes value = to_bytes("secret-price");
  const auto ref = manager_.put_private("ab-collection", "k", value, 0);
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->digest, crypto::sha256(value));
}

TEST_F(PdcTest, UnknownCollectionRejected) {
  EXPECT_FALSE(manager_.put_private("ghost", "k", to_bytes("v"), 0).has_value());
  EXPECT_FALSE(manager_.get_private("ghost", "k", "OrgA").has_value());
}

TEST_F(PdcTest, DisseminationRecordedPerMember) {
  manager_.put_private("ab-collection", "deal", to_bytes("payload"), 0);
  EXPECT_TRUE(auditor_.saw("OrgA", "pdc/ab-collection/deal"));
  EXPECT_TRUE(auditor_.saw("OrgB", "pdc/ab-collection/deal"));
  EXPECT_FALSE(auditor_.saw("OrgC", "pdc/ab-collection/deal"));
}

TEST_F(PdcTest, PurgeRemovesData) {
  manager_.put_private("ab-collection", "pii", to_bytes("name=X"), 0);
  EXPECT_TRUE(manager_.purge("ab-collection", "pii"));
  EXPECT_FALSE(
      manager_.get_private("ab-collection", "pii", "OrgA").has_value());
  EXPECT_FALSE(manager_.purge("ab-collection", "pii"));  // already gone
}

TEST_F(PdcTest, BlockToLiveExpiry) {
  manager_.define({"ephemeral", {"OrgA"}, 3});
  manager_.put_private("ephemeral", "k", to_bytes("v"), 10);
  EXPECT_TRUE(manager_.get_private("ephemeral", "k", "OrgA").has_value());
  EXPECT_EQ(manager_.expire(12), 0u);  // not yet
  EXPECT_TRUE(manager_.get_private("ephemeral", "k", "OrgA").has_value());
  EXPECT_EQ(manager_.expire(13), 1u);  // 10 + 3 reached
  EXPECT_FALSE(manager_.get_private("ephemeral", "k", "OrgA").has_value());
}

TEST_F(PdcTest, KeepForeverCollectionNeverExpires) {
  manager_.put_private("ab-collection", "k", to_bytes("v"), 0);
  EXPECT_EQ(manager_.expire(1000000), 0u);
  EXPECT_TRUE(manager_.get_private("ab-collection", "k", "OrgA").has_value());
}

TEST_F(PdcTest, ConfigLookup) {
  const CollectionConfig* cfg = manager_.config("ab-collection");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->members.size(), 2u);
  EXPECT_EQ(manager_.config("nope"), nullptr);
}

TEST_F(PdcTest, OverwriteUpdatesValue) {
  manager_.put_private("ab-collection", "k", to_bytes("v1"), 0);
  manager_.put_private("ab-collection", "k", to_bytes("v2"), 1);
  EXPECT_EQ(manager_.get_private("ab-collection", "k", "OrgA"),
            to_bytes("v2"));
}

}  // namespace
}  // namespace veil::offchain
