#include "offchain/store.hpp"

#include <gtest/gtest.h>

namespace veil::offchain {
namespace {

using common::to_bytes;

class StoreTest : public ::testing::Test {
 protected:
  net::LeakageAuditor auditor_;
  OffChainStore store_{"peer-admin", Hosting::PeerLocal, auditor_};
};

TEST_F(StoreTest, PutGetRoundTrip) {
  const auto digest = store_.put("kyc", to_bytes("passport=X1"));
  const auto data = store_.get(digest);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, to_bytes("passport=X1"));
}

TEST_F(StoreTest, DigestMatchesContent) {
  const auto digest = store_.put("doc", to_bytes("hello"));
  EXPECT_EQ(digest, crypto::sha256(to_bytes("hello")));
}

TEST_F(StoreTest, VerifyAgainstLedgerRef) {
  const common::Bytes data = to_bytes("contract-scan.pdf");
  const auto digest = store_.put("doc", data);
  EXPECT_TRUE(store_.verify(ledger::HashRef{"doc", digest}));
  // A reference to data we do not hold fails.
  EXPECT_FALSE(store_.verify(
      ledger::HashRef{"doc", crypto::sha256(to_bytes("other"))}));
}

TEST_F(StoreTest, GdprPurgeDeletesDataKeepsTombstone) {
  // §2.2: off-chain storage "has the additional property of enabling data
  // to be deleted, for example, if required by law".
  const auto digest = store_.put("pii", to_bytes("ssn=123-45-6789"));
  EXPECT_TRUE(store_.purge(digest));
  EXPECT_FALSE(store_.get(digest).has_value());
  EXPECT_TRUE(store_.purged(digest));
  // The on-ledger hash ref still exists but can no longer be resolved.
  EXPECT_FALSE(store_.verify(ledger::HashRef{"pii", digest}));
}

TEST_F(StoreTest, PurgeUnknownDigestReturnsFalse) {
  EXPECT_FALSE(store_.purge(crypto::sha256(to_bytes("never-stored"))));
  EXPECT_FALSE(store_.purged(crypto::sha256(to_bytes("never-stored"))));
}

TEST_F(StoreTest, AdminObservesPlaintext) {
  // Whoever administers the store sees the data — the trust decision the
  // design guide surfaces (peer-local vs external hosting).
  store_.put("secret", to_bytes("confidential"));
  EXPECT_TRUE(auditor_.saw("peer-admin", "offchain/secret"));
  EXPECT_FALSE(auditor_.saw("other-org", "offchain/secret"));
}

TEST_F(StoreTest, ExternalHostingAttributesToProvider) {
  OffChainStore external("cloud-provider", Hosting::External, auditor_);
  external.put("data", to_bytes("x"));
  EXPECT_TRUE(auditor_.saw("cloud-provider", "offchain/data"));
  EXPECT_EQ(external.hosting(), Hosting::External);
}

TEST_F(StoreTest, MakeRefWithoutStoring) {
  const common::Bytes data = to_bytes("shared-doc");
  const ledger::HashRef ref = make_ref("doc", data);
  EXPECT_EQ(ref.digest, crypto::sha256(data));
  EXPECT_EQ(ref.label, "doc");
  // Not in the store.
  EXPECT_FALSE(store_.get(ref.digest).has_value());
}

TEST_F(StoreTest, RestoreAfterPurgeIsPossible) {
  // Re-storing identical data resurrects the same digest (content-addressed).
  const common::Bytes data = to_bytes("value");
  const auto digest = store_.put("d", data);
  store_.purge(digest);
  const auto digest2 = store_.put("d", data);
  EXPECT_EQ(digest, digest2);
  EXPECT_TRUE(store_.get(digest).has_value());
  EXPECT_FALSE(store_.purged(digest));
}

}  // namespace
}  // namespace veil::offchain
