#include "pki/membership.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::pki {
namespace {

class MembershipTest : public ::testing::Test {
 protected:
  Certificate issue_for(const std::string& name) {
    const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
    keys_.push_back(kp.public_key());
    return ca_.issue(name, kp.public_key(), {}, 0, 1000);
  }

  const crypto::Group& group_ = crypto::Group::test_group();
  common::Rng rng_{21};
  CertificateAuthority ca_{"net-ca", group_, rng_};
  std::vector<crypto::PublicKey> keys_;
};

TEST_F(MembershipTest, OnboardValidMember) {
  MembershipService svc(ca_, true);
  EXPECT_TRUE(svc.onboard(issue_for("BankA"), 10));
  EXPECT_TRUE(svc.is_member("BankA"));
  EXPECT_EQ(svc.member_count(), 1u);
}

TEST_F(MembershipTest, RejectInvalidCertificate) {
  MembershipService svc(ca_, true);
  Certificate cert = issue_for("Evil");
  cert.subject = "Disguised";
  EXPECT_FALSE(svc.onboard(cert, 10));
  EXPECT_FALSE(svc.is_member("Disguised"));
}

TEST_F(MembershipTest, RejectRevokedCertificate) {
  MembershipService svc(ca_, true);
  const Certificate cert = issue_for("Revoked");
  ca_.revoke(cert.serial);
  EXPECT_FALSE(svc.onboard(cert, 10));
}

TEST_F(MembershipTest, FindByKey) {
  MembershipService svc(ca_, true);
  const Certificate cert = issue_for("BankB");
  svc.onboard(cert, 10);
  const auto member = svc.find_by_key(cert.subject_key);
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->name, "BankB");
  // Unknown key.
  const crypto::KeyPair stranger = crypto::KeyPair::generate(group_, rng_);
  EXPECT_FALSE(svc.find_by_key(stranger.public_key()).has_value());
}

TEST_F(MembershipTest, FindByName) {
  MembershipService svc(ca_, true);
  svc.onboard(issue_for("BankC"), 10);
  EXPECT_TRUE(svc.find_by_name("BankC").has_value());
  EXPECT_FALSE(svc.find_by_name("Nobody").has_value());
}

TEST_F(MembershipTest, DirectoryExposedListsAll) {
  MembershipService svc(ca_, true);
  svc.onboard(issue_for("A"), 10);
  svc.onboard(issue_for("B"), 10);
  const auto names = svc.list_members();
  EXPECT_EQ(names.size(), 2u);
}

TEST_F(MembershipTest, HiddenDirectoryThrows) {
  // §2.1: the global membership list is optional — hiding it is itself a
  // privacy mechanism.
  MembershipService svc(ca_, false);
  svc.onboard(issue_for("Private"), 10);
  EXPECT_FALSE(svc.directory_exposed());
  EXPECT_THROW(svc.list_members(), common::AccessError);
  // Targeted lookup still works for parties that know each other.
  EXPECT_TRUE(svc.find_by_name("Private").has_value());
}

TEST_F(MembershipTest, OffboardRemovesMemberAndKey) {
  MembershipService svc(ca_, true);
  const Certificate cert = issue_for("Leaver");
  svc.onboard(cert, 10);
  svc.offboard("Leaver");
  EXPECT_FALSE(svc.is_member("Leaver"));
  EXPECT_FALSE(svc.find_by_key(cert.subject_key).has_value());
  svc.offboard("Leaver");  // idempotent
}

}  // namespace
}  // namespace veil::pki
