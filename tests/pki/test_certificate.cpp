#include "pki/certificate.hpp"

#include <gtest/gtest.h>

#include "pki/ca.hpp"

namespace veil::pki {
namespace {

class CertificateTest : public ::testing::Test {
 protected:
  const crypto::Group& group_ = crypto::Group::test_group();
  common::Rng rng_{11};
  CertificateAuthority ca_{"root-ca", group_, rng_};
};

TEST_F(CertificateTest, RootIsSelfSigned) {
  const Certificate& root = ca_.root_certificate();
  EXPECT_EQ(root.subject, root.issuer);
  EXPECT_TRUE(root.verify(group_, ca_.public_key(), 0));
}

TEST_F(CertificateTest, IssueAndValidate) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate cert =
      ca_.issue("BankA", kp.public_key(), {{"org", "bank"}}, 0, 1000);
  EXPECT_TRUE(ca_.validate(cert, 500));
  EXPECT_EQ(cert.subject, "BankA");
  EXPECT_EQ(cert.attributes.at("org"), "bank");
}

TEST_F(CertificateTest, ValidityWindowEnforced) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate cert = ca_.issue("B", kp.public_key(), {}, 100, 200);
  EXPECT_FALSE(ca_.validate(cert, 99));
  EXPECT_TRUE(ca_.validate(cert, 100));
  EXPECT_TRUE(ca_.validate(cert, 200));
  EXPECT_FALSE(ca_.validate(cert, 201));
}

TEST_F(CertificateTest, TamperedSubjectFailsVerification) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  Certificate cert = ca_.issue("Honest", kp.public_key(), {}, 0, 1000);
  cert.subject = "Mallory";
  EXPECT_FALSE(ca_.validate(cert, 10));
}

TEST_F(CertificateTest, TamperedAttributesFailVerification) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  Certificate cert =
      ca_.issue("A", kp.public_key(), {{"role", "viewer"}}, 0, 1000);
  cert.attributes["role"] = "admin";
  EXPECT_FALSE(ca_.validate(cert, 10));
}

TEST_F(CertificateTest, ForeignCaRejected) {
  CertificateAuthority other("other-ca", group_, rng_);
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate cert = other.issue("X", kp.public_key(), {}, 0, 1000);
  EXPECT_FALSE(ca_.validate(cert, 10));
  // And direct verification under the wrong issuer key fails too.
  EXPECT_FALSE(cert.verify(group_, ca_.public_key(), 10));
}

TEST_F(CertificateTest, RevocationIsEnforcedAndIdempotent) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate cert = ca_.issue("R", kp.public_key(), {}, 0, 1000);
  EXPECT_TRUE(ca_.validate(cert, 10));
  ca_.revoke(cert.serial);
  ca_.revoke(cert.serial);
  EXPECT_TRUE(ca_.is_revoked(cert.serial));
  EXPECT_FALSE(ca_.validate(cert, 10));
}

TEST_F(CertificateTest, SerialsAreUnique) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate a = ca_.issue("A", kp.public_key(), {}, 0, 10);
  const Certificate b = ca_.issue("B", kp.public_key(), {}, 0, 10);
  EXPECT_NE(a.serial, b.serial);
}

TEST_F(CertificateTest, EncodingRoundTrip) {
  const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
  const Certificate cert =
      ca_.issue("RoundTrip", kp.public_key(), {{"a", "1"}, {"b", "2"}}, 5, 99);
  const Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded, cert);
  EXPECT_TRUE(ca_.validate(decoded, 50));
}

}  // namespace
}  // namespace veil::pki
