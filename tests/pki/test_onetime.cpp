#include "pki/onetime.hpp"

#include <gtest/gtest.h>

namespace veil::pki {
namespace {

class OneTimeKeyTest : public ::testing::Test {
 protected:
  const crypto::Group& group_ = crypto::Group::test_group();
  common::Rng rng_{31};
  CertificateAuthority ca_{"ca", group_, rng_};
};

TEST_F(OneTimeKeyTest, DerivationIsDeterministic) {
  common::Rng r(1);
  const common::Bytes master = r.next_bytes(32);
  OneTimeKeyChain chain_a(group_, master);
  OneTimeKeyChain chain_b(group_, master);
  EXPECT_EQ(chain_a.derive(7).public_key(), chain_b.derive(7).public_key());
}

TEST_F(OneTimeKeyTest, DistinctIndicesGiveDistinctKeys) {
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  const auto k0 = chain.derive(0).public_key();
  const auto k1 = chain.derive(1).public_key();
  const auto k2 = chain.derive(2).public_key();
  EXPECT_NE(k0, k1);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k0, k2);
}

TEST_F(OneTimeKeyTest, DistinctMastersGiveDistinctKeys) {
  OneTimeKeyChain a(group_, rng_.next_bytes(32));
  OneTimeKeyChain b(group_, rng_.next_bytes(32));
  EXPECT_NE(a.derive(0).public_key(), b.derive(0).public_key());
}

TEST_F(OneTimeKeyTest, NextAdvancesCounter) {
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  const auto k0 = chain.next();
  const auto k1 = chain.next();
  EXPECT_EQ(chain.issued_count(), 2u);
  EXPECT_NE(k0.public_key(), k1.public_key());
  // next() is just derive(counter).
  EXPECT_EQ(k0.public_key(), chain.derive(0).public_key());
}

TEST_F(OneTimeKeyTest, DerivedKeysSign) {
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  const crypto::KeyPair kp = chain.next();
  const auto sig = kp.sign(common::to_bytes("asset transfer"));
  EXPECT_TRUE(crypto::verify(group_, kp.public_key(),
                             common::to_bytes("asset transfer"), sig));
}

TEST_F(OneTimeKeyTest, LinkageCertificateBindsIdentity) {
  const crypto::KeyPair identity_key = crypto::KeyPair::generate(group_, rng_);
  const Certificate identity =
      ca_.issue("BankA", identity_key.public_key(), {}, 0, 1000);
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  const crypto::KeyPair onetime = chain.next();

  const auto linkage =
      issue_linkage(ca_, identity, onetime.public_key(), 10);
  ASSERT_TRUE(linkage.has_value());
  EXPECT_EQ(linkage->identity(), "BankA");
  EXPECT_EQ(linkage->certificate.subject_key, onetime.public_key());
  EXPECT_TRUE(ca_.validate(linkage->certificate, 10));
}

TEST_F(OneTimeKeyTest, LinkageRefusedForInvalidIdentity) {
  const crypto::KeyPair identity_key = crypto::KeyPair::generate(group_, rng_);
  Certificate identity =
      ca_.issue("BankB", identity_key.public_key(), {}, 0, 1000);
  identity.subject = "Forged";
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  EXPECT_FALSE(
      issue_linkage(ca_, identity, chain.next().public_key(), 10).has_value());
}

TEST_F(OneTimeKeyTest, LinkageRefusedForRevokedIdentity) {
  const crypto::KeyPair identity_key = crypto::KeyPair::generate(group_, rng_);
  const Certificate identity =
      ca_.issue("BankC", identity_key.public_key(), {}, 0, 1000);
  ca_.revoke(identity.serial);
  OneTimeKeyChain chain(group_, rng_.next_bytes(32));
  EXPECT_FALSE(
      issue_linkage(ca_, identity, chain.next().public_key(), 10).has_value());
}

TEST_F(OneTimeKeyTest, FingerprintDoesNotRevealIdentity) {
  // The pseudonymous fingerprint carries no relation to the identity
  // string — unlinkability holds unless the linkage cert is shared.
  OneTimeKeyChain chain(group_, common::to_bytes("BankA-master-secret"));
  const std::string fp = chain.next().public_key().fingerprint();
  EXPECT_EQ(fp.find("BankA"), std::string::npos);
}

}  // namespace
}  // namespace veil::pki
