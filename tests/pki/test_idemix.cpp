#include "pki/idemix.hpp"

#include <gtest/gtest.h>

namespace veil::pki {
namespace {

class IdemixTest : public ::testing::Test {
 protected:
  Certificate issue_identity(const std::string& name,
                             const std::string& attr_class) {
    const crypto::KeyPair kp = crypto::KeyPair::generate(group_, rng_);
    return ca_.issue(name, kp.public_key(), {{"class:" + attr_class, "1"}}, 0,
                     1000);
  }

  const crypto::Group& group_ = crypto::Group::test_group();
  common::Rng rng_{41};
  CertificateAuthority ca_{"idemix-ca", group_, rng_};
  IdemixIssuer issuer_{ca_};
};

TEST_F(IdemixTest, IssueAndPresent) {
  const Certificate identity = issue_identity("Alice", "role=trader");
  const auto cred =
      request_credential(issuer_, identity, "role=trader", 10, rng_);
  ASSERT_TRUE(cred.has_value());

  const auto presentation =
      present(group_, *cred, common::to_bytes("verifier-nonce"), rng_);
  EXPECT_TRUE(verify_presentation(group_, ca_.public_key(), presentation,
                                  common::to_bytes("verifier-nonce")));
  EXPECT_EQ(presentation.attribute_class, "role=trader");
}

TEST_F(IdemixTest, BlindSignatureVerifiesAsOrdinarySchnorr) {
  const Certificate identity = issue_identity("Alice", "c");
  const auto cred = request_credential(issuer_, identity, "c", 10, rng_);
  ASSERT_TRUE(cred.has_value());
  EXPECT_TRUE(crypto::verify(group_, ca_.public_key(), cred->signed_message(),
                             cred->issuer_signature));
}

TEST_F(IdemixTest, IssuerRefusesMissingAttribute) {
  const Certificate identity = issue_identity("Alice", "role=trader");
  EXPECT_FALSE(
      request_credential(issuer_, identity, "role=admin", 10, rng_)
          .has_value());
}

TEST_F(IdemixTest, IssuerRefusesInvalidCertificate) {
  Certificate identity = issue_identity("Alice", "c");
  identity.subject = "Mallory";
  EXPECT_FALSE(request_credential(issuer_, identity, "c", 10, rng_)
                   .has_value());
}

TEST_F(IdemixTest, IssuerRefusesRevokedCertificate) {
  const Certificate identity = issue_identity("Alice", "c");
  ca_.revoke(identity.serial);
  EXPECT_FALSE(request_credential(issuer_, identity, "c", 10, rng_)
                   .has_value());
}

TEST_F(IdemixTest, PresentationContextBound) {
  const Certificate identity = issue_identity("Alice", "c");
  const auto cred = request_credential(issuer_, identity, "c", 10, rng_);
  const auto presentation =
      present(group_, *cred, common::to_bytes("tx-1"), rng_);
  // Replaying the same presentation for a different context fails.
  EXPECT_FALSE(verify_presentation(group_, ca_.public_key(), presentation,
                                   common::to_bytes("tx-2")));
}

TEST_F(IdemixTest, ForgedAttributeClassFails) {
  const Certificate identity = issue_identity("Alice", "role=viewer");
  const auto cred =
      request_credential(issuer_, identity, "role=viewer", 10, rng_);
  IdemixPresentation p = present(group_, *cred, common::to_bytes("n"), rng_);
  p.attribute_class = "role=admin";  // claim a class that was never signed
  EXPECT_FALSE(verify_presentation(group_, ca_.public_key(), p,
                                   common::to_bytes("n")));
}

TEST_F(IdemixTest, PresentationWithoutSecretFails) {
  // A thief who observed a presentation knows the pseudonym key and the
  // issuer signature, but cannot produce a fresh context-bound proof.
  const Certificate identity = issue_identity("Alice", "c");
  const auto cred = request_credential(issuer_, identity, "c", 10, rng_);
  const auto observed = present(group_, *cred, common::to_bytes("old"), rng_);

  IdemixCredential stolen = *cred;
  stolen.pseudonym_secret = group_.random_scalar(rng_);  // wrong secret
  const auto forged = present(group_, stolen, common::to_bytes("new"), rng_);
  EXPECT_FALSE(verify_presentation(group_, ca_.public_key(), forged,
                                   common::to_bytes("new")));
}

TEST_F(IdemixTest, IssuerCannotLinkCredentialToSession) {
  // The unlinkability property: nothing the issuer saw during issuance
  // appears in (or determines) the credential's public parts.
  const Certificate identity = issue_identity("Alice", "c");
  const auto cred = request_credential(issuer_, identity, "c", 10, rng_);
  ASSERT_TRUE(cred.has_value());
  ASSERT_EQ(issuer_.audit_log().size(), 1u);
  const IssuerView& view = issuer_.audit_log().front();

  // The issuer saw the identity (that is the Idemix trust model)...
  EXPECT_EQ(view.identity, "Alice");
  // ...but the challenge it signed is the BLINDED one, not the
  // credential's actual challenge, and the nonce commitment differs from
  // the signature's commitment-derived value.
  EXPECT_NE(view.blinded_challenge, cred->issuer_signature.challenge);
  // And the pseudonym key never crossed the issuance channel.
  EXPECT_NE(view.nonce_commitment, cred->pseudonym_key.y);
}

TEST_F(IdemixTest, TwoCredentialsAreUnlinkable) {
  const Certificate identity = issue_identity("Alice", "c");
  const auto cred1 = request_credential(issuer_, identity, "c", 10, rng_);
  const auto cred2 = request_credential(issuer_, identity, "c", 10, rng_);
  ASSERT_TRUE(cred1 && cred2);
  // Distinct pseudonyms, distinct signatures — presentations of the two
  // share no identifier.
  EXPECT_NE(cred1->pseudonym_key, cred2->pseudonym_key);
  EXPECT_NE(cred1->issuer_signature, cred2->issuer_signature);
}

TEST_F(IdemixTest, CompleteUnknownSessionFails) {
  EXPECT_FALSE(issuer_.complete(999, crypto::BigInt(1)).has_value());
}

TEST_F(IdemixTest, SessionIsSingleUse) {
  const Certificate identity = issue_identity("Alice", "c");
  auto start = issuer_.begin(identity, "c", 10, rng_);
  ASSERT_TRUE(start.has_value());
  EXPECT_TRUE(issuer_.complete(start->session_id, crypto::BigInt(5)));
  EXPECT_FALSE(issuer_.complete(start->session_id, crypto::BigInt(5)));
}

}  // namespace
}  // namespace veil::pki
