// Extension (paper §5, "future work"): mitigating Quorum's private-asset
// double spend with public nullifiers.
//
// The flaw: private state is validated only by the involved parties, so
// an owner can privately transfer the same asset to disjoint recipient
// sets (reproduced in QuorumTest.DoubleSpendOfPrivateAssetSucceeds).
//
// The mitigation pattern (what ZKP-based designs such as Zether/Anonymous
// Zether later productized): each private asset carries an owner-held
// spend secret; transferring it publishes a NULLIFIER — H(asset || spend
// secret) — on the PUBLIC chain. Every node can check nullifier
// uniqueness without learning the asset, the parties' roles in it, or
// the transfer contents. A second spend of the same asset reuses the
// same nullifier and is publicly rejected.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::string nullifier_key(const std::string& asset,
                          const common::Bytes& spend_secret) {
  crypto::Sha256 h;
  h.update("quorum.nullifier");
  h.update(asset);
  h.update(spend_secret);
  return "nullifier/" + crypto::digest_hex(h.finalize());
}

/// The mitigated transfer protocol, as any node-side library would
/// implement it on top of the platform.
quorum::TxResult spend_private_asset(quorum::QuorumNetwork& net,
                                     const std::string& from,
                                     const std::set<std::string>& recipients,
                                     const std::string& asset,
                                     const common::Bytes& spend_secret) {
  const std::string key = nullifier_key(asset, spend_secret);
  // Public uniqueness check — ANY node can (and does) validate this.
  if (net.public_state(from).get(key).has_value()) {
    return {false, "", "nullifier already spent"};
  }
  // Publish the nullifier publicly, then move the asset privately.
  const auto pub = net.submit_public(from, {{key, to_bytes("1"), false}});
  if (!pub.accepted) return pub;
  auto priv = net.submit_private(
      from, recipients,
      {{"asset/" + asset + "/owner",
        to_bytes(*recipients.begin()), false}});
  return priv;
}

class QuorumMitigationTest : public ::testing::Test {
 protected:
  QuorumMitigationTest()
      : net_(common::Rng(31)),
        rng_(32),
        quorum_(net_, crypto::Group::test_group(), rng_, 1) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum_.add_node(n);
  }

  net::SimNetwork net_;
  common::Rng rng_;
  quorum::QuorumNetwork quorum_;
};

TEST_F(QuorumMitigationTest, FirstSpendSucceeds) {
  const common::Bytes secret = rng_.next_bytes(32);
  const auto r =
      spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-7", secret);
  EXPECT_TRUE(r.accepted) << r.reason;
  EXPECT_EQ(quorum_.private_owner("NodeB", "bond-7"), "NodeB");
}

TEST_F(QuorumMitigationTest, DoubleSpendPubliclyRejected) {
  const common::Bytes secret = rng_.next_bytes(32);
  ASSERT_TRUE(
      spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-7", secret)
          .accepted);
  // Second spend of the SAME asset with the SAME spend secret: the
  // nullifier is already on the public chain, visible to every node.
  const auto r =
      spend_private_asset(quorum_, "NodeA", {"NodeC"}, "bond-7", secret);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, "nullifier already spent");
  // NodeC never came to believe it owns the asset.
  EXPECT_FALSE(quorum_.private_owner("NodeC", "bond-7").has_value());
}

TEST_F(QuorumMitigationTest, AnyNodeCanDetectTheDoubleSpend) {
  const common::Bytes secret = rng_.next_bytes(32);
  spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-7", secret);
  // An uninvolved node's public state already contains the nullifier —
  // public validation needs no private data.
  const std::string key = nullifier_key("bond-7", secret);
  EXPECT_TRUE(quorum_.public_state("NodeC").get(key).has_value());
}

TEST_F(QuorumMitigationTest, NullifierRevealsNothingAboutTheAsset) {
  const common::Bytes secret = rng_.next_bytes(32);
  spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-7", secret);
  const std::string key = nullifier_key("bond-7", secret);
  // The public key string contains neither the asset id nor any party.
  EXPECT_EQ(key.find("bond"), std::string::npos);
  EXPECT_EQ(key.find("NodeB"), std::string::npos);
  // And without the spend secret an observer cannot reproduce it.
  EXPECT_NE(key, nullifier_key("bond-7", rng_.next_bytes(32)));
}

TEST_F(QuorumMitigationTest, DifferentAssetsDontCollide) {
  const common::Bytes secret = rng_.next_bytes(32);
  EXPECT_TRUE(
      spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-7", secret)
          .accepted);
  EXPECT_TRUE(
      spend_private_asset(quorum_, "NodeA", {"NodeB"}, "bond-8", secret)
          .accepted);
}

}  // namespace
}  // namespace veil
