// End-to-end reproduction of the paper's Section 4 case study: a letter
// of credit among banks, a buyer and a seller, designed by running the
// design guide and implemented on the Fabric-style platform.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/assessment.hpp"
#include "crypto/aes.hpp"
#include "offchain/store.hpp"
#include "platforms/fabric/fabric.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> loc_contract() {
  // Letter-of-credit lifecycle: apply -> issue -> ship -> pay.
  return std::make_shared<contracts::FunctionContract>(
      "letter-of-credit", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        const common::Bytes args(ctx.args().begin(), ctx.args().end());
        if (action == "apply") {
          if (ctx.get("loc/status")) return contracts::InvokeStatus::Rejected;
          ctx.put("loc/status", to_bytes("applied"));
          ctx.put("loc/terms", args);
          return contracts::InvokeStatus::Ok;
        }
        if (action == "issue") {
          const auto status = ctx.get("loc/status");
          if (!status || *status != to_bytes("applied")) {
            return contracts::InvokeStatus::Rejected;
          }
          ctx.put("loc/status", to_bytes("issued"));
          return contracts::InvokeStatus::Ok;
        }
        if (action == "ship") {
          const auto status = ctx.get("loc/status");
          if (!status || *status != to_bytes("issued")) {
            return contracts::InvokeStatus::Rejected;
          }
          ctx.put("loc/status", to_bytes("shipped"));
          ctx.put("loc/shipping-doc-hash", args);
          return contracts::InvokeStatus::Ok;
        }
        if (action == "pay") {
          const auto status = ctx.get("loc/status");
          if (!status || *status != to_bytes("shipped")) {
            return contracts::InvokeStatus::Rejected;
          }
          ctx.put("loc/status", to_bytes("paid"));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

class LetterOfCreditTest : public ::testing::Test {
 protected:
  LetterOfCreditTest()
      : net_(common::Rng(404)),
        rng_(405),
        fab_(net_, crypto::Group::test_group(), rng_, fabric_config()),
        pii_store_("IssuingBank", offchain::Hosting::PeerLocal,
                   net_.auditor()) {
    // Network: two banks, buyer, seller — plus an uninvolved observer org.
    for (const char* org :
         {"IssuingBank", "AdvisingBank", "Buyer", "Seller", "OtherCorp"}) {
      fab_.add_org(org);
    }
    // Design-guide outcome: the transacting group uses a separate ledger.
    fab_.create_channel("loc-33981",
                        {"IssuingBank", "AdvisingBank", "Buyer", "Seller"});
    fab_.install_chaincode(
        "loc-33981", "IssuingBank", loc_contract(),
        contracts::EndorsementPolicy::require("IssuingBank"));
  }

  static fabric::FabricConfig fabric_config() {
    fabric::FabricConfig config;
    // The paper allows a trusted third party to run the orderer if data
    // is encrypted — we run the shared orderer and encrypt the payload.
    config.orderer_deployment = ledger::OrdererDeployment::Shared;
    return config;
  }

  net::SimNetwork net_;
  common::Rng rng_;
  fabric::FabricNetwork fab_;
  offchain::OffChainStore pii_store_;
};

TEST_F(LetterOfCreditTest, GuideRecommendsTheImplementedDesign) {
  const auto rec =
      core::DecisionEngine::for_profile(core::letter_of_credit_profile());
  EXPECT_TRUE(rec.recommends(core::Mechanism::SeparationOfLedgers));
  EXPECT_TRUE(rec.recommends(core::Mechanism::OffChainData));
  EXPECT_TRUE(rec.recommends(core::Mechanism::SymmetricEncryption));
  const auto ranked =
      core::assess(rec, core::CapabilityMatrix::paper_table1());
  EXPECT_EQ(ranked[0].platform, core::Platform::Fabric);
}

TEST_F(LetterOfCreditTest, FullLifecycle) {
  // Terms are encrypted under a key shared among the four parties via
  // PKI, so the third-party orderer sees ciphertext only.
  const common::Bytes shared_key = rng_.next_bytes(32);
  const common::Bytes terms = to_bytes("amount=1,000,000 USD; expiry=2020");
  const common::Bytes sealed_terms =
      crypto::seal(shared_key, terms, rng_.next_bytes(16));

  auto r = fab_.submit("loc-33981", "Buyer", "letter-of-credit", "apply",
                       sealed_terms);
  ASSERT_TRUE(r.committed) << r.reason;
  r = fab_.submit("loc-33981", "IssuingBank", "letter-of-credit", "issue", {});
  ASSERT_TRUE(r.committed) << r.reason;
  r = fab_.submit("loc-33981", "Seller", "letter-of-credit", "ship",
                  to_bytes("doc-hash"));
  ASSERT_TRUE(r.committed) << r.reason;
  r = fab_.submit("loc-33981", "IssuingBank", "letter-of-credit", "pay", {});
  ASSERT_TRUE(r.committed) << r.reason;

  // Every party on the channel can decrypt the terms...
  const auto stored = fab_.state("loc-33981", "Seller").get("loc/terms");
  ASSERT_TRUE(stored.has_value());
  const auto opened = crypto::open(shared_key, stored->value);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, terms);
  EXPECT_EQ(fab_.state("loc-33981", "Buyer").get("loc/status")->value,
            to_bytes("paid"));
}

TEST_F(LetterOfCreditTest, LifecycleOrderEnforced) {
  // Cannot pay before shipping.
  auto r = fab_.submit("loc-33981", "IssuingBank", "letter-of-credit", "pay",
                       {});
  EXPECT_FALSE(r.committed);
  // Cannot issue before applying.
  r = fab_.submit("loc-33981", "IssuingBank", "letter-of-credit", "issue", {});
  EXPECT_FALSE(r.committed);
}

TEST_F(LetterOfCreditTest, UninvolvedOrgLearnsNothing) {
  fab_.submit("loc-33981", "Buyer", "letter-of-credit", "apply",
              to_bytes("terms"));
  // OtherCorp: no replica, no traffic, no observations.
  EXPECT_FALSE(fab_.is_channel_member("loc-33981", "OtherCorp"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OtherCorp", "tx/"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OtherCorp", "net/"));
  EXPECT_THROW(fab_.state("loc-33981", "OtherCorp"), common::AccessError);
}

TEST_F(LetterOfCreditTest, BuyerSellerRelationshipHiddenFromNetwork) {
  fab_.submit("loc-33981", "Buyer", "letter-of-credit", "apply",
              to_bytes("terms"));
  // The membership directory reveals onboarded orgs (acceptable — they
  // are verified identities), but channel membership is not derivable by
  // OtherCorp: it saw no channel traffic naming Buyer or Seller.
  EXPECT_EQ(fab_.auditor().bytes_seen("peer.OtherCorp", ""), 0u);
}

TEST_F(LetterOfCreditTest, PiiOffChainWithGdprDeletion) {
  // Buyer PII goes off-chain; the transaction carries only the hash.
  const common::Bytes pii = to_bytes("passport=P1234567;name=J.Doe");
  const crypto::Digest digest = pii_store_.put("buyer-kyc", pii);
  const ledger::HashRef ref{"buyer-kyc", digest};

  // Anchor the hash on the channel (payload = digest bytes).
  auto r = fab_.submit("loc-33981", "Buyer", "letter-of-credit", "apply",
                       crypto::digest_bytes(digest));
  ASSERT_TRUE(r.committed);

  // Provenance verifiable while stored...
  EXPECT_TRUE(pii_store_.verify(ref));
  // ...then the data subject invokes the right to be forgotten.
  EXPECT_TRUE(pii_store_.purge(digest));
  EXPECT_FALSE(pii_store_.get(digest).has_value());
  // The immutable ledger still holds the hash — but it no longer resolves
  // to any data (the paper's audit-stub trade-off).
  EXPECT_TRUE(pii_store_.purged(digest));
}

TEST_F(LetterOfCreditTest, OrdererSeesCiphertextNotTerms) {
  const common::Bytes shared_key = rng_.next_bytes(32);
  const common::Bytes sealed_terms =
      crypto::seal(shared_key, to_bytes("amount=9M"), rng_.next_bytes(16));
  const auto r = fab_.submit("loc-33981", "Buyer", "letter-of-credit",
                             "apply", sealed_terms);
  ASSERT_TRUE(r.committed);
  // The orderer observed the transaction (metadata + bytes)...
  EXPECT_TRUE(fab_.auditor().saw("orderer-org", "tx/" + r.tx_id + "/"));
  // ...but the payload bytes it saw are an authenticated ciphertext; the
  // orderer holds no key, so open() fails for it.
  const auto stored = fab_.state("loc-33981", "Buyer").get("loc/terms");
  ASSERT_TRUE(stored.has_value());
  const common::Bytes orderer_key = rng_.next_bytes(32);  // not the key
  EXPECT_FALSE(crypto::open(orderer_key, stored->value).has_value());
}

}  // namespace
}  // namespace veil
