// Loopback chaos regression: the three platform models run a seeded
// workload twice — once on the deterministic in-process backend, once on
// real loopback TCP with 20% syscall-level fault injection — and must
// produce bit-identical ledgers. The socket chaos (partial writes, short
// reads, EINTR/EAGAIN storms, resets, stalls, torn frames) is entirely
// repaired by connection supervision and session resumption below the
// engine: zero messages lost, zero duplicate applies, every digest equal.
//
// Driven by the chaos cron with VEIL_CHAOS_SEED, like the sim-only suite.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "net/network.hpp"
#include "net/tcp.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::uint64_t chaos_seed() {
  std::uint64_t seed = 77;
  if (const char* env = std::getenv("VEIL_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::printf("[tcp-loopback] VEIL_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// The injected-socket-chaos backend under test: every fault class from
/// the profile at a 20% base rate.
std::unique_ptr<net::TcpTransport> chaos_tcp(std::uint64_t seed) {
  net::TcpConfig config;
  config.fault_seed = seed;
  config.faults = net::SocketFaultProfile::uniform(0.2);
  return std::make_unique<net::TcpTransport>(common::Rng(seed),
                                             net::LatencyModel{}, config);
}

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        if (a.rfind("put:", 0) != 0) {
          return contracts::InvokeStatus::UnknownAction;
        }
        ctx.put(a.substr(4), common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

/// What one platform run leaves behind; compared field by field between
/// backends, so any lost, duplicated or reordered apply shows up.
struct RunResult {
  std::uint64_t height = 0;
  crypto::Digest tip{};
  crypto::Digest state{};
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
};

RunResult run_fabric(net::Transport& net, std::uint64_t seed) {
  common::Rng rng(seed + 1);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const char* org : {"OrgA", "OrgB"}) fab.add_org(org);
  fab.create_channel("trade", {"OrgA", "OrgB"});
  fab.install_chaincode("trade", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  for (int i = 0; i < 8; ++i) {
    const auto r = fab.submit("trade", "OrgA", "cc",
                              "put:lot" + std::to_string(i), to_bytes("qty"));
    EXPECT_TRUE(r.committed) << "fabric tx " << i << ": " << r.reason;
  }
  EXPECT_EQ(fab.chain("trade", "OrgA").tip_hash(),
            fab.chain("trade", "OrgB").tip_hash());
  RunResult out;
  out.height = fab.chain("trade", "OrgA").height();
  out.tip = fab.chain("trade", "OrgA").tip_hash();
  out.state = fab.state("trade", "OrgA").digest();
  out.delivered = net.stats().messages_delivered;
  out.sent = net.stats().messages_sent;
  return out;
}

RunResult run_corda(net::Transport& net, std::uint64_t seed) {
  common::Rng rng(seed + 2);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  for (const char* p : {"A", "B"}) corda.add_party(p);
  corda.add_notary("Notary", /*validating=*/false);
  EXPECT_TRUE(corda.issue("A", "Deal", to_bytes("cargo"), {"A"}, "Notary")
                  .success);
  for (int i = 0; i < 6; ++i) {
    const auto& owner = (i % 2 == 0) ? "A" : "B";
    const auto& next = (i % 2 == 0) ? "B" : "A";
    const auto r = corda.transact(
        owner, {corda.vault(owner).front().ref},
        {corda::OutputSpec{"Deal", to_bytes("leg" + std::to_string(i)),
                           {next}}},
        "Notary");
    EXPECT_TRUE(r.success) << "corda hop " << i << ": " << r.reason;
  }
  RunResult out;
  out.height = corda.vault("A").size() + corda.vault("B").size();
  out.tip = corda.vault_digest("A");
  out.state = corda.vault_digest("B");
  out.delivered = net.stats().messages_delivered;
  out.sent = net.stats().messages_sent;
  return out;
}

RunResult run_quorum(net::Transport& net, std::uint64_t seed) {
  common::Rng rng(seed + 3);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/1);
  for (const char* n : {"A", "B", "C"}) quorum.add_node(n);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(quorum
                    .submit_public("A", {{"pub/" + std::to_string(i),
                                          to_bytes("v"), false}})
                    .accepted);
    EXPECT_TRUE(quorum
                    .submit_private("A", {"B"},
                                    {{"deal/" + std::to_string(i),
                                      to_bytes("terms"), false}})
                    .accepted);
  }
  EXPECT_EQ(quorum.public_chain("A").tip_hash(),
            quorum.public_chain("C").tip_hash());
  RunResult out;
  out.height = quorum.public_chain("A").height();
  out.tip = quorum.public_chain("A").tip_hash();
  out.state = quorum.private_state("B").digest();
  out.delivered = net.stats().messages_delivered;
  out.sent = net.stats().messages_sent;
  return out;
}

void expect_bit_identical(const RunResult& sim, const RunResult& tcp,
                          const char* platform) {
  EXPECT_EQ(sim.height, tcp.height) << platform;
  EXPECT_EQ(sim.tip, tcp.tip) << platform << " tip hash diverged";
  EXPECT_EQ(sim.state, tcp.state) << platform << " state digest diverged";
  // Same deliveries on both backends: nothing the injector did leaked
  // through as a lost or duplicated message.
  EXPECT_EQ(sim.sent, tcp.sent) << platform;
  EXPECT_EQ(sim.delivered, tcp.delivered) << platform << " duplicate/lost apply";
}

TEST(TcpLoopbackChaos, FabricConvergesBitIdenticallyUnderInjectedFaults) {
  const std::uint64_t seed = chaos_seed();
  net::SimNetwork sim{common::Rng(seed)};
  const RunResult sim_run = run_fabric(sim, seed);
  auto tcp = chaos_tcp(seed);
  const RunResult tcp_run = run_fabric(*tcp, seed);
  expect_bit_identical(sim_run, tcp_run, "fabric");
  EXPECT_GT(tcp->stats().tcp_injected_faults, 0u);
}

TEST(TcpLoopbackChaos, CordaConvergesBitIdenticallyUnderInjectedFaults) {
  const std::uint64_t seed = chaos_seed() ^ 0xc0dau;
  net::SimNetwork sim{common::Rng(seed)};
  const RunResult sim_run = run_corda(sim, seed);
  auto tcp = chaos_tcp(seed);
  const RunResult tcp_run = run_corda(*tcp, seed);
  expect_bit_identical(sim_run, tcp_run, "corda");
  EXPECT_GT(tcp->stats().tcp_injected_faults, 0u);
}

TEST(TcpLoopbackChaos, QuorumConvergesBitIdenticallyUnderInjectedFaults) {
  const std::uint64_t seed = chaos_seed() ^ 0x9007u;
  net::SimNetwork sim{common::Rng(seed)};
  const RunResult sim_run = run_quorum(sim, seed);
  auto tcp = chaos_tcp(seed);
  const RunResult tcp_run = run_quorum(*tcp, seed);
  expect_bit_identical(sim_run, tcp_run, "quorum");
  EXPECT_GT(tcp->stats().tcp_injected_faults, 0u);
}

// Engine-modeled chaos (drops) stacked on socket chaos: the reliable
// channel handles the modeled loss exactly as on sim, while the injector
// hammers the wire underneath.
TEST(TcpLoopbackChaos, ModeledLossAndSocketChaosCompose) {
  const std::uint64_t seed = chaos_seed() + 17;
  const auto run = [&](net::Transport& net) {
    net.set_drop_probability(0.2);
    return run_fabric(net, seed);
  };
  net::SimNetwork sim{common::Rng(seed)};
  const RunResult sim_run = run(sim);
  auto tcp = chaos_tcp(seed);
  const RunResult tcp_run = run(*tcp);
  expect_bit_identical(sim_run, tcp_run, "fabric+loss");
  EXPECT_GT(sim.stats().retransmits, 0u);
  EXPECT_EQ(sim.stats().retransmits, tcp->stats().retransmits);
}

}  // namespace
}  // namespace veil
