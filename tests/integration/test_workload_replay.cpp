// Replay the synthetic trade workload end-to-end on the Fabric model and
// check the global privacy invariants hold across an entire stream of
// transactions — not just for a single hand-built case.
#include <gtest/gtest.h>

#include "platforms/fabric/fabric.hpp"
#include "workload/workload.hpp"

namespace veil {
namespace {

std::shared_ptr<contracts::FunctionContract> trade_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "trades", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        ctx.put("trade/" + action,
                common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

TEST(WorkloadReplay, FabricChannelPerPairIsolatesEveryTrade) {
  net::SimNetwork net{common::Rng(99)};
  common::Rng rng(100);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  const std::vector<std::string> traders = {"BankA", "BankB", "BankC"};
  for (const std::string& p : traders) fab.add_org(p);
  fab.add_org("Watcher");

  auto channel_of = [&](const std::string& a, const std::string& b) {
    const std::string name = a < b ? a + "-" + b : b + "-" + a;
    if (!fab.is_channel_member(name, a)) {
      fab.create_channel(name, {a, b});
      fab.install_chaincode(name, a, trade_contract(),
                            contracts::EndorsementPolicy::require(a));
    }
    return name;
  };

  workload::TradeConfig config;
  config.details_bytes = 64;
  workload::TradeWorkload workload(traders, config, 2025);

  std::size_t committed = 0, seq = 0;
  std::vector<std::pair<std::string, std::string>> trade_log;  // tx, third
  for (const workload::TradeEvent& trade : workload.take(40)) {
    const auto receipt =
        fab.submit(channel_of(trade.buyer, trade.seller), trade.buyer,
                   "trades", std::to_string(seq++), trade.details);
    ASSERT_TRUE(receipt.committed) << receipt.reason;
    ++committed;
    // The trader NOT in this trade.
    for (const std::string& p : traders) {
      if (p != trade.buyer && p != trade.seller) {
        trade_log.emplace_back(receipt.tx_id, p);
      }
    }
  }
  EXPECT_EQ(committed, 40u);

  // Invariant 1: the onboarded-but-uninvolved org saw nothing, ever.
  EXPECT_EQ(net.auditor().bytes_seen("peer.Watcher", ""), 0u);

  // Invariant 2: for EVERY trade, the third trader (who trades on other
  // channels!) observed neither data nor parties of that trade.
  for (const auto& [tx_id, third] : trade_log) {
    EXPECT_FALSE(net.auditor().saw("peer." + third, "tx/" + tx_id + "/"))
        << third << " leaked on " << tx_id;
  }

  // Invariant 3: the shared orderer saw every single trade (§3.4) —
  // the across-the-board counterpart of invariant 2.
  for (const auto& [tx_id, third] : trade_log) {
    EXPECT_TRUE(net.auditor().saw("orderer-org", "tx/" + tx_id + "/data"));
  }
}

TEST(WorkloadReplay, SupplyChainOnFabricWithPdc) {
  // Custody chain on one channel, inspection reports confined to the
  // {current holder, next holder} pair via per-hop collections.
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  const std::vector<std::string> chain = {"Farm", "Mill", "Shop"};
  for (const std::string& p : chain) fab.add_org(p);
  fab.create_channel("custody", {"Farm", "Mill", "Shop"});
  fab.install_chaincode("custody", "Farm", trade_contract(),
                        contracts::EndorsementPolicy::require("Farm"));
  fab.define_collection("custody", {"farm-mill", {"Farm", "Mill"}, 0, 0});
  fab.define_collection("custody", {"mill-shop", {"Mill", "Shop"}, 0, 0});

  workload::SupplyChainConfig config;
  config.hops_per_item = 2;
  workload::SupplyChainWorkload workload(chain, config, 9);

  for (const workload::CustodyEvent& event : workload.take(8)) {
    const std::string collection =
        event.hop == 0 ? "farm-mill" : "mill-shop";
    const auto receipt = fab.submit(
        "custody", "Farm", "trades", event.item + "/" + std::to_string(event.hop),
        common::to_bytes(event.item),
        fabric::PrivatePayload{collection, event.item, event.inspection});
    ASSERT_TRUE(receipt.committed) << receipt.reason;
  }

  // Inspection reports stayed within their hop pair: the Shop cannot read
  // farm-mill data and the Farm cannot read mill-shop data.
  EXPECT_FALSE(
      fab.read_private("custody", "farm-mill", "item-0", "Shop").has_value());
  EXPECT_FALSE(
      fab.read_private("custody", "mill-shop", "item-0", "Farm").has_value());
  EXPECT_TRUE(
      fab.read_private("custody", "farm-mill", "item-0", "Mill").has_value());
}

}  // namespace
}  // namespace veil
