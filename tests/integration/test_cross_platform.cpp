// Cross-platform comparison: the same two-party confidential exchange run
// on all three platform models, asserting the leakage profile each
// platform's Section 5 description predicts.
#include <gtest/gtest.h>

#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        if (a.rfind("put:", 0) != 0) return contracts::InvokeStatus::UnknownAction;
        ctx.put(a.substr(4), common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

struct LeakProfile {
  bool outsider_saw_data = false;
  bool outsider_saw_parties = false;
  bool sequencer_saw_data = false;  // orderer / notary
};

TEST(CrossPlatform, FabricProfile) {
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const char* org : {"A", "B", "C"}) fab.add_org(org);
  fab.create_channel("deal", {"A", "B"});
  fab.install_chaincode("deal", "A", put_contract(),
                        contracts::EndorsementPolicy::require("A"));
  const auto r = fab.submit("deal", "A", "cc", "put:price", to_bytes("1M"));
  ASSERT_TRUE(r.committed);

  LeakProfile p;
  p.outsider_saw_data = fab.auditor().saw("peer.C", "tx/" + r.tx_id + "/data");
  p.outsider_saw_parties =
      fab.auditor().saw("peer.C", "tx/" + r.tx_id + "/parties");
  p.sequencer_saw_data =
      fab.auditor().saw("orderer-org", "tx/" + r.tx_id + "/data");

  // §5 Fabric: channels shield outsiders, but the (shared) ordering
  // service has full visibility.
  EXPECT_FALSE(p.outsider_saw_data);
  EXPECT_FALSE(p.outsider_saw_parties);
  EXPECT_TRUE(p.sequencer_saw_data);
}

TEST(CrossPlatform, CordaProfile) {
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  corda.add_party("A");
  corda.add_party("B");
  corda.add_party("C");
  corda.add_notary("Notary", /*validating=*/false);
  const auto issued =
      corda.issue("A", "Deal", to_bytes("1M"), {"A"}, "Notary");
  ASSERT_TRUE(issued.success);
  const auto r = corda.transact(
      "A", {corda.vault("A").front().ref},
      {corda::OutputSpec{"Deal", to_bytes("1M"), {"A", "B"}}}, "Notary");
  ASSERT_TRUE(r.success);

  // §5 Corda: peer-to-peer keeps relationships AND data from outsiders;
  // a non-validating notary sees no transaction data either.
  EXPECT_FALSE(corda.auditor().saw("C", "tx/" + r.tx_id + "/data"));
  EXPECT_FALSE(corda.auditor().saw("C", "tx/" + r.tx_id + "/parties"));
  EXPECT_FALSE(corda.auditor().saw("Notary", "tx/" + r.tx_id + "/data"));
}

TEST(CrossPlatform, QuorumProfile) {
  net::SimNetwork net{common::Rng(5)};
  common::Rng rng(6);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (const char* n : {"A", "B", "C"}) quorum.add_node(n);
  const auto r = quorum.submit_private(
      "A", {"B"}, {{"price", to_bytes("1M"), false}});
  ASSERT_TRUE(r.accepted);

  // §5 Quorum: payload hidden from outsiders (hash only), but the
  // participant list is on the public chain for everyone.
  EXPECT_FALSE(quorum.auditor().saw("C", "tx/" + r.tx_id + "/data"));
  EXPECT_TRUE(quorum.auditor().saw("C", "tx/" + r.tx_id + "/parties"));
}

TEST(CrossPlatform, QuorumIsTheOnlyOneLeakingParticipants) {
  // The discriminating comparison the paper draws: run the same exchange
  // everywhere; only Quorum reveals who-interacts-with-whom network-wide.
  // (Asserted individually above; this test cross-checks the observer
  // sets directly.)
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (const char* n : {"A", "B", "C", "D"}) quorum.add_node(n);
  const auto r =
      quorum.submit_private("A", {"B"}, {{"k", to_bytes("v"), false}});
  const auto observers =
      quorum.auditor().observers_of("tx/" + r.tx_id + "/parties");
  // All four nodes observed the party list.
  EXPECT_EQ(observers.size(), 4u);
}

TEST(CrossPlatform, DataObserverSetsMatchDesign) {
  // Fabric: data observers = channel members + orderer.
  net::SimNetwork net{common::Rng(9)};
  common::Rng rng(10);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const char* org : {"A", "B", "C"}) fab.add_org(org);
  fab.create_channel("deal", {"A", "B"});
  fab.install_chaincode("deal", "A", put_contract(),
                        contracts::EndorsementPolicy::require("A"));
  const auto r = fab.submit("deal", "A", "cc", "put:k", to_bytes("v"));
  ASSERT_TRUE(r.committed);
  const auto observers =
      fab.auditor().observers_of("tx/" + r.tx_id + "/data");
  EXPECT_TRUE(observers.contains("peer.A"));
  EXPECT_TRUE(observers.contains("peer.B"));
  EXPECT_TRUE(observers.contains("orderer-org"));
  EXPECT_FALSE(observers.contains("peer.C"));
}

}  // namespace
}  // namespace veil
