// Commit-path batching integration: the pipelined submit paths and the
// batched RLC verification must be BIT-IDENTICAL to the serial/per-item
// paths — same receipts, same state digests — and every Byzantine
// attack the Detect tier convicts must still be convicted with batching
// on (the bisection fallback makes convictions exact).
#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::Rng;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> kv_chaincode() {
  return std::make_shared<contracts::FunctionContract>(
      "kv", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  common::Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

// Fresh Fabric network with fixed seeds, so two rigs configured the same
// way replay the same transcript.
struct FabricRig {
  net::SimNetwork net;
  Rng rng;
  fabric::FabricNetwork fab;

  explicit FabricRig(fabric::FabricConfig config = {})
      : net(Rng(7)), rng(8), fab(net, crypto::Group::test_group(), rng,
                                 config) {
    for (const char* org : {"OrgA", "OrgB"}) fab.add_org(org);
    fab.create_channel("ch", {"OrgA", "OrgB"});
    fab.install_chaincode("ch", "OrgA", kv_chaincode(),
                          contracts::EndorsementPolicy::require("OrgA"));
    fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Validate);
  }
};

std::vector<fabric::FabricNetwork::SubmitRequest> fabric_wave(std::size_t n) {
  std::vector<fabric::FabricNetwork::SubmitRequest> wave;
  for (std::size_t i = 0; i < n; ++i) {
    wave.push_back({"ch", "OrgB", "kv", "put:k" + std::to_string(i),
                    to_bytes("v" + std::to_string(i)), {}, nullptr});
  }
  return wave;
}

TEST(CommitPipeline, FabricPipelinedMatchesSerialState) {
  FabricRig serial;
  FabricRig piped;
  const auto wave = fabric_wave(12);

  std::size_t serial_committed = 0;
  for (const auto& r : wave) {
    if (serial.fab.submit(r.channel, r.client_org, r.chaincode, r.action,
                          r.args).committed) {
      ++serial_committed;
    }
  }
  const auto receipts = piped.fab.submit_many(wave, /*pipeline_depth=*/8);
  std::size_t piped_committed = 0;
  for (const auto& r : receipts) piped_committed += r.committed ? 1 : 0;

  EXPECT_EQ(serial_committed, wave.size());
  EXPECT_EQ(piped_committed, wave.size());
  // Same transactions in the same order: the replicas end bit-identical
  // (block boundaries may differ — submit() flushes per call).
  EXPECT_EQ(serial.fab.state("ch", "OrgA").digest(),
            piped.fab.state("ch", "OrgA").digest());
  EXPECT_EQ(piped.fab.state("ch", "OrgA").digest(),
            piped.fab.state("ch", "OrgB").digest());
  // The pipeline actually exercised the new machinery.
  EXPECT_GT(piped.fab.mempool().stats().token_hits, 0u);
  EXPECT_GT(piped.fab.batch_verify_stats().items, 0u);
}

TEST(CommitPipeline, FabricPipelineDeterministicAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    common::ThreadPool::set_global_threads(threads);
    FabricRig rig;
    const auto receipts = rig.fab.submit_many(fabric_wave(16), 8);
    common::ThreadPool::set_global_threads(1);
    std::vector<std::string> ids;
    for (const auto& r : receipts) {
      EXPECT_TRUE(r.committed) << r.reason;
      ids.push_back(r.tx_id);
    }
    return std::make_pair(ids, rig.fab.state("ch", "OrgA").digest());
  };
  const auto one = run(1);
  const auto eight = run(8);
  EXPECT_EQ(one.first, eight.first);    // same tx ids, same order
  EXPECT_EQ(one.second, eight.second);  // same final state
}

TEST(CommitPipeline, FabricBatchVerifyOffIsBitIdentical) {
  fabric::FabricConfig off_config;
  off_config.batch_verify = false;
  FabricRig batched;
  FabricRig per_item(off_config);
  const auto wave = fabric_wave(16);

  const auto rb = batched.fab.submit_many(wave, 8);
  const auto rp = per_item.fab.submit_many(wave, 8);
  ASSERT_EQ(rb.size(), rp.size());
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb[i].committed, rp[i].committed);
    EXPECT_EQ(rb[i].tx_id, rp[i].tx_id);
  }
  EXPECT_EQ(batched.fab.state("ch", "OrgA").digest(),
            per_item.fab.state("ch", "OrgA").digest());
  EXPECT_GT(batched.fab.batch_verify_stats().items, 0u);
  EXPECT_EQ(per_item.fab.batch_verify_stats().items, 0u);
}

TEST(CommitPipeline, FabricOrdererTamperingConvictedWithBatchingOn) {
  FabricRig rig;
  rig.fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Detect);
  rig.fab.set_byzantine_orderer(true);
  const auto receipts = rig.fab.submit_many(fabric_wave(6), 8);
  for (const auto& r : receipts) EXPECT_FALSE(r.committed);
  // The batch rejects, bisection pins the invalid endorsements, and the
  // conviction is exactly the one the serial path produces.
  ASSERT_GE(rig.fab.evidence().count(), 1u);
  EXPECT_EQ(rig.fab.evidence().entries().front().kind,
            audit::Misbehavior::OrdererTampering);
  EXPECT_TRUE(rig.net.is_quarantined(rig.fab.orderer_operator("ch")));
  EXPECT_EQ(rig.fab.state("ch", "OrgA").digest(),
            rig.fab.state("ch", "OrgB").digest());
}

TEST(CommitPipeline, FabricEndorserEquivocationConvictedWithBatchingOn) {
  FabricRig rig;
  rig.fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Detect);
  rig.fab.set_byzantine_endorser("OrgA");
  // The same proposal twice in one wave: each endorsement is validly
  // signed (the batch passes), but the Detect cross-check still sees the
  // conflicting write-sets.
  const fabric::FabricNetwork::SubmitRequest proposal{
      "ch", "OrgB", "kv", "put:deal", to_bytes("100"), {}, nullptr};
  std::vector<fabric::FabricNetwork::SubmitRequest> wave{proposal, proposal};
  rig.fab.submit_many(wave, 8);
  ASSERT_GE(rig.fab.evidence().count(), 1u);
  EXPECT_EQ(rig.fab.evidence().entries().front().kind,
            audit::Misbehavior::EndorserEquivocation);
  EXPECT_TRUE(rig.net.is_quarantined("peer.OrgA"));
}

// ---- Quorum ----------------------------------------------------------------

struct QuorumRig {
  net::SimNetwork net;
  Rng rng;
  quorum::QuorumNetwork quorum;

  explicit QuorumRig(std::uint64_t block_size = 4)
      : net(Rng(27)), rng(28), quorum(net, crypto::Group::test_group(), rng,
                                      block_size) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);
    quorum.set_verify_commits(true);
  }
};

std::vector<quorum::QuorumNetwork::PrivateSubmission> quorum_wave(
    std::size_t n) {
  std::vector<quorum::QuorumNetwork::PrivateSubmission> wave;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string key = "asset/a" + std::to_string(i) + "/owner";
    wave.push_back({{"NodeB"},
                    {ledger::KvWrite{key, to_bytes("NodeB")}},
                    to_bytes("transfer " + std::to_string(i))});
  }
  return wave;
}

TEST(CommitPipeline, QuorumBatchedCommitVerificationMatchesPerItem) {
  QuorumRig batched;
  QuorumRig per_item;
  per_item.quorum.set_batch_verify(false);
  const auto wave = quorum_wave(8);

  const auto rb = batched.quorum.submit_private_many("NodeA", wave, 8);
  const auto rp = per_item.quorum.submit_private_many("NodeA", wave, 8);
  batched.quorum.seal_block();
  per_item.quorum.seal_block();
  ASSERT_EQ(rb.size(), rp.size());
  for (std::size_t i = 0; i < rb.size(); ++i) {
    EXPECT_TRUE(rb[i].accepted) << rb[i].reason;
    EXPECT_EQ(rb[i].accepted, rp[i].accepted);
    EXPECT_EQ(rb[i].tx_id, rp[i].tx_id);
  }
  EXPECT_EQ(batched.quorum.public_state("NodeA").digest(),
            per_item.quorum.public_state("NodeA").digest());
  EXPECT_EQ(batched.quorum.public_state("NodeA").digest(),
            batched.quorum.public_state("NodeC").digest());
  EXPECT_GT(batched.quorum.batch_verify_stats().items, 0u);
  EXPECT_EQ(per_item.quorum.batch_verify_stats().items, 0u);
}

TEST(CommitPipeline, QuorumReplayStillDetectedWithVerifiedBatching) {
  QuorumRig rig(/*block_size=*/1);
  rig.quorum.enable_detection();
  const auto tx1 = rig.quorum.submit_private(
      "NodeA", {"NodeB"},
      {{"asset/bond-7/owner", to_bytes("NodeB"), false}});
  ASSERT_TRUE(tx1.accepted) << tx1.reason;
  const auto replay = rig.quorum.replay_private("NodeB", tx1.tx_id, {"NodeC"});
  ASSERT_TRUE(replay.accepted) << replay.reason;
  rig.quorum.sync();
  ASSERT_GE(rig.quorum.evidence().count(), 1u);
  EXPECT_EQ(rig.quorum.evidence().entries().front().kind,
            audit::Misbehavior::PrivateReplay);
  EXPECT_TRUE(rig.net.is_quarantined("NodeB"));
}

TEST(CommitPipeline, QuorumMempoolIsVolatileCommittedBlocksAreNot) {
  QuorumRig rig(/*block_size=*/4);
  // Seal one full block, then leave a second wave pending: its tokens
  // are resident in the pool.
  const auto sealed = rig.quorum.submit_private_many("NodeA", quorum_wave(4),
                                                     4);
  for (const auto& r : sealed) ASSERT_TRUE(r.accepted) << r.reason;
  rig.quorum.seal_block();
  const auto committed_digest = rig.quorum.public_state("NodeA").digest();

  std::vector<quorum::QuorumNetwork::PrivateSubmission> pending_wave{
      {{"NodeB"}, {ledger::KvWrite{"asset/p/owner", to_bytes("NodeB")}},
       to_bytes("pending")}};
  rig.quorum.submit_private_many("NodeA", pending_wave, 1);
  EXPECT_GT(rig.quorum.mempool().size(), 0u);

  // Crash-stop: the pool is volatile and never WAL-logged, so every
  // token is gone; the committed block is durable and untouched.
  rig.net.crash("NodeB");
  EXPECT_EQ(rig.quorum.mempool().size(), 0u);
  rig.net.restart("NodeB");
  EXPECT_EQ(rig.quorum.public_state("NodeB").digest(), committed_digest);
  EXPECT_EQ(rig.quorum.public_state("NodeA").digest(), committed_digest);

  // The commit path still works after the wipe — transactions just go
  // back through full verification (token misses, not failures).
  const auto after = rig.quorum.submit_private_many(
      "NodeA", quorum_wave(4), 4);
  for (const auto& r : after) {
    // First four ids collide with the already-committed transfers only if
    // payloads matched; either way the calls must not crash and sealing
    // must keep replicas identical.
    (void)r;
  }
  rig.quorum.seal_block();
  EXPECT_EQ(rig.quorum.public_state("NodeA").digest(),
            rig.quorum.public_state("NodeC").digest());
}

// ---- Corda -----------------------------------------------------------------

struct CordaRig {
  net::SimNetwork net;
  Rng rng;
  corda::CordaNetwork corda;

  CordaRig() : net(Rng(17)), rng(18), corda(net, crypto::Group::test_group(),
                                            rng) {
    corda.add_party("Alice");
    corda.add_party("Bob");
    corda.add_party("Carol");
    corda.add_notary("Notary", /*validating=*/false);
  }

  corda::StateRef issue_cash(const std::string& owner,
                             const std::string& amount) {
    const auto r = corda.issue(owner, "Cash", to_bytes(amount), {owner},
                               "Notary");
    EXPECT_TRUE(r.success) << r.reason;
    return corda::StateRef{r.tx_id, 1};
  }
};

TEST(CommitPipeline, CordaWavePipelineCommitsDisjointFlows) {
  CordaRig rig;
  std::vector<corda::CordaNetwork::TransactRequest> wave;
  for (int i = 0; i < 4; ++i) {
    const auto ref = rig.issue_cash("Alice", std::to_string(10 + i));
    wave.push_back({"Alice",
                    {ref},
                    {corda::OutputSpec{"Cash", to_bytes(std::to_string(10 + i)),
                                       {"Bob"}}},
                    "Notary",
                    false,
                    {}});
  }
  const auto results = rig.corda.transact_many(wave, /*pipeline_depth=*/4);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_TRUE(r.success) << r.reason;
  EXPECT_EQ(rig.corda.vault("Bob").size(), 4u);
  EXPECT_TRUE(rig.corda.vault("Alice").empty());
}

TEST(CommitPipeline, CordaWaveInputConflictArbitratedByNotary) {
  CordaRig rig;
  const auto ref = rig.issue_cash("Alice", "50");
  // Two flows in one wave spend the same state: the notary consumes it
  // for exactly one of them, the other gets a refusal — the same outcome
  // two concurrent submitters would see.
  std::vector<corda::CordaNetwork::TransactRequest> wave{
      {"Alice", {ref}, {corda::OutputSpec{"Cash", to_bytes("50"), {"Bob"}}},
       "Notary", false, {}},
      {"Alice", {ref}, {corda::OutputSpec{"Cash", to_bytes("50"), {"Carol"}}},
       "Notary", false, {}}};
  const auto results = rig.corda.transact_many(wave, 2);
  ASSERT_EQ(results.size(), 2u);
  const int successes = (results[0].success ? 1 : 0) +
                        (results[1].success ? 1 : 0);
  EXPECT_EQ(successes, 1);
  EXPECT_FALSE(results[0].success && results[1].success);
  EXPECT_EQ(rig.corda.vault("Bob").size() + rig.corda.vault("Carol").size(),
            1u);
}

TEST(CommitPipeline, CordaBackchainBatchedValidateOnce) {
  CordaRig rig;
  // Build a four-deep backchain: issue, then hop the state around.
  const auto issued = rig.issue_cash("Alice", "99");
  auto hop = [&](const std::string& from, const std::string& to) {
    const auto ref = rig.corda.vault(from).back().ref;
    const auto r = rig.corda.transact(
        from, {ref}, {corda::OutputSpec{"Cash", to_bytes("99"), {to}}},
        "Notary");
    ASSERT_TRUE(r.success) << r.reason;
  };
  hop("Alice", "Bob");
  hop("Bob", "Alice");
  hop("Alice", "Carol");

  const auto carol_ref = rig.corda.vault("Carol").front().ref;
  const auto first = rig.corda.resolve_backchain("Carol", carol_ref);
  ASSERT_TRUE(first.valid) << first.reason;
  EXPECT_EQ(first.depth, 4u);
  EXPECT_GT(rig.corda.verified_ancestor_count(), 0u);
  const std::uint64_t items_after_first =
      rig.corda.batch_verify_stats().items;
  EXPECT_GT(items_after_first, 0u);

  // Second resolution of the same chain: every ancestor is already in
  // the verified set, so no new crypto work happens (validate-once).
  const auto second = rig.corda.resolve_backchain("Bob", carol_ref);
  ASSERT_TRUE(second.valid) << second.reason;
  EXPECT_EQ(second.tx_ids, first.tx_ids);
  EXPECT_EQ(rig.corda.batch_verify_stats().items, items_after_first);

  // Per-item path agrees with the batched one on a fresh, identically
  // seeded network.
  CordaRig per_item;
  per_item.corda.set_batch_verify(false);
  const auto issued2 = per_item.issue_cash("Alice", "99");
  (void)issued;
  (void)issued2;
  auto hop2 = [&](const std::string& from, const std::string& to) {
    const auto ref = per_item.corda.vault(from).back().ref;
    const auto r = per_item.corda.transact(
        from, {ref}, {corda::OutputSpec{"Cash", to_bytes("99"), {to}}},
        "Notary");
    ASSERT_TRUE(r.success) << r.reason;
  };
  hop2("Alice", "Bob");
  hop2("Bob", "Alice");
  hop2("Alice", "Carol");
  const auto reference = per_item.corda.resolve_backchain(
      "Carol", per_item.corda.vault("Carol").front().ref);
  ASSERT_TRUE(reference.valid) << reference.reason;
  EXPECT_EQ(reference.depth, first.depth);
  EXPECT_EQ(reference.tx_ids, first.tx_ids);
}

}  // namespace
}  // namespace veil
