// Overload tier end-to-end: open-loop load pushed past saturation must
// degrade gracefully — admission sheds and TTL expiry bound the latency
// of admitted work, queues stay bounded, replicas stay bit-identical —
// and the overload machinery must compose with the chaos and Byzantine
// tiers rather than fight them.
#include <gtest/gtest.h>

#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"
#include "workload/openloop.hpp"

namespace veil {
namespace {

using common::Rng;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> kv_chaincode() {
  return std::make_shared<contracts::FunctionContract>(
      "kv", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  common::Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

struct FabricRig {
  net::SimNetwork net;
  Rng rng;
  fabric::FabricNetwork fab;

  explicit FabricRig(fabric::FabricConfig config = {})
      : net(Rng(7)), rng(8), fab(net, crypto::Group::test_group(), rng,
                                 config) {
    for (const char* org : {"OrgA", "OrgB"}) fab.add_org(org);
    fab.create_channel("ch", {"OrgA", "OrgB"});
    fab.install_chaincode("ch", "OrgA", kv_chaincode(),
                          contracts::EndorsementPolicy::require("OrgA"));
    fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Validate);
  }

  /// Advance the simulated clock to `at` (no-op if already past it).
  void advance_to(common::SimTime at) {
    net.schedule(at, [] {});
    net.run();
  }
};

fabric::FabricConfig overload_config() {
  fabric::FabricConfig config;
  config.admission_control = true;
  config.admission.target_delay_us = 2'000;
  config.admission.interval_us = 10'000;
  config.default_ttl_us = 40'000;
  config.mempool.capacity = 64;
  config.circuit_breaker = true;
  return config;
}

TEST(OverloadE2E, FabricOpenLoopPastSaturationDegradesGracefully) {
  FabricRig rig(overload_config());
  workload::OpenLoopConfig load;
  load.offered_per_s = 500'000.0;  // far past saturation
  load.arrivals = 120;
  load.parties = 2;
  load.ttl_us = 40'000;
  load.start_us = 1'000;
  const auto plan = workload::OpenLoopGenerator(load, 5).generate();

  std::size_t committed = 0, refused = 0;
  workload::LatencyRecorder latency;
  for (const workload::Arrival& a : plan) {
    rig.advance_to(a.at);
    std::vector<fabric::FabricNetwork::SubmitRequest> one{
        {"ch", "OrgB", "kv", "put:k" + std::to_string(a.seq),
         to_bytes("v" + std::to_string(a.seq)), {}, nullptr, a.at,
         a.deadline_us}};
    const auto receipts = rig.fab.submit_many(one, 1);
    ASSERT_EQ(receipts.size(), 1u);
    if (receipts[0].committed) {
      ++committed;
      latency.record(rig.net.clock().now() - a.at);
    } else {
      ++refused;
    }
  }

  // Graceful degradation, not collapse: real goodput survives, the
  // overflow is refused through the shed/expiry machinery (visible in
  // the stats), and nothing silently vanishes.
  EXPECT_GE(committed, 5u);
  EXPECT_GE(refused, 1u);
  const auto& stats = rig.net.stats();
  EXPECT_GE(stats.shed_admission + stats.expired_endorse +
                stats.expired_order + stats.expired_validate,
            1u);
  EXPECT_EQ(committed + refused, plan.size());

  // Admitted work has bounded latency: the TTL caps how stale anything
  // that commits can be (deadline + post-seal delivery slack).
  EXPECT_LT(latency.max(), 140'000u);

  // Memory stays flat: the mempool never exceeds its configured bound
  // (plus at most the in-flight pinned entry).
  EXPECT_LE(rig.fab.mempool().size(),
            overload_config().mempool.capacity + 1);

  // Both replicas agree bit-for-bit on what survived.
  EXPECT_EQ(rig.fab.state("ch", "OrgA").digest(),
            rig.fab.state("ch", "OrgB").digest());
}

TEST(OverloadE2E, FabricOpenLoopReplayIsBitIdentical) {
  workload::OpenLoopConfig load;
  load.offered_per_s = 500'000.0;
  load.arrivals = 60;
  load.ttl_us = 40'000;
  load.start_us = 1'000;
  const auto plan = workload::OpenLoopGenerator(load, 9).generate();

  const auto run = [&plan] {
    FabricRig rig(overload_config());
    std::vector<std::pair<bool, std::string>> receipts;
    for (const workload::Arrival& a : plan) {
      rig.advance_to(a.at);
      std::vector<fabric::FabricNetwork::SubmitRequest> one{
          {"ch", "OrgB", "kv", "put:k" + std::to_string(a.seq),
           to_bytes("v" + std::to_string(a.seq)), {}, nullptr, a.at,
           a.deadline_us}};
      const auto r = rig.fab.submit_many(one, 1);
      receipts.emplace_back(r[0].committed, r[0].tx_id);
    }
    return std::make_pair(receipts, rig.fab.state("ch", "OrgA").digest());
  };
  const auto first = run();
  const auto second = run();
  // Every shed/expiry decision replays identically: same receipts in the
  // same order, same final state digest.
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(OverloadE2E, FabricChaosLossWithOverloadTierConverges) {
  fabric::FabricConfig config = overload_config();
  config.admission_control = false;    // chaos, not load, is the subject
  config.default_ttl_us = 10'000'000;  // generous: loss retries take time
  FabricRig rig(config);
  rig.net.set_inbox_capacity(16);
  rig.net.set_drop_probability(0.2);

  std::vector<fabric::FabricNetwork::SubmitRequest> wave;
  for (std::size_t i = 0; i < 12; ++i) {
    wave.push_back({"ch", "OrgB", "kv", "put:c" + std::to_string(i),
                    to_bytes("v" + std::to_string(i)), {}, nullptr});
  }
  rig.fab.submit_many(wave, 4);
  EXPECT_GT(rig.net.stats().messages_dropped, 0u);

  // Heal the network and let the delivery service close any gaps: the
  // overload machinery must not have wedged convergence.
  rig.net.set_drop_probability(0.0);
  rig.fab.resync("ch");
  EXPECT_EQ(rig.fab.state("ch", "OrgA").digest(),
            rig.fab.state("ch", "OrgB").digest());
}

TEST(OverloadE2E, FabricByzantineOrdererConvictedWithOverloadTierOn) {
  fabric::FabricConfig config = overload_config();
  config.admission_control = false;
  config.default_ttl_us = 10'000'000;
  FabricRig rig(config);
  rig.net.set_inbox_capacity(64);
  rig.fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Detect);
  rig.fab.set_byzantine_orderer(true);

  std::vector<fabric::FabricNetwork::SubmitRequest> wave;
  for (std::size_t i = 0; i < 6; ++i) {
    wave.push_back({"ch", "OrgB", "kv", "put:b" + std::to_string(i),
                    to_bytes("v" + std::to_string(i)), {}, nullptr});
  }
  const auto receipts = rig.fab.submit_many(wave, 4);
  for (const auto& r : receipts) EXPECT_FALSE(r.committed);
  ASSERT_GE(rig.fab.evidence().count(), 1u);
  EXPECT_EQ(rig.fab.evidence().entries().front().kind,
            audit::Misbehavior::OrdererTampering);
  EXPECT_TRUE(rig.net.is_quarantined(rig.fab.orderer_operator("ch")));
  EXPECT_EQ(rig.fab.state("ch", "OrgA").digest(),
            rig.fab.state("ch", "OrgB").digest());
}

// ---- Quorum ----------------------------------------------------------------

struct QuorumRig {
  net::SimNetwork net;
  Rng rng;
  quorum::QuorumNetwork quorum;

  explicit QuorumRig(std::uint64_t block_size = 4)
      : net(Rng(27)), rng(28), quorum(net, crypto::Group::test_group(), rng,
                                      block_size) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);
    quorum.set_verify_commits(true);
  }
};

TEST(OverloadE2E, QuorumBoundedPendingRefusesBusyAndConverges) {
  QuorumRig rig(/*block_size=*/4);
  rig.quorum.set_pending_capacity(2);

  std::vector<quorum::TxResult> results;
  for (std::size_t i = 0; i < 5; ++i) {
    results.push_back(rig.quorum.submit_private(
        "NodeA", {"NodeB"},
        {{"asset/q" + std::to_string(i) + "/owner", to_bytes("NodeB")}}));
  }
  // Capacity 2 below block size 4: the queue fills, never auto-seals,
  // and every further submission is refused busy — not silently queued.
  EXPECT_TRUE(results[0].accepted) << results[0].reason;
  EXPECT_TRUE(results[1].accepted) << results[1].reason;
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_FALSE(results[i].accepted);
    EXPECT_NE(results[i].reason.find("busy"), std::string::npos)
        << results[i].reason;
  }
  EXPECT_EQ(rig.net.stats().busy_rejected, 3u);
  EXPECT_EQ(rig.quorum.pending_depth(), 2u);

  // The accepted work still commits and replicas agree.
  rig.quorum.seal_block();
  EXPECT_EQ(rig.quorum.pending_depth(), 0u);
  EXPECT_EQ(rig.quorum.public_state("NodeA").digest(),
            rig.quorum.public_state("NodeC").digest());
}

TEST(OverloadE2E, QuorumTtlExpiresStaleWorkAtSealing) {
  QuorumRig rig(/*block_size=*/4);
  rig.quorum.set_default_ttl(50'000);

  // Three submissions queue but do not fill a block...
  for (std::size_t i = 0; i < 3; ++i) {
    const auto r = rig.quorum.submit_private(
        "NodeA", {"NodeB"},
        {{"asset/t" + std::to_string(i) + "/owner", to_bytes("NodeB")}});
    ASSERT_TRUE(r.accepted) << r.reason;
  }
  // ...then the world stalls past their deadline.
  rig.net.schedule(rig.net.clock().now() + 200'000, [] {});
  rig.net.run();

  // A fresh fourth submission completes the block; sealing drops the
  // three expired transactions at the ordering stage and commits only
  // the live one.
  const auto fresh = rig.quorum.submit_private(
      "NodeA", {"NodeB"}, {{"asset/fresh/owner", to_bytes("NodeB")}});
  ASSERT_TRUE(fresh.accepted) << fresh.reason;
  EXPECT_EQ(rig.net.stats().expired_order, 3u);
  EXPECT_EQ(rig.quorum.pending_depth(), 0u);
  EXPECT_EQ(rig.quorum.public_state("NodeA").digest(),
            rig.quorum.public_state("NodeC").digest());
}

// ---- Corda -----------------------------------------------------------------

TEST(OverloadE2E, CordaExpiredFlowRefusedBeforeSignatureRound) {
  net::SimNetwork net{Rng(17)};
  Rng rng(18);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  corda.add_party("Alice");
  corda.add_party("Bob");
  corda.add_notary("Notary", /*validating=*/false);
  const auto issued = corda.issue("Alice", "Cash", to_bytes("50"), {"Alice"},
                                  "Notary");
  ASSERT_TRUE(issued.success) << issued.reason;

  // A deadline already in the past dies before any signature is
  // collected; a live deadline sails through.
  std::vector<corda::CordaNetwork::TransactRequest> wave{
      {"Alice",
       {corda::StateRef{issued.tx_id, 1}},
       {corda::OutputSpec{"Cash", to_bytes("50"), {"Bob"}}},
       "Notary",
       false,
       {},
       /*deadline_us=*/1}};
  const auto expired = corda.transact_many(wave, 1);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_FALSE(expired[0].success);
  EXPECT_NE(expired[0].reason.find("expired"), std::string::npos)
      << expired[0].reason;
  EXPECT_EQ(net.stats().expired_endorse, 1u);

  wave[0].deadline_us = net.clock().now() + 10'000'000;
  const auto live = corda.transact_many(wave, 1);
  ASSERT_EQ(live.size(), 1u);
  EXPECT_TRUE(live[0].success) << live[0].reason;
  EXPECT_EQ(corda.vault("Bob").size(), 1u);
}

}  // namespace
}  // namespace veil
