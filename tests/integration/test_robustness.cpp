// Decode robustness: every wire format must reject malformed input with
// a veil error (or parse it into a consistent object) — never crash,
// never read out of bounds. Random buffers and bit-flipped valid
// encodings are both exercised.
#include <gtest/gtest.h>

#include "audit/evidence.hpp"
#include "common/error.hpp"
#include "crypto/elgamal.hpp"
#include "crypto/merkle.hpp"
#include "crypto/zkp.hpp"
#include "ledger/admission.hpp"
#include "ledger/block.hpp"
#include "ledger/mempool.hpp"
#include "ledger/snapshot.hpp"
#include "ledger/state.hpp"
#include "ledger/transfer.hpp"
#include "net/fault.hpp"
#include "net/overload.hpp"
#include "net/reliable.hpp"
#include "pki/certificate.hpp"
#include "platforms/quorum/quorum.hpp"
#include "tee/attestation.hpp"

namespace veil {
namespace {

using common::Bytes;

// Try to decode arbitrary bytes with `decode`; acceptable outcomes are a
// veil::common::Error or a successfully parsed object.
template <typename Decoder>
void expect_no_crash(const Bytes& data, Decoder decode) {
  try {
    decode(data);
  } catch (const common::Error&) {
    // rejected cleanly
  }
}

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBuffers) {
  common::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Bytes junk = rng.next_bytes(rng.next_below(256));
    expect_no_crash(junk, [](const Bytes& d) {
      return ledger::Transaction::decode(d);
    });
    expect_no_crash(junk, [](const Bytes& d) { return ledger::Block::decode(d); });
    expect_no_crash(junk,
                    [](const Bytes& d) { return pki::Certificate::decode(d); });
    expect_no_crash(junk,
                    [](const Bytes& d) { return crypto::TearOff::decode(d); });
    expect_no_crash(junk, [](const Bytes& d) {
      return crypto::ElGamalCiphertext::decode(d);
    });
    expect_no_crash(junk,
                    [](const Bytes& d) { return crypto::Signature::decode(d); });
    expect_no_crash(junk, [](const Bytes& d) {
      return crypto::RangeProof::decode(d, 8);
    });
    expect_no_crash(junk, [](const Bytes& d) {
      return quorum::PrivateEnvelope::decode(d);
    });
    expect_no_crash(junk, [](const Bytes& d) {
      return tee::AttestationQuote::decode(d);
    });
    expect_no_crash(junk, [](const Bytes& d) {
      return net::ReliableChannel::Envelope::decode(d);
    });
    expect_no_crash(junk,
                    [](const Bytes& d) { return ledger::WorldState::decode(d); });
    expect_no_crash(junk,
                    [](const Bytes& d) { return audit::Evidence::decode(d); });
    expect_no_crash(junk, [](const Bytes& d) {
      return net::ByzantineEvent::decode(d);
    });
    expect_no_crash(junk, [](const Bytes& d) { return net::Busy::decode(d); });
    expect_no_crash(junk,
                    [](const Bytes& d) { return ledger::ShedRecord::decode(d); });
  }
}

TEST_P(DecodeFuzz, BitFlippedValidEncodings) {
  common::Rng rng(GetParam() ^ 0xabcdef);

  ledger::Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = "act";
  tx.participants = {"A", "B"};
  tx.writes = {{"k", common::to_bytes("v"), false}};
  tx.payload = rng.next_bytes(64);
  const Bytes tx_enc = tx.encode();

  const ledger::Block block = ledger::Block::make(
      0, crypto::sha256(std::string_view("veil.chain.genesis")), {tx}, 1);
  const Bytes block_enc = block.encode();

  for (int i = 0; i < 100; ++i) {
    Bytes flipped = tx_enc;
    flipped[rng.next_below(flipped.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped, [](const Bytes& d) {
      return ledger::Transaction::decode(d);
    });

    Bytes flipped_block = block_enc;
    flipped_block[rng.next_below(flipped_block.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped_block,
                    [](const Bytes& d) { return ledger::Block::decode(d); });
  }
}

TEST_P(DecodeFuzz, BitFlippedFaultToleranceEncodings) {
  // Valid encodings of the wire formats the robustness PR added or
  // hardened: Merkle tear-off proofs, Quorum private-payload envelopes,
  // TEE attestation quotes, and reliable-channel envelopes.
  common::Rng rng(GetParam() ^ 0xfa017);

  const std::vector<Bytes> leaves = {common::to_bytes("input-ref"),
                                     common::to_bytes("amount:100"),
                                     common::to_bytes("party:A"),
                                     common::to_bytes("party:B")};
  const std::vector<Bytes> salts = {rng.next_bytes(16), rng.next_bytes(16),
                                    rng.next_bytes(16), rng.next_bytes(16)};
  const Bytes tearoff_enc = crypto::TearOff::create(leaves, salts, {0, 2}).encode();

  quorum::PrivateEnvelope env;
  env.tx_id = "tx-fuzz";
  env.sender = "NodeA";
  env.sealed = rng.next_bytes(96);
  const Bytes env_enc = env.encode();

  tee::Manufacturer manufacturer(crypto::Group::test_group(), rng);
  tee::Manufacturer::Provision prov = manufacturer.provision("dev-fuzz", 0);
  tee::AttestationQuote quote;
  quote.measurement = crypto::sha256(std::string_view("enclave-code"));
  quote.nonce = rng.next_bytes(16);
  quote.device_cert = prov.device_cert;
  quote.quote_signature = prov.device_key.sign(quote.to_be_signed());
  const Bytes quote_enc = quote.encode();

  for (int i = 0; i < 100; ++i) {
    Bytes flipped_tearoff = tearoff_enc;
    flipped_tearoff[rng.next_below(flipped_tearoff.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped_tearoff,
                    [](const Bytes& d) { return crypto::TearOff::decode(d); });

    Bytes flipped_env = env_enc;
    flipped_env[rng.next_below(flipped_env.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped_env, [](const Bytes& d) {
      return quorum::PrivateEnvelope::decode(d);
    });

    Bytes flipped_quote = quote_enc;
    flipped_quote[rng.next_below(flipped_quote.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped_quote, [](const Bytes& d) {
      return tee::AttestationQuote::decode(d);
    });
  }
}

TEST_P(DecodeFuzz, TruncatedFaultToleranceEncodings) {
  common::Rng rng(GetParam() + 99);
  quorum::PrivateEnvelope env;
  env.tx_id = "tx-trunc";
  env.sender = "NodeB";
  env.sealed = rng.next_bytes(64);
  const Bytes env_enc = env.encode();
  for (std::size_t len = 0; len < env_enc.size(); len += 3) {
    const Bytes truncated(env_enc.begin(),
                          env_enc.begin() + static_cast<std::ptrdiff_t>(len));
    expect_no_crash(truncated, [](const Bytes& d) {
      return quorum::PrivateEnvelope::decode(d);
    });
  }

  const std::vector<Bytes> leaves = {common::to_bytes("a"),
                                     common::to_bytes("b")};
  const Bytes tearoff_enc =
      crypto::TearOff::create(leaves, {Bytes{}, Bytes{}}, {1}).encode();
  for (std::size_t len = 0; len < tearoff_enc.size(); len += 3) {
    const Bytes truncated(
        tearoff_enc.begin(),
        tearoff_enc.begin() + static_cast<std::ptrdiff_t>(len));
    expect_no_crash(truncated,
                    [](const Bytes& d) { return crypto::TearOff::decode(d); });
  }
}

TEST_P(DecodeFuzz, BitFlippedByzantineTierEncodings) {
  // Wire formats the Byzantine tier added: signed evidence records and
  // adversary-plan events. Both cross trust boundaries (evidence is
  // handed to third parties; plans are config), so decode must never
  // crash on hostile bytes.
  common::Rng rng(GetParam() ^ 0xb12a);

  crypto::Group group = crypto::Group::test_group();
  crypto::KeyPair reporter = crypto::KeyPair::generate(group, rng);
  audit::Evidence evidence;
  evidence.kind = audit::Misbehavior::NotaryEquivocation;
  evidence.accused = "Notary";
  evidence.reporter = "Bob";
  evidence.detail = "conflicting consumes";
  evidence.detected_at = 123'456;
  evidence.proof_a = rng.next_bytes(48);
  evidence.proof_b = rng.next_bytes(48);
  evidence.sign(reporter);
  const Bytes evidence_enc = evidence.encode();

  net::ByzantinePlan plan;
  plan.tamper_from(1'000, "mallory", 0.5).replay_from(2'000, "eve", 10'000);
  const Bytes event_enc = plan.ordered_events().front().encode();

  for (int i = 0; i < 100; ++i) {
    Bytes flipped = evidence_enc;
    flipped[rng.next_below(flipped.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped,
                    [](const Bytes& d) { return audit::Evidence::decode(d); });

    Bytes flipped_event = event_enc;
    flipped_event[rng.next_below(flipped_event.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_no_crash(flipped_event, [](const Bytes& d) {
      return net::ByzantineEvent::decode(d);
    });
  }

  // Truncations of both formats.
  for (std::size_t len = 0; len < evidence_enc.size(); len += 5) {
    const Bytes truncated(
        evidence_enc.begin(),
        evidence_enc.begin() + static_cast<std::ptrdiff_t>(len));
    expect_no_crash(truncated,
                    [](const Bytes& d) { return audit::Evidence::decode(d); });
  }
  for (std::size_t len = 0; len < event_enc.size(); ++len) {
    const Bytes truncated(
        event_enc.begin(), event_enc.begin() + static_cast<std::ptrdiff_t>(len));
    expect_no_crash(truncated, [](const Bytes& d) {
      return net::ByzantineEvent::decode(d);
    });
  }

  // An untampered round trip must preserve the signature's validity.
  const audit::Evidence back = audit::Evidence::decode(evidence_enc);
  EXPECT_TRUE(back.verify(group, reporter.public_key()));
  EXPECT_EQ(back.dedupe_key(), evidence.dedupe_key());
}

TEST_P(DecodeFuzz, BitFlippedRecoveryTierEncodings) {
  // Wire formats the recovery tier added: snapshot transfer messages and
  // sealed snapshots. A joiner decodes all of them from peers it does
  // not yet trust, so every one must reject hostile bytes cleanly.
  common::Rng rng(GetParam() ^ 0x5eed);

  ledger::WorldState state;
  for (int i = 0; i < 12; ++i) {
    state.put("k/" + std::to_string(i), rng.next_bytes(24));
  }
  const ledger::Snapshot snap = ledger::Snapshot::make(
      7, crypto::sha256(rng.next_bytes(16)), state, /*chunk_size=*/64);

  const std::vector<Bytes> encodings = {
      ledger::SnapshotRequest{.scope = "ch", .min_height = 9}.encode(),
      ledger::SnapshotOffer{.scope = "ch", .available = true,
                            .header = snap.header()}
          .encode(),
      ledger::ChunkRequest{.scope = "ch", .root = snap.root(), .index = 2}
          .encode(),
      ledger::SnapshotChunk{.scope = "ch", .root = snap.root(), .index = 2,
                            .ok = true, .data = snap.chunk(2)}
          .encode(),
      ledger::RootVote{.scope = "ch", .height = 7, .known = true,
                       .root = snap.root()}
          .encode(),
      snap.header().encode(),
      snap.encode(),
  };
  const auto decoders = [](const Bytes& d, std::size_t which) {
    switch (which) {
      case 0: ledger::SnapshotRequest::decode(d); break;
      case 1: ledger::SnapshotOffer::decode(d); break;
      case 2: ledger::ChunkRequest::decode(d); break;
      case 3: ledger::SnapshotChunk::decode(d); break;
      case 4: ledger::RootVote::decode(d); break;
      case 5: ledger::SnapshotHeader::decode(d); break;
      default: ledger::Snapshot::decode(d); break;
    }
  };

  for (std::size_t which = 0; which < encodings.size(); ++which) {
    const Bytes& enc = encodings[which];
    for (int i = 0; i < 60; ++i) {
      Bytes flipped = enc;
      flipped[rng.next_below(flipped.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      expect_no_crash(flipped,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    for (std::size_t len = 0; len < enc.size(); len += 3) {
      const Bytes truncated(enc.begin(),
                            enc.begin() + static_cast<std::ptrdiff_t>(len));
      expect_no_crash(truncated,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    // Random junk too — geometry fields must not drive allocations.
    expect_no_crash(rng.next_bytes(rng.next_below(200)),
                    [&](const Bytes& d) { decoders(d, which); return 0; });
  }

  // Untampered round trips stay verifiable.
  const ledger::SnapshotHeader header =
      ledger::SnapshotHeader::decode(snap.header().encode());
  EXPECT_TRUE(header.self_consistent());
  EXPECT_EQ(header.root, snap.root());
  const ledger::Snapshot back = ledger::Snapshot::decode(snap.encode());
  EXPECT_EQ(back.root(), snap.root());
}

TEST_P(DecodeFuzz, BitFlippedCommitPathEncodings) {
  // Commit-path records: validation tokens and eviction records. Tokens
  // are consulted on the sealing hot path, so a corrupted token must
  // reject cleanly rather than vouch for an unverified transaction.
  common::Rng rng(GetParam() ^ 0xba7c);

  ledger::Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = "xfer";
  tx.reads = {{"acct/a", 3}, {"acct/b", 0}};
  tx.payload = rng.next_bytes(48);

  ledger::ValidationToken token;
  token.tx_id = tx.id();
  token.body_digest = tx.body_digest();
  token.read_snapshot = tx.reads;
  token.admitted_at = 17;
  token.verified = true;

  const ledger::EvictionRecord record{
      tx.id(), ledger::EvictionRecord::Cause::Invalidated, 23};

  const std::vector<Bytes> encodings = {token.encode(), record.encode()};
  const auto decoders = [](const Bytes& d, std::size_t which) {
    if (which == 0) {
      ledger::ValidationToken::decode(d);
    } else {
      ledger::EvictionRecord::decode(d);
    }
  };

  for (std::size_t which = 0; which < encodings.size(); ++which) {
    const Bytes& enc = encodings[which];
    for (int i = 0; i < 60; ++i) {
      Bytes flipped = enc;
      flipped[rng.next_below(flipped.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      expect_no_crash(flipped,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    for (std::size_t len = 0; len < enc.size(); len += 3) {
      const Bytes truncated(enc.begin(),
                            enc.begin() + static_cast<std::ptrdiff_t>(len));
      expect_no_crash(truncated,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    expect_no_crash(rng.next_bytes(rng.next_below(200)),
                    [&](const Bytes& d) { decoders(d, which); return 0; });
  }

  // Untampered round trips are lossless.
  EXPECT_EQ(ledger::ValidationToken::decode(token.encode()), token);
  EXPECT_EQ(ledger::EvictionRecord::decode(record.encode()), record);
}

TEST_P(DecodeFuzz, BitFlippedOverloadTierEncodings) {
  // Overload-tier wire formats: Busy backpressure notices, TTL'd
  // reliable-channel envelopes, admission shed records, and eviction
  // records carrying the new PinnedSkip cause. Busy notices arrive from
  // saturated (possibly hostile) peers, so a malformed one must reject
  // cleanly rather than steer the sender's retry schedule off a cliff.
  common::Rng rng(GetParam() ^ 0x10ad);
  net::Busy busy;
  busy.topic = "fabric.order";
  busy.retry_after_us = 12'500;
  busy.queue_depth = 9;

  net::ReliableChannel::Envelope envelope;
  envelope.seq = 42;
  envelope.deadline_us = 77'000;
  envelope.payload = rng.next_bytes(48);

  ledger::ShedRecord shed;
  shed.tx_id = "tx-shed";
  shed.priority = ledger::AdmitPriority::Commit;
  shed.cause = ledger::ShedRecord::Cause::QueueDelay;
  shed.queue_delay_us = 8'800;
  shed.at = 64'000;

  const ledger::EvictionRecord pinned{
      "tx-pin", ledger::EvictionRecord::Cause::PinnedSkip, 31};

  const std::vector<Bytes> encodings = {busy.encode(), envelope.encode(),
                                        shed.encode(), pinned.encode()};
  const auto decoders = [](const Bytes& d, std::size_t which) {
    switch (which) {
      case 0: net::Busy::decode(d); break;
      case 1: net::ReliableChannel::Envelope::decode(d); break;
      case 2: ledger::ShedRecord::decode(d); break;
      default: ledger::EvictionRecord::decode(d); break;
    }
  };

  for (std::size_t which = 0; which < encodings.size(); ++which) {
    const Bytes& enc = encodings[which];
    for (int i = 0; i < 60; ++i) {
      Bytes flipped = enc;
      flipped[rng.next_below(flipped.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      expect_no_crash(flipped,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    for (std::size_t len = 0; len < enc.size(); len += 3) {
      const Bytes truncated(enc.begin(),
                            enc.begin() + static_cast<std::ptrdiff_t>(len));
      expect_no_crash(truncated,
                      [&](const Bytes& d) { decoders(d, which); return 0; });
    }
    expect_no_crash(rng.next_bytes(rng.next_below(200)),
                    [&](const Bytes& d) { decoders(d, which); return 0; });
  }

  // Untampered round trips are lossless.
  EXPECT_EQ(net::Busy::decode(busy.encode()), busy);
  EXPECT_EQ(ledger::ShedRecord::decode(shed.encode()), shed);
  EXPECT_EQ(ledger::EvictionRecord::decode(pinned.encode()), pinned);
  const auto env_back =
      net::ReliableChannel::Envelope::decode(envelope.encode());
  EXPECT_EQ(env_back.seq, envelope.seq);
  EXPECT_EQ(env_back.deadline_us, envelope.deadline_us);
  EXPECT_EQ(env_back.payload, envelope.payload);
}

TEST_P(DecodeFuzz, TruncatedValidEncodings) {
  common::Rng rng(GetParam() + 17);
  ledger::Transaction tx;
  tx.channel = "channel-name";
  tx.payload = rng.next_bytes(128);
  const Bytes enc = tx.encode();
  for (std::size_t len = 0; len < enc.size(); len += 7) {
    const Bytes truncated(enc.begin(),
                          enc.begin() + static_cast<std::ptrdiff_t>(len));
    expect_no_crash(truncated, [](const Bytes& d) {
      return ledger::Transaction::decode(d);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Robustness, TamperedBlockDetectedAfterDecode) {
  // A block that decodes fine but was tampered with must fail the
  // header-root check — decode success is not acceptance.
  ledger::Transaction tx;
  tx.channel = "ch";
  tx.action = "a";
  ledger::Block block = ledger::Block::make(
      0, crypto::sha256(std::string_view("veil.chain.genesis")), {tx}, 1);
  Bytes enc = block.encode();
  // Flip a byte inside the transaction body region (near the end).
  enc[enc.size() - 3] ^= 0x40;
  try {
    const ledger::Block decoded = ledger::Block::decode(enc);
    EXPECT_FALSE(decoded.body_matches_header());
  } catch (const common::Error&) {
    SUCCEED();  // rejected at decode, equally fine
  }
}

}  // namespace
}  // namespace veil
