// Chaos suite: the E9 cross-platform trade workload under scripted
// faults. At 20% uniform loss every platform still commits (reliable
// channel), replicas converge to bit-identical state, and the leakage
// auditor proves retransmissions added no new observers. Crash-stopped
// peers recover from their WAL and converge; partitions heal via the
// delivery-service catch-up paths.
#include <gtest/gtest.h>

#include <memory>

#include <cstdio>
#include <cstdlib>

#include "net/factory.hpp"
#include "net/fault.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> trade_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "trade", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("trade/" + a,
                common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

// ---- Fabric ---------------------------------------------------------------

class FabricChaosTest : public ::testing::Test {
 protected:
  FabricChaosTest()
      : net_owner_(net::make_transport(common::Rng(901))),
        net_(*net_owner_),
        rng_(902),
        fab_(net_, crypto::Group::test_group(), rng_) {
    fab_.add_org("OrgA");
    fab_.add_org("OrgB");
    fab_.add_org("OrgC");  // never a channel member: the outsider
    fab_.create_channel("trade", {"OrgA", "OrgB"});
    fab_.install_chaincode("trade", "OrgA", trade_contract(),
                           contracts::EndorsementPolicy::require("OrgA"));
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  fabric::FabricNetwork fab_;
};

TEST_F(FabricChaosTest, WorkloadCommitsAtTwentyPercentLoss) {
  net::FaultPlan plan;
  plan.drop_from(0, 0.2);
  net_.set_fault_plan(plan);

  std::vector<std::string> tx_ids;
  for (int i = 0; i < 10; ++i) {
    const auto r = fab_.submit("trade", "OrgA", "trade",
                               "lot" + std::to_string(i), to_bytes("qty"));
    EXPECT_TRUE(r.committed) << "tx " << i << ": " << r.reason;
    if (r.committed) tx_ids.push_back(r.tx_id);
  }
  ASSERT_FALSE(tx_ids.empty());

  // The reliable channel actually worked for a living.
  EXPECT_GT(net_.stats().retransmits, 0u);
  EXPECT_GT(net_.stats().dropped_random_loss, 0u);

  // Stragglers seek the delivery log, then replicas are bit-identical.
  fab_.resync("trade");
  EXPECT_EQ(fab_.chain("trade", "OrgA").height(),
            fab_.chain("trade", "OrgB").height());
  EXPECT_EQ(fab_.chain("trade", "OrgA").tip_hash(),
            fab_.chain("trade", "OrgB").tip_hash());
  EXPECT_EQ(fab_.state("trade", "OrgA").digest(),
            fab_.state("trade", "OrgB").digest());

  // Retransmissions leaked nothing extra: the outsider observed zero
  // bytes of anything, and each tx's observer set is exactly the
  // channel + orderer.
  EXPECT_FALSE(fab_.auditor().saw_any_form("peer.OrgC", "net/"));
  EXPECT_FALSE(fab_.auditor().saw_any_form("peer.OrgC", "tx/"));
  for (const std::string& tx_id : tx_ids) {
    for (const auto& observer :
         fab_.auditor().observers_of("tx/" + tx_id + "/data")) {
      EXPECT_TRUE(observer == "peer.OrgA" || observer == "peer.OrgB" ||
                  observer == "orderer-org")
          << observer << " saw tx data";
    }
  }
}

TEST_F(FabricChaosTest, CrashedPeerRecoversFromWalAndConverges) {
  ASSERT_TRUE(fab_.submit("trade", "OrgA", "trade", "pre1", to_bytes("v"))
                  .committed);
  ASSERT_TRUE(fab_.submit("trade", "OrgA", "trade", "pre2", to_bytes("v"))
                  .committed);

  // Crash-stop OrgB's peer mid-workload: volatile chain + state are lost.
  net_.crash("peer.OrgB");
  ASSERT_TRUE(fab_.submit("trade", "OrgA", "trade", "during", to_bytes("v"))
                  .committed);
  EXPECT_GT(net_.stats().dropped_crashed, 0u);

  // Restart: WAL replay rebuilds the pre-crash replica, then the
  // delivery log supplies the block it missed while down.
  net_.restart("peer.OrgB");
  EXPECT_EQ(fab_.chain("trade", "OrgB").height(),
            fab_.chain("trade", "OrgA").height());
  EXPECT_EQ(fab_.chain("trade", "OrgB").tip_hash(),
            fab_.chain("trade", "OrgA").tip_hash());
  EXPECT_EQ(fab_.state("trade", "OrgB").digest(),
            fab_.state("trade", "OrgA").digest());

  // And the recovered peer keeps participating.
  const auto r = fab_.submit("trade", "OrgA", "trade", "post", to_bytes("v"));
  EXPECT_TRUE(r.committed) << r.reason;
  EXPECT_EQ(fab_.state("trade", "OrgB").digest(),
            fab_.state("trade", "OrgA").digest());
}

TEST_F(FabricChaosTest, CrashDuringLossRecoversViaFaultPlan) {
  // The fully scripted variant: loss window + crash + restart all driven
  // by the fault plan, reproducible from the network seed alone.
  net::FaultPlan plan;
  plan.drop_from(0, 0.1).crash_at(40'000, "peer.OrgB");
  net_.set_fault_plan(plan);

  for (int i = 0; i < 6; ++i) {
    const auto r = fab_.submit("trade", "OrgA", "trade",
                               "w" + std::to_string(i), to_bytes("v"));
    EXPECT_TRUE(r.committed) << "tx " << i << ": " << r.reason;
  }
  // The crash fired somewhere inside the workload.
  ASSERT_TRUE(net_.crashed("peer.OrgB"));
  net_.restart("peer.OrgB");
  fab_.resync("trade");
  EXPECT_EQ(fab_.chain("trade", "OrgB").height(),
            fab_.chain("trade", "OrgA").height());
  EXPECT_EQ(fab_.state("trade", "OrgB").digest(),
            fab_.state("trade", "OrgA").digest());
}

// ---- Corda ----------------------------------------------------------------

class CordaChaosTest : public ::testing::Test {
 protected:
  CordaChaosTest()
      : net_owner_(net::make_transport(common::Rng(903))),
        net_(*net_owner_),
        rng_(904),
        corda_(net_, crypto::Group::test_group(), rng_) {
    corda_.add_party("A");
    corda_.add_party("B");
    corda_.add_party("C");  // uninvolved
    corda_.add_notary("Notary", /*validating=*/false);
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  corda::CordaNetwork corda_;
};

TEST_F(CordaChaosTest, FlowCompletesAtTwentyPercentLoss) {
  net::FaultPlan plan;
  plan.drop_from(0, 0.2);
  net_.set_fault_plan(plan);

  const auto issued = corda_.issue("A", "Deal", to_bytes("1M"), {"A"}, "Notary");
  ASSERT_TRUE(issued.success) << issued.reason;
  const auto r = corda_.transact(
      "A", {corda_.vault("A").front().ref},
      {corda::OutputSpec{"Deal", to_bytes("1M"), {"A", "B"}}}, "Notary");
  ASSERT_TRUE(r.success) << r.reason;

  // Both participants hold the new state; the loss was absorbed below.
  EXPECT_EQ(corda_.vault("A").size(), 1u);
  EXPECT_EQ(corda_.vault("B").size(), 1u);
  EXPECT_GT(net_.stats().retransmits, 0u);

  // Retransmitted flow sessions still reach only the participants.
  EXPECT_FALSE(corda_.auditor().saw_any_form("C", "net/"));
  EXPECT_FALSE(corda_.auditor().saw("C", "tx/" + r.tx_id + "/data"));
  EXPECT_FALSE(corda_.auditor().saw("Notary", "tx/" + r.tx_id + "/data"));
}

TEST_F(CordaChaosTest, PartitionThenHeal) {
  // B is unreachable: the signature round cannot complete, the flow fails
  // CLOSED and nothing is consumed.
  const auto issued = corda_.issue("A", "Deal", to_bytes("1M"), {"A"}, "Notary");
  ASSERT_TRUE(issued.success);
  const corda::StateRef ref = corda_.vault("A").front().ref;

  net_.set_partitions({{"A", "C", "Notary"}, {"B"}});
  const auto failed = corda_.transact(
      "A", {ref}, {corda::OutputSpec{"Deal", to_bytes("1M"), {"A", "B"}}},
      "Notary");
  EXPECT_FALSE(failed.success);
  EXPECT_EQ(failed.reason, "signature round incomplete: B unreachable");
  EXPECT_EQ(corda_.vault("A").size(), 1u);  // input not consumed
  EXPECT_TRUE(corda_.vault("B").empty());

  // Heal: the same transaction goes through.
  net_.set_partitions({});
  const auto healed = corda_.transact(
      "A", {ref}, {corda::OutputSpec{"Deal", to_bytes("1M"), {"A", "B"}}},
      "Notary");
  EXPECT_TRUE(healed.success) << healed.reason;
  EXPECT_EQ(corda_.vault("B").size(), 1u);
}

TEST_F(CordaChaosTest, CrashedPartyRecoversVaultFromWal) {
  ASSERT_TRUE(
      corda_.issue("A", "Deal", to_bytes("1M"), {"A"}, "Notary").success);
  const auto r = corda_.transact(
      "A", {corda_.vault("A").front().ref},
      {corda::OutputSpec{"Deal", to_bytes("1M"), {"A", "B"}}}, "Notary");
  ASSERT_TRUE(r.success) << r.reason;
  const auto before = corda_.vault("B");
  ASSERT_EQ(before.size(), 1u);

  // Crash-stop B: its volatile vault is gone; the WAL survives.
  net_.crash("B");
  net_.restart("B");
  const auto after = corda_.vault("B");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after.front().ref, before.front().ref);
  EXPECT_EQ(after.front().data, before.front().data);
  EXPECT_EQ(after.front().participants, before.front().participants);

  // The recovered vault is usable: B spends the state it re-learned.
  const auto spend = corda_.transact(
      "B", {after.front().ref},
      {corda::OutputSpec{"Deal", to_bytes("1M"), {"B"}}}, "Notary");
  EXPECT_TRUE(spend.success) << spend.reason;
}

// ---- Quorum ---------------------------------------------------------------

class QuorumChaosTest : public ::testing::Test {
 protected:
  QuorumChaosTest()
      : net_owner_(net::make_transport(common::Rng(905))),
        net_(*net_owner_),
        rng_(906),
        quorum_(net_, crypto::Group::test_group(), rng_, /*block_size=*/1) {
    quorum_.add_node("A");
    quorum_.add_node("B");
    quorum_.add_node("C");
    quorum_.add_node("D");  // never a recipient
  }

  void expect_converged() {
    const auto digest = quorum_.public_state("A").digest();
    for (const char* n : {"B", "C", "D"}) {
      EXPECT_EQ(quorum_.public_chain(n).height(),
                quorum_.public_chain("A").height())
          << n;
      EXPECT_EQ(quorum_.public_state(n).digest(), digest) << n;
    }
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  quorum::QuorumNetwork quorum_;
};

TEST_F(QuorumChaosTest, WorkloadCommitsAtTwentyPercentLoss) {
  net::FaultPlan plan;
  plan.drop_from(0, 0.2);
  net_.set_fault_plan(plan);

  std::vector<std::string> private_ids;
  for (int i = 0; i < 4; ++i) {
    const auto pub = quorum_.submit_public(
        "A", {{"pub" + std::to_string(i), to_bytes("v"), false}});
    EXPECT_TRUE(pub.accepted) << pub.reason;
    const auto priv = quorum_.submit_private(
        "A", {"B"}, {{"deal" + std::to_string(i), to_bytes("1M"), false}},
        to_bytes("terms"));
    EXPECT_TRUE(priv.accepted) << priv.reason;
    if (priv.accepted) private_ids.push_back(priv.tx_id);
  }
  EXPECT_GT(net_.stats().retransmits, 0u);

  quorum_.sync();
  expect_converged();

  // Private payloads reached exactly sender + recipient, loss or not.
  for (const std::string& tx_id : private_ids) {
    EXPECT_TRUE(quorum_.private_payload("A", tx_id).has_value());
    EXPECT_TRUE(quorum_.private_payload("B", tx_id).has_value());
    EXPECT_FALSE(quorum_.private_payload("C", tx_id).has_value());
    EXPECT_FALSE(quorum_.private_payload("D", tx_id).has_value());
    EXPECT_FALSE(quorum_.auditor().saw("C", "tx/" + tx_id + "/data"));
    EXPECT_FALSE(quorum_.auditor().saw("D", "tx/" + tx_id + "/data"));
  }
}

TEST_F(QuorumChaosTest, PartitionThenHeal) {
  // C and D are cut off from block dissemination; the involved pair keeps
  // working, the others fall behind but never diverge.
  net_.set_partitions({{"A", "B"}, {"C", "D"}});
  const auto r = quorum_.submit_private(
      "A", {"B"}, {{"deal", to_bytes("1M"), false}}, to_bytes("terms"));
  ASSERT_TRUE(r.accepted) << r.reason;
  EXPECT_EQ(quorum_.public_chain("A").height(), 1u);
  EXPECT_EQ(quorum_.public_chain("C").height(), 0u);

  // Heal, then the delivery catch-up converges everyone.
  net_.set_partitions({});
  quorum_.sync();
  expect_converged();
  // The healed outsiders still only ever see the payload hash.
  EXPECT_FALSE(quorum_.private_payload("C", r.tx_id).has_value());
  EXPECT_FALSE(quorum_.auditor().saw("C", "tx/" + r.tx_id + "/data"));
}

TEST_F(QuorumChaosTest, CrashedNodeRecoversFromWalAndConverges) {
  ASSERT_TRUE(
      quorum_.submit_public("A", {{"k1", to_bytes("v1"), false}}).accepted);

  net_.crash("C");
  ASSERT_TRUE(
      quorum_.submit_public("A", {{"k2", to_bytes("v2"), false}}).accepted);
  ASSERT_TRUE(quorum_
                  .submit_private("A", {"B"}, {{"deal", to_bytes("1M"), false}},
                                  to_bytes("terms"))
                  .accepted);
  // The crash-stop wiped C's volatile replica entirely.
  EXPECT_EQ(quorum_.public_chain("C").height(), 0u);

  // Restart: WAL replay restores block 1, the shared delivery log
  // supplies the rest.
  net_.restart("C");
  expect_converged();
}

// ---------------------------------------------------------------------------
// Randomized chaos: the CI cron job drives this with VEIL_CHAOS_SEED.
// ---------------------------------------------------------------------------

TEST(RandomizedChaos, CrashMidSnapshotTransferResumesAndConverges) {
  std::uint64_t seed = 4242;
  if (const char* env = std::getenv("VEIL_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  // Echoed so a failing cron run is reproducible locally.
  std::printf("[chaos] VEIL_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));

  auto net_owner = net::make_transport(common::Rng(seed));
  net::Transport& net = *net_owner;
  common::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/1,
                               ledger::SnapshotConfig{.interval = 4});
  for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);

  common::Rng driver(seed + 1);
  int counter = 0;
  const auto advance = [&](std::uint64_t blocks) {
    for (std::uint64_t i = 0; i < blocks; ++i) {
      ASSERT_TRUE(quorum
                      .submit_public("NodeA",
                                     {{"chaos/" + std::to_string(counter++),
                                       to_bytes("v"), false}})
                      .accepted);
    }
  };

  // NodeC falls behind by a random lag spanning at least one checkpoint.
  advance(2);
  net.quarantine("NodeC");
  advance(8 + driver.next_below(8));
  net.release("NodeC");

  // Stall the snapshot transfer mid-flight with total loss, then crash a
  // random DONOR mid-transfer and bring it back: its WAL (including the
  // sealed checkpoint) must make it servable again, and the joiner's
  // verified-chunk cursor must survive the donor outage.
  net.set_drop_probability(1.0);
  quorum.rejoin("NodeC");
  const char* victim = driver.next_below(2) == 0 ? "NodeA" : "NodeB";
  net.crash(victim);
  net.restart(victim);

  // Heal to a random chaos loss rate and resume until converged; drop
  // loss entirely near the end so the run always terminates.
  net.set_drop_probability(0.05 * static_cast<double>(driver.next_below(5)));
  for (int round = 0;
       round < 60 &&
       quorum.public_chain("NodeC").height() < quorum.sealed_height();
       ++round) {
    if (round == 40) net.set_drop_probability(0.0);
    quorum.resume_rejoin("NodeC");
  }

  EXPECT_EQ(quorum.public_chain("NodeC").height(), quorum.sealed_height());
  EXPECT_EQ(quorum.public_chain("NodeC").tip_hash(),
            quorum.public_chain("NodeA").tip_hash());
  EXPECT_EQ(quorum.public_state("NodeC").digest(),
            quorum.public_state("NodeA").digest());
  // Stats ledger self-consistency under the whole episode.
  const net::NetworkStats& s = net.stats();
  EXPECT_EQ(s.messages_dropped,
            s.dropped_random_loss + s.dropped_partition + s.dropped_crashed +
                s.dropped_detached + s.dropped_silenced +
                s.dropped_quarantined);
}

}  // namespace
}  // namespace veil
