// Thread-count invariance: every parallel hot path must produce results
// bit-identical to the serial execution. Each scenario below is run with
// the global pool at 1 thread (pure inline — the pre-pool code path) and
// at 8 threads, and the complete observable outcome is compared:
// chain tip hashes, world state, receipts, Merkle roots, generated
// primes. Any scheduling-dependent behaviour shows up as a mismatch.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "contracts/contract.hpp"
#include "crypto/bigint.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

// Leaves the suite in the deterministic single-thread configuration.
struct ThreadsGuard {
  ~ThreadsGuard() { common::ThreadPool::set_global_threads(1); }
};

std::shared_ptr<contracts::FunctionContract> kv_chaincode() {
  return std::make_shared<contracts::FunctionContract>(
      "kv", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  common::Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

// A full Fabric scenario — four endorsing orgs so the fan-out, parallel
// signing and parallel block validation all see real work — reduced to a
// deterministic transcript string.
std::string fabric_transcript() {
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  const std::vector<std::string> orgs = {"OrgA", "OrgB", "OrgC", "OrgD"};
  for (const auto& org : orgs) fab.add_org(org);
  fab.create_channel("trade", {orgs.begin(), orgs.end()});
  std::vector<contracts::EndorsementPolicy> clauses;
  for (const auto& org : orgs) {
    clauses.push_back(contracts::EndorsementPolicy::require(org));
  }
  for (const auto& org : orgs) {
    fab.install_chaincode("trade", org, kv_chaincode(),
                          contracts::EndorsementPolicy::all_of(clauses));
  }

  std::ostringstream out;
  for (int i = 0; i < 6; ++i) {
    const auto receipt =
        fab.submit("trade", orgs[i % orgs.size()], "kv",
                   "put:key" + std::to_string(i),
                   to_bytes("value" + std::to_string(i)));
    out << receipt.tx_id << ':' << receipt.committed << ':' << receipt.reason
        << '\n';
  }
  for (const auto& org : orgs) {
    out << org << ':' << fab.chain("trade", org).height() << ':'
        << crypto::digest_hex(fab.chain("trade", org).tip_hash()) << '\n';
    for (int i = 0; i < 6; ++i) {
      const auto kv = fab.state("trade", org).get("key" + std::to_string(i));
      out << (kv ? common::to_hex(kv->value) : "-") << '\n';
    }
  }
  return out.str();
}

// A Quorum scenario exercising the parallel per-recipient envelope
// sealing (three recipients per private transaction).
std::string quorum_transcript() {
  net::SimNetwork net{common::Rng(27)};
  common::Rng rng(28);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/2);
  const std::vector<std::string> nodes = {"NodeA", "NodeB", "NodeC", "NodeD"};
  for (const auto& n : nodes) quorum.add_node(n);

  std::ostringstream out;
  for (int i = 0; i < 4; ++i) {
    const auto result = quorum.submit_private(
        nodes[i % nodes.size()], {"NodeB", "NodeC", "NodeD"},
        {{"deal" + std::to_string(i), to_bytes("amount" + std::to_string(i)),
          false}},
        to_bytes("payload" + std::to_string(i)));
    out << result.tx_id << ':' << result.accepted << '\n';
  }
  quorum.seal_block();
  for (const auto& n : nodes) {
    out << n << ':' << quorum.public_chain(n).height() << ':'
        << crypto::digest_hex(quorum.public_chain(n).tip_hash()) << '\n';
    for (int i = 0; i < 4; ++i) {
      const auto kv = quorum.private_state(n).get("deal" + std::to_string(i));
      out << (kv ? common::to_hex(kv->value) : "-") << '\n';
    }
  }
  return out.str();
}

TEST(ParallelDeterminism, FabricTranscriptIsThreadCountInvariant) {
  ThreadsGuard guard;
  common::ThreadPool::set_global_threads(1);
  const std::string serial = fabric_transcript();
  common::ThreadPool::set_global_threads(8);
  const std::string parallel = fabric_transcript();
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminism, QuorumTranscriptIsThreadCountInvariant) {
  ThreadsGuard guard;
  common::ThreadPool::set_global_threads(1);
  const std::string serial = quorum_transcript();
  common::ThreadPool::set_global_threads(8);
  const std::string parallel = quorum_transcript();
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminism, MerkleRootIsThreadCountInvariant) {
  ThreadsGuard guard;
  common::Rng rng(99);
  std::vector<common::Bytes> leaves;
  std::vector<common::Bytes> salts;
  for (int i = 0; i < 500; ++i) {
    leaves.push_back(rng.next_bytes(1 + rng.next_below(64)));
    salts.push_back(rng.next_bytes(16));
  }
  common::ThreadPool::set_global_threads(1);
  const auto serial = crypto::MerkleTree::build(leaves, salts);
  common::ThreadPool::set_global_threads(8);
  const auto parallel = crypto::MerkleTree::build(leaves, salts);
  EXPECT_EQ(serial.root(), parallel.root());
  // Proofs reference interior levels; spot-check they agree too.
  for (const std::size_t idx : {0u, 250u, 499u}) {
    EXPECT_EQ(serial.prove(idx).siblings, parallel.prove(idx).siblings);
  }
}

TEST(ParallelDeterminism, PrimeGenerationIsThreadCountInvariant) {
  ThreadsGuard guard;
  common::ThreadPool::set_global_threads(1);
  common::Rng rng_serial(4242);
  const crypto::BigInt p_serial = crypto::BigInt::generate_prime(rng_serial, 96);
  common::ThreadPool::set_global_threads(8);
  common::Rng rng_parallel(4242);
  const crypto::BigInt p_parallel =
      crypto::BigInt::generate_prime(rng_parallel, 96);
  EXPECT_EQ(p_serial, p_parallel);
  // The rng must be left in the same position (same number of draws).
  EXPECT_EQ(rng_serial.next_u64(), rng_parallel.next_u64());
}

TEST(ParallelDeterminism, MillerRabinVerdictsAgree) {
  ThreadsGuard guard;
  // A known prime (2^127-1) and a composite with no small factors.
  const crypto::BigInt prime =
      crypto::BigInt::from_decimal("170141183460469231731687303715884105727");
  const crypto::BigInt composite =
      prime * crypto::BigInt::from_decimal(
                  "340282366920938463463374607431768211507");
  for (const std::size_t threads : {1u, 8u}) {
    common::ThreadPool::set_global_threads(threads);
    common::Rng rng(5);
    EXPECT_TRUE(prime.is_probable_prime(rng));
    common::Rng rng2(5);
    EXPECT_FALSE(composite.is_probable_prime(rng2));
  }
}

}  // namespace
}  // namespace veil
