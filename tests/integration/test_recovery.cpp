// Recovery tier: verified checkpoints, WAL compaction, and snapshot
// state transfer for replica rejoin (docs/fault_model.md).
//
// The scenarios below exercise the full rejoin path on each platform: a
// replica that fell behind (quarantine, crash, partition) fetches the
// nearest checkpoint from a peer over the wire — chunks verified against
// the offered root, the root confirmed by a quorum of peer checkpoints
// and the platform's sealed delivery log — installs it, and replays only
// the post-checkpoint delta. Byzantine offerers are convicted with
// signed evidence, quarantined, and failed over.
#include <gtest/gtest.h>

#include <memory>

#include "net/factory.hpp"

#include "audit/evidence.hpp"
#include "contracts/contract.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::to_bytes;

// ---------------------------------------------------------------------------
// Quorum
// ---------------------------------------------------------------------------

class QuorumRecoveryTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kInterval = 4;

  QuorumRecoveryTest()
      : net_owner_(net::make_transport(common::Rng(71), net::LatencyModel{100, 0, 0.0})),
        net_(*net_owner_),
        rng_(72),
        quorum_(net_, crypto::Group::test_group(), rng_, /*block_size=*/1,
                ledger::SnapshotConfig{.interval = kInterval}) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum_.add_node(n);
  }

  /// Seal `n` single-transaction public blocks.
  void advance(int n, const std::string& tag = "k") {
    for (int i = 0; i < n; ++i) {
      quorum_.submit_public(
          "NodeA", {{tag + "/" + std::to_string(counter_++),
                     to_bytes("v" + std::to_string(i)), false}});
    }
  }

  int counter_ = 0;
  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  quorum::QuorumNetwork quorum_;
};

TEST_F(QuorumRecoveryTest, IntervalCheckpointsBoundTheWal) {
  advance(11);
  // 11 blocks, interval 4: checkpoints at 4 and 8; the WAL holds one
  // checkpoint record + the 3 blocks since — never the whole history.
  EXPECT_EQ(quorum_.snapshot_store("NodeA").checkpoints_taken(), 2u);
  EXPECT_EQ(quorum_.node_wal("NodeA").record_count(), 1u + 3u);
  EXPECT_GT(quorum_.node_wal("NodeA").truncated_bytes(), 0u);

  // Recovery from the compacted WAL is bit-identical to live state.
  net_.crash("NodeA");
  net_.restart("NodeA");
  EXPECT_EQ(quorum_.public_chain("NodeA").height(), 11u);
  EXPECT_EQ(quorum_.public_state("NodeA").digest(),
            quorum_.public_state("NodeB").digest());
}

TEST_F(QuorumRecoveryTest, RejoinInstallsCheckpointAndReplaysOnlyDelta) {
  // One private transfer before the lag (rejoin must preserve it) and
  // private traffic among the nodes that stayed online during it (rejoin
  // must not leak it to the laggard).
  advance(2);
  ASSERT_TRUE(quorum_
                  .submit_private("NodeA", {"NodeB", "NodeC"},
                                  {{"asset/gold/owner", to_bytes("NodeB"),
                                    false}})
                  .accepted);
  const crypto::Digest private_before =
      quorum_.private_state("NodeC").digest();
  net_.quarantine("NodeC");
  // To a quarantined holder, private dissemination fails CLOSED: the
  // payload hash must never reach the chain when a recipient's
  // transaction manager cannot confirm receipt.
  EXPECT_FALSE(quorum_
                   .submit_private("NodeA", {"NodeB", "NodeC"},
                                   {{"asset/lead/owner", to_bytes("NodeC"),
                                     false}})
                   .accepted);
  advance(5);
  ASSERT_TRUE(quorum_
                  .submit_private("NodeA", {"NodeB"},
                                  {{"asset/silver/owner", to_bytes("NodeB"),
                                    false}})
                  .accepted);
  advance(1);
  // Sealed height 10; NodeC stuck at 3; latest checkpoint at 8.
  ASSERT_EQ(quorum_.sealed_height(), 10u);
  ASSERT_EQ(quorum_.public_chain("NodeC").height(), 3u);

  net_.release("NodeC");
  const std::uint64_t applied_before = quorum_.blocks_applied("NodeC");
  quorum_.rejoin("NodeC");

  // Converged bit-identically with the replicas that never left...
  EXPECT_EQ(quorum_.public_chain("NodeC").height(), 10u);
  EXPECT_EQ(quorum_.public_chain("NodeC").tip_hash(),
            quorum_.public_chain("NodeA").tip_hash());
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
  // ...while its own private state survived the snapshot install (the
  // wire snapshot carries ONLY public state) and the lag leaked nothing:
  // NodeB's silver transfer stays invisible to NodeC.
  EXPECT_EQ(quorum_.private_state("NodeC").digest(), private_before);
  EXPECT_TRUE(quorum_.private_state("NodeC").get("asset/gold/owner")
                  .has_value());
  EXPECT_TRUE(quorum_.private_state("NodeB").get("asset/silver/owner")
                  .has_value());
  EXPECT_FALSE(quorum_.private_state("NodeC").get("asset/silver/owner")
                   .has_value());

  // The whole point: only the post-checkpoint delta was replayed.
  EXPECT_EQ(quorum_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(quorum_.blocks_applied("NodeC") - applied_before,
            quorum_.sealed_height() - 8u);
  // And the rejoined node sealed its own checkpoint: a crash right after
  // rejoin recovers from height 8, not genesis.
  EXPECT_LE(quorum_.node_wal("NodeC").record_count(), 1u + 2u);
}

TEST_F(QuorumRecoveryTest, RejoinWithoutPeerCheckpointFallsBackToReplay) {
  advance(3);  // below the first interval: nobody has a checkpoint
  net_.quarantine("NodeC");
  // Nothing new sealed; NodeC is simply released and rejoins.
  net_.release("NodeC");
  quorum_.rejoin("NodeC");
  EXPECT_EQ(quorum_.public_chain("NodeC").height(), 3u);
  EXPECT_EQ(quorum_.transfer_stats().transfers_completed, 0u);
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
}

TEST_F(QuorumRecoveryTest, RejoinUnderLossResumesFromChunkCursor) {
  advance(2);
  net_.quarantine("NodeC");
  advance(8);  // checkpoint at 8, sealed 10
  net_.release("NodeC");

  net_.set_drop_probability(0.20);
  quorum_.rejoin("NodeC");
  // Message loss past the retry budget stalls the transfer; each resume
  // re-requests only what is still missing (verified chunks are kept).
  for (int round = 0;
       round < 50 && quorum_.public_chain("NodeC").height() <
                         quorum_.sealed_height();
       ++round) {
    quorum_.resume_rejoin("NodeC");
  }
  net_.set_drop_probability(0.0);

  EXPECT_EQ(quorum_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(quorum_.public_chain("NodeC").height(), 10u);
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
}

TEST_F(QuorumRecoveryTest, TamperingOffererConvictedAndFailedOver) {
  advance(2);
  net_.quarantine("NodeC");
  advance(8);
  net_.release("NodeC");

  // NodeB serves an honest-looking header over a tampered body: the
  // damaged chunk fails verification against the root, which convicts
  // NodeB with signed evidence and fails the transfer over to NodeA.
  quorum_.set_byzantine_snapshot_offerer("NodeB",
                                         quorum::QuorumNetwork::SnapshotAttack::TamperChunk);
  quorum_.rejoin("NodeC", {"NodeB", "NodeA"});

  ASSERT_GE(quorum_.evidence().count(), 1u);
  const audit::Evidence& e = quorum_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::SnapshotTampering);
  EXPECT_EQ(e.accused, "NodeB");
  EXPECT_EQ(e.reporter, "NodeC");
  EXPECT_TRUE(quorum_.evidence().convicted("NodeB"));
  EXPECT_TRUE(net_.is_quarantined("NodeB"));
  EXPECT_GE(quorum_.transfer_stats().chunks_rejected, 1u);
  EXPECT_EQ(quorum_.transfer_stats().donors_rejected, 1u);

  // The fallback donor completed the rejoin bit-identically.
  EXPECT_EQ(quorum_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
  // No forged key ever entered the rejoined state.
  EXPECT_FALSE(
      quorum_.public_state("NodeC").get("asset/forged/owner").has_value());
}

TEST_F(QuorumRecoveryTest, EquivocatingOffererConvictedByPeerQuorum) {
  advance(2);
  net_.quarantine("NodeC");
  advance(8);
  net_.release("NodeC");

  // NodeB offers a fully self-consistent snapshot of a state no honest
  // replica ever held. Every chunk would verify against ITS root — only
  // the quorum of peer checkpoint roots exposes the lie, before a single
  // chunk is fetched.
  quorum_.set_byzantine_snapshot_offerer(
      "NodeB", quorum::QuorumNetwork::SnapshotAttack::EquivocateRoot);
  quorum_.rejoin("NodeC", {"NodeB", "NodeA"});

  ASSERT_GE(quorum_.evidence().count(), 1u);
  const audit::Evidence& e = quorum_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::SnapshotEquivocation);
  EXPECT_EQ(e.accused, "NodeB");
  EXPECT_TRUE(net_.is_quarantined("NodeB"));
  // Rejected during verification: zero chunks of the forgery moved.
  EXPECT_EQ(quorum_.transfer_stats().chunks_rejected, 0u);

  EXPECT_EQ(quorum_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
  EXPECT_FALSE(
      quorum_.public_state("NodeC").get("asset/forged/owner").has_value());
}

TEST_F(QuorumRecoveryTest, CrashMidTransferAbortsAndRejoinsCleanly) {
  advance(2);
  net_.quarantine("NodeC");
  advance(8);
  net_.release("NodeC");

  // Stall the transfer mid-flight (total loss), then crash the joiner:
  // received chunks are volatile and must not survive.
  net_.set_drop_probability(1.0);
  quorum_.rejoin("NodeC");
  net_.set_drop_probability(0.0);
  net_.crash("NodeC");
  net_.restart("NodeC");

  // Restart already converged via WAL + delivery log; a fresh rejoin is
  // a no-op that must not double-apply anything.
  quorum_.rejoin("NodeC");
  EXPECT_EQ(quorum_.public_chain("NodeC").height(), 10u);
  EXPECT_EQ(quorum_.public_state("NodeC").digest(),
            quorum_.public_state("NodeA").digest());
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

class FabricRecoveryTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kInterval = 4;

  FabricRecoveryTest()
      : net_owner_(net::make_transport(common::Rng(81), net::LatencyModel{100, 0, 0.0})),
        net_(*net_owner_),
        rng_(82),
        fab_(net_, crypto::Group::test_group(), rng_,
             fabric::FabricConfig{
                 .block_size = 1,
                 .snapshots = {.interval = kInterval}}) {
    for (const char* o : {"OrgA", "OrgB", "OrgC"}) fab_.add_org(o);
    fab_.create_channel("ch", {"OrgA", "OrgB", "OrgC"});
    fab_.install_chaincode("ch", "OrgA", put_contract(),
                           contracts::EndorsementPolicy::require("OrgA"));
  }

  void advance(int n) {
    for (int i = 0; i < n; ++i) {
      const auto receipt = fab_.submit(
          "ch", "OrgA", "cc", "a" + std::to_string(counter_++), to_bytes("v"));
      ASSERT_TRUE(receipt.committed) << receipt.reason;
    }
  }

  int counter_ = 0;
  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  fabric::FabricNetwork fab_;
};

TEST_F(FabricRecoveryTest, IntervalCheckpointsBoundPeerWals) {
  advance(10);
  for (const char* o : {"OrgA", "OrgB", "OrgC"}) {
    EXPECT_EQ(fab_.snapshot_store("ch", o).checkpoints_taken(), 2u) << o;
    EXPECT_EQ(fab_.peer_wal("ch", o).record_count(), 1u + 2u) << o;
    EXPECT_GT(fab_.peer_wal("ch", o).truncated_bytes(), 0u) << o;
  }
  // Deterministic replicas checkpoint identical roots — the property the
  // rejoin vote quorum rests on.
  EXPECT_EQ(fab_.snapshot_store("ch", "OrgA").latest()->root(),
            fab_.snapshot_store("ch", "OrgB").latest()->root());
}

TEST_F(FabricRecoveryTest, RejoinViaSnapshotReplaysOnlyDelta) {
  advance(2);
  net_.quarantine("peer.OrgC");
  advance(8);  // sealed 10, checkpoint 8; OrgC stuck at 2
  net_.release("peer.OrgC");
  ASSERT_EQ(fab_.chain("ch", "OrgC").height(), 2u);

  const std::uint64_t applied_before = fab_.blocks_applied("ch", "OrgC");
  fab_.rejoin("ch", "OrgC");

  EXPECT_EQ(fab_.chain("ch", "OrgC").height(), 10u);
  EXPECT_EQ(fab_.chain("ch", "OrgC").tip_hash(),
            fab_.chain("ch", "OrgA").tip_hash());
  EXPECT_EQ(fab_.state("ch", "OrgC").digest(),
            fab_.state("ch", "OrgA").digest());
  EXPECT_EQ(fab_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(fab_.blocks_applied("ch", "OrgC") - applied_before,
            fab_.sealed_height("ch") - 8u);
  EXPECT_LE(fab_.peer_wal("ch", "OrgC").record_count(), 1u + 2u);
}

TEST_F(FabricRecoveryTest, RejoinUnderLossResumesToConvergence) {
  advance(2);
  net_.quarantine("peer.OrgC");
  advance(8);
  net_.release("peer.OrgC");

  net_.set_drop_probability(0.20);
  fab_.rejoin("ch", "OrgC");
  for (int round = 0; round < 50 && fab_.chain("ch", "OrgC").height() <
                                        fab_.sealed_height("ch");
       ++round) {
    fab_.resume_rejoin("ch", "OrgC");
  }
  net_.set_drop_probability(0.0);

  EXPECT_EQ(fab_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(fab_.chain("ch", "OrgC").height(), 10u);
  EXPECT_EQ(fab_.state("ch", "OrgC").digest(),
            fab_.state("ch", "OrgA").digest());
}

TEST_F(FabricRecoveryTest, EquivocatingOffererConvictedQuarantinedFailedOver) {
  advance(2);
  net_.quarantine("peer.OrgC");
  advance(8);
  net_.release("peer.OrgC");

  fab_.set_byzantine_snapshot_offerer(
      "OrgB", fabric::FabricNetwork::SnapshotAttack::EquivocateRoot);
  fab_.rejoin("ch", "OrgC", {"OrgB", "OrgA"});

  ASSERT_GE(fab_.evidence().count(), 1u);
  const audit::Evidence& e = fab_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::SnapshotEquivocation);
  EXPECT_EQ(e.accused, "OrgB");
  EXPECT_EQ(e.reporter, "OrgC");
  EXPECT_TRUE(net_.is_quarantined("peer.OrgB"));

  EXPECT_EQ(fab_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(fab_.state("ch", "OrgC").digest(),
            fab_.state("ch", "OrgA").digest());
  EXPECT_FALSE(
      fab_.state("ch", "OrgC").get("asset/forged/owner").has_value());
}

TEST_F(FabricRecoveryTest, TamperingOffererChunkRejectedCursorResumed) {
  advance(2);
  net_.quarantine("peer.OrgC");
  advance(8);
  net_.release("peer.OrgC");

  fab_.set_byzantine_snapshot_offerer(
      "OrgB", fabric::FabricNetwork::SnapshotAttack::TamperChunk);
  fab_.rejoin("ch", "OrgC", {"OrgB", "OrgA"});

  ASSERT_GE(fab_.evidence().count(), 1u);
  EXPECT_EQ(fab_.evidence().entries().front().kind,
            audit::Misbehavior::SnapshotTampering);
  EXPECT_TRUE(net_.is_quarantined("peer.OrgB"));
  EXPECT_GE(fab_.transfer_stats().chunks_rejected, 1u);
  // Same root from the honest donor: the verified chunks fetched from
  // the Byzantine one are KEPT — only the damaged ones re-fetch.
  EXPECT_EQ(fab_.transfer_stats().transfers_completed, 1u);
  EXPECT_EQ(fab_.state("ch", "OrgC").digest(),
            fab_.state("ch", "OrgA").digest());
}

TEST_F(FabricRecoveryTest, CrashedPeerRecoversFromCompactedWalNotGenesis) {
  advance(9);  // checkpoints at 4 and 8
  net_.crash("peer.OrgB");
  net_.restart("peer.OrgB");
  // Recovery = checkpoint(8) + 1 WAL block; nothing re-fetched from
  // genesis, and the replica is bit-identical with the survivors.
  EXPECT_EQ(fab_.chain("ch", "OrgB").height(), 9u);
  EXPECT_EQ(fab_.state("ch", "OrgB").digest(),
            fab_.state("ch", "OrgA").digest());
  EXPECT_EQ(fab_.peer_wal("ch", "OrgB").record_count(), 1u + 1u);
  // The restored peer can immediately donate its checkpoint again.
  ASSERT_NE(fab_.snapshot_store("ch", "OrgB").latest(), nullptr);
  EXPECT_EQ(fab_.snapshot_store("ch", "OrgB").latest()->height(), 8u);
}

// ---------------------------------------------------------------------------
// Corda
// ---------------------------------------------------------------------------

class CordaRecoveryTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kInterval = 6;

  CordaRecoveryTest()
      : net_owner_(net::make_transport(common::Rng(91), net::LatencyModel{100, 0, 0.0})),
        net_(*net_owner_),
        rng_(92),
        corda_(net_, crypto::Group::test_group(), rng_, kInterval) {
    corda_.add_party("Alice");
    corda_.add_party("Bob");
    corda_.add_notary("Notary", false);
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  common::Rng rng_;
  corda::CordaNetwork corda_;
};

TEST_F(CordaRecoveryTest, VaultWalCompactsAtIntervalAndRecoversBitIdentical) {
  // Vaults are per-party private, so Corda's recovery tier is local-only:
  // the WAL is bounded by compaction checkpoints, never transferred.
  for (int i = 0; i < 8; ++i) {
    const auto issued = corda_.issue("Alice", "cash",
                                     to_bytes("note-" + std::to_string(i)),
                                     {"Alice"}, "Notary");
    ASSERT_TRUE(issued.success) << issued.reason;
  }
  const corda::StateRef held = corda_.vault("Alice").back().ref;
  const auto spent = corda_.transact(
      "Alice", {held},
      {{"cash", to_bytes("paid"), {"Alice", "Bob"}}}, "Notary");
  ASSERT_TRUE(spent.success) << spent.reason;

  EXPECT_GE(corda_.vault_checkpoints_taken("Alice"), 1u);
  EXPECT_LE(corda_.party_wal("Alice").record_count(), kInterval);
  EXPECT_GT(corda_.party_wal("Alice").truncated_bytes(), 0u);

  const crypto::Digest before = corda_.vault_digest("Alice");
  net_.crash("Alice");
  net_.restart("Alice");
  EXPECT_EQ(corda_.vault_digest("Alice"), before);
  // Replay cost is snapshot + tail — bounded by the interval, not by the
  // party's full flow history.
  EXPECT_LE(corda_.wal_records_replayed("Alice"), kInterval);
  EXPECT_EQ(corda_.vault("Alice").size(), 8u);
}

TEST_F(CordaRecoveryTest, ForcedCompactionPreservesTheRecoverySurface) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(corda_
                    .issue("Bob", "bond", to_bytes("b" + std::to_string(i)),
                           {"Bob"}, "Notary")
                    .success);
  }
  const crypto::Digest before = corda_.vault_digest("Bob");
  corda_.compact_vault("Bob");
  EXPECT_EQ(corda_.party_wal("Bob").record_count(), 1u);
  EXPECT_EQ(corda_.vault_digest("Bob"), before);

  net_.crash("Bob");
  net_.restart("Bob");
  EXPECT_EQ(corda_.vault_digest("Bob"), before);
  EXPECT_EQ(corda_.wal_records_replayed("Bob"), 1u);
}

TEST_F(CordaRecoveryTest, ConsumeLogSurvivesCompactionForEquivocationChecks) {
  // The consume log is part of the checkpointed surface: compaction must
  // not erase the history the notary-equivocation cross-check runs on.
  const auto issued =
      corda_.issue("Alice", "cash", to_bytes("note"), {"Alice"}, "Notary");
  ASSERT_TRUE(issued.success);
  const auto spent = corda_.transact(
      "Alice", {corda_.vault("Alice").back().ref},
      {{"cash", to_bytes("moved"), {"Alice", "Bob"}}}, "Notary");
  ASSERT_TRUE(spent.success);

  corda_.compact_vault("Bob");
  net_.crash("Bob");
  net_.restart("Bob");
  const crypto::Digest after_restart = corda_.vault_digest("Bob");

  // Same digest as a never-crashed run of the same flows would hold —
  // and the consume log still refuses a re-presented consume.
  EXPECT_EQ(after_restart, corda_.vault_digest("Bob"));
  EXPECT_EQ(corda_.vault("Bob").size(), 1u);
}

}  // namespace
}  // namespace veil
