// Byzantine adversary tier: active attacks on the Table 1 weaknesses,
// with detection, evidence, and quarantine (docs/fault_model.md).
//
// Each platform attack is shown twice: once with detection disabled —
// the attack SUCCEEDS, reproducing the paper's documented trust
// assumption — and once with detection enabled, where the culprit is
// convicted with signed audit::Evidence, quarantined on the network,
// and the honest replicas re-converge to bit-identical digests.
#include <cstdlib>
#include <gtest/gtest.h>

#include <memory>

#include "audit/evidence.hpp"
#include "net/factory.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace veil {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

// ---------------------------------------------------------------------------
// Network-level adversary behaviors
// ---------------------------------------------------------------------------

TEST(ByzantineNet, TamperFlipsBitsInFlight) {
  auto net_owner = net::make_transport(Rng(101), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net::ByzantinePlan plan;
  plan.tamper_from(0, "mallory", 1.0);
  net.set_byzantine_plan(plan);
  const Bytes sent = to_bytes("authentic-payload");
  Bytes received;
  net.attach("mallory", [](const net::Message&) {});
  net.attach("bob", [&](const net::Message& m) { received = m.payload; });
  net.send("mallory", "bob", "t", sent);
  net.run();
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_NE(received, sent);
  EXPECT_EQ(net.stats().messages_tampered, 1u);
}

TEST(ByzantineNet, EquivocationAltersEveryOtherCopy) {
  auto net_owner = net::make_transport(Rng(103), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net::ByzantinePlan plan;
  plan.equivocate_from(0, "mallory");
  net.set_byzantine_plan(plan);
  std::vector<Bytes> bob, carol;
  net.attach("mallory", [](const net::Message&) {});
  net.attach("bob", [&](const net::Message& m) { bob.push_back(m.payload); });
  net.attach("carol",
             [&](const net::Message& m) { carol.push_back(m.payload); });
  // The same "broadcast" payload goes to both peers; the equivocator
  // sends them conflicting copies.
  net.send("mallory", "bob", "t", to_bytes("the-statement"));
  net.send("mallory", "carol", "t", to_bytes("the-statement"));
  net.run();
  ASSERT_EQ(bob.size(), 1u);
  ASSERT_EQ(carol.size(), 1u);
  EXPECT_NE(bob[0], carol[0]);
  EXPECT_EQ(net.stats().messages_equivocated, 1u);
}

TEST(ByzantineNet, ReplayDuplicatesDelivery) {
  auto net_owner = net::make_transport(Rng(105), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net::ByzantinePlan plan;
  plan.replay_from(0, "mallory", 5'000);
  net.set_byzantine_plan(plan);
  std::size_t received = 0;
  net.attach("mallory", [](const net::Message&) {});
  net.attach("bob", [&](const net::Message&) { ++received; });
  net.send("mallory", "bob", "t", to_bytes("pay me"));
  net.run();
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(net.stats().messages_replayed, 1u);
}

TEST(ByzantineNet, SelectiveSilenceDropsOnlyTheTarget) {
  auto net_owner = net::make_transport(Rng(107), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net::ByzantinePlan plan;
  plan.silence_from(0, "mallory", "bob");
  net.set_byzantine_plan(plan);
  std::size_t bob = 0, carol = 0;
  net.attach("mallory", [](const net::Message&) {});
  net.attach("bob", [&](const net::Message&) { ++bob; });
  net.attach("carol", [&](const net::Message&) { ++carol; });
  net.send("mallory", "bob", "t", to_bytes("x"));
  net.send("mallory", "carol", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(bob, 0u);
  EXPECT_EQ(carol, 1u);
  EXPECT_EQ(net.stats().dropped_silenced, 1u);
}

TEST(ByzantineNet, QuarantineIsolatesBothDirectionsUntilRelease) {
  auto net_owner = net::make_transport(Rng(109), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  std::size_t received = 0;
  net.attach("mallory", [&](const net::Message&) { ++received; });
  net.attach("bob", [&](const net::Message&) { ++received; });
  net.quarantine("mallory");
  EXPECT_TRUE(net.is_quarantined("mallory"));
  net.send("mallory", "bob", "t", to_bytes("x"));  // outbound: dropped
  net.send("bob", "mallory", "t", to_bytes("x"));  // inbound: dropped
  net.run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(net.stats().dropped_quarantined, 2u);
  net.release("mallory");
  net.send("bob", "mallory", "t", to_bytes("x"));
  net.run();
  EXPECT_EQ(received, 1u);
}

TEST(ByzantineNet, LinkCorruptionModeFlipsRandomBits) {
  auto net_owner = net::make_transport(Rng(111), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net.set_corruption_probability(1.0);
  const Bytes sent = to_bytes("pristine");
  Bytes received;
  net.attach("a", [](const net::Message&) {});
  net.attach("b", [&](const net::Message& m) { received = m.payload; });
  net.send("a", "b", "t", sent);
  net.run();
  EXPECT_NE(received, sent);
  EXPECT_EQ(net.stats().messages_corrupted, 1u);
}

TEST(ByzantineNet, PlanEventsActivateAndDeactivateOnSchedule) {
  auto net_owner = net::make_transport(Rng(113), net::LatencyModel{100, 0, 0.0});
  net::Transport& net = *net_owner;
  net::ByzantinePlan plan;
  plan.tamper_from(0, "mallory", 1.0).honest_from(50'000, "mallory");
  net.set_byzantine_plan(plan);
  Bytes first, second;
  net.attach("mallory", [](const net::Message&) {});
  net.attach("bob", [&](const net::Message& m) {
    if (first.empty()) {
      first = m.payload;
    } else {
      second = m.payload;
    }
  });
  net.send("mallory", "bob", "t", to_bytes("msg"));
  net.run();  // drain tail fires the honest_from event
  net.send("mallory", "bob", "t", to_bytes("msg"));
  net.run();
  EXPECT_NE(first, to_bytes("msg"));
  EXPECT_EQ(second, to_bytes("msg"));
}

TEST(ByzantineNet, SeedReproducibleAdversaryTranscript) {
  const auto run_once = [] {
    auto net_owner = net::make_transport(Rng(400), net::LatencyModel{120, 40, 0.0});
    net::Transport& net = *net_owner;
    net::ByzantinePlan plan;
    plan.tamper_from(0, "mallory", 0.5).replay_from(0, "eve", 7'000);
    net.set_byzantine_plan(plan);
    net.set_corruption_probability(0.1);
    std::vector<Bytes> log;
    net.attach("mallory", [](const net::Message&) {});
    net.attach("eve", [](const net::Message&) {});
    net.attach("bob", [&](const net::Message& m) { log.push_back(m.payload); });
    for (int i = 0; i < 20; ++i) {
      net.send("mallory", "bob", "t", to_bytes("m" + std::to_string(i)));
      net.send("eve", "bob", "t", to_bytes("e" + std::to_string(i)));
      net.run();
    }
    return std::make_tuple(log, net.stats().messages_tampered,
                           net.stats().messages_replayed,
                           net.stats().messages_corrupted);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Attack 1 — Quorum: private-transfer replay past the transaction manager
// ---------------------------------------------------------------------------

class QuorumReplayTest : public ::testing::Test {
 protected:
  QuorumReplayTest()
      : net_owner_(net::make_transport(Rng(27))),
        net_(*net_owner_),
        rng_(28),
        quorum_(net_, crypto::Group::test_group(), rng_, /*block_size=*/1) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum_.add_node(n);
  }

  // A sells the asset to B, then B sells it back to A. B's transaction
  // manager still retains tx1's plaintext — the replay raw material.
  std::string transfer_round_trip() {
    const auto tx1 = quorum_.submit_private(
        "NodeA", {"NodeB"},
        {{"asset/bond-7/owner", to_bytes("NodeB"), false}});
    EXPECT_TRUE(tx1.accepted);
    const auto tx2 = quorum_.submit_private(
        "NodeB", {"NodeA"},
        {{"asset/bond-7/owner", to_bytes("NodeA"), false}});
    EXPECT_TRUE(tx2.accepted);
    return tx1.tx_id;
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  Rng rng_;
  quorum::QuorumNetwork quorum_;
};

TEST_F(QuorumReplayTest, DetectionOffReplayResurrectsSpentTransfer) {
  const std::string tx1 = transfer_round_trip();
  // B replays the A->B transfer to a fresh recipient. Nothing in the
  // platform stops it: the paper's documented flaw — private state is
  // validated only by the involved parties.
  const auto replay = quorum_.replay_private("NodeB", tx1, {"NodeC"});
  ASSERT_TRUE(replay.accepted) << replay.reason;
  quorum_.sync();
  // C now believes B owns the bond while A knows it owns it itself:
  // divergent private worlds, a successful double spend.
  EXPECT_EQ(quorum_.private_owner("NodeC", "bond-7"), "NodeB");
  EXPECT_EQ(quorum_.private_owner("NodeA", "bond-7"), "NodeA");
  EXPECT_TRUE(quorum_.evidence().entries().empty());
}

TEST_F(QuorumReplayTest, DetectionOnConvictsAndQuarantinesReplayer) {
  quorum_.enable_detection();
  const std::string tx1 = transfer_round_trip();
  const auto replay = quorum_.replay_private("NodeB", tx1, {"NodeC"});
  ASSERT_TRUE(replay.accepted) << replay.reason;  // it reaches the chain...
  quorum_.sync();
  // ...but the nullifier cross-check catches the second sighting of
  // tx1's payload hash: honest nodes skip the writes, record signed
  // evidence, and quarantine the replayer.
  ASSERT_GE(quorum_.evidence().count(), 1u);
  const audit::Evidence& e = quorum_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::PrivateReplay);
  EXPECT_EQ(e.accused, "NodeB");
  EXPECT_TRUE(quorum_.evidence().convicted("NodeB"));
  EXPECT_TRUE(net_.is_quarantined("NodeB"));
  // Nobody was fooled: C holds no replayed state, A still owns the bond.
  EXPECT_FALSE(quorum_.private_owner("NodeC", "bond-7").has_value());
  EXPECT_EQ(quorum_.private_owner("NodeA", "bond-7"), "NodeA");
  // Honest public replicas converge to bit-identical digests.
  EXPECT_EQ(quorum_.public_chain("NodeA").tip_hash(),
            quorum_.public_chain("NodeC").tip_hash());
  EXPECT_EQ(quorum_.public_state("NodeA").digest(),
            quorum_.public_state("NodeC").digest());
}

TEST_F(QuorumReplayTest, EvidenceTranscriptIsSeedReproducible) {
  const auto run_once = [] {
    auto net_owner = net::make_transport(Rng(27));
    net::Transport& net = *net_owner;
    Rng rng(28);
    quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);
    quorum.enable_detection();
    const auto tx1 = quorum.submit_private(
        "NodeA", {"NodeB"},
        {{"asset/bond-7/owner", to_bytes("NodeB"), false}});
    quorum.replay_private("NodeB", tx1.tx_id, {"NodeC"});
    quorum.sync();
    return std::make_pair(quorum.evidence().digest(),
                          net.stats().messages_dropped);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Attacks 2 & 3 — Fabric: tampering orderer, equivocating endorser
// ---------------------------------------------------------------------------

std::shared_ptr<contracts::FunctionContract> kv_chaincode() {
  return std::make_shared<contracts::FunctionContract>(
      "kv", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  common::Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

class FabricByzantineTest : public ::testing::Test {
 protected:
  FabricByzantineTest()
      : net_owner_(net::make_transport(Rng(7))),
        net_(*net_owner_), rng_(8), fab_(net_, crypto::Group::test_group(), rng_) {
    for (const char* org : {"OrgA", "OrgB", "OrgC"}) fab_.add_org(org);
    fab_.create_channel("trade", {"OrgA", "OrgB", "OrgC"});
    fab_.install_chaincode("trade", "OrgB", kv_chaincode(),
                           contracts::EndorsementPolicy::require("OrgB"));
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  Rng rng_;
  fabric::FabricNetwork fab_;
};

TEST_F(FabricByzantineTest, TrustingPeersCommitOrdererRewrite) {
  // The deployment the paper's §3.4 orderer-visibility caveat warns
  // about: peers that take orderer output on faith. The rewritten block
  // has a perfectly valid header (the orderer rebuilt the Merkle root),
  // so nothing flags it.
  fab_.set_validation_mode(fabric::FabricNetwork::ValidationMode::Trusting);
  fab_.set_byzantine_orderer(true);
  const auto receipt =
      fab_.submit("trade", "OrgB", "kv", "put:deal", to_bytes("5000"));
  // The rewrite changes the transaction id, so the client's receipt
  // dangles — but every trusting peer committed the forged write anyway.
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(fab_.state("trade", "OrgA").get("deal")->value, to_bytes("EVIL"));
  EXPECT_EQ(fab_.state("trade", "OrgC").get("deal")->value, to_bytes("EVIL"));
  EXPECT_TRUE(fab_.evidence().entries().empty());
}

TEST_F(FabricByzantineTest, DetectModeConvictsTamperingOrderer) {
  fab_.set_validation_mode(fabric::FabricNetwork::ValidationMode::Detect);
  fab_.set_byzantine_orderer(true);
  const auto receipt =
      fab_.submit("trade", "OrgB", "kv", "put:deal", to_bytes("5000"));
  EXPECT_FALSE(receipt.committed);
  // The rewrite invalidated every endorsement signature on the
  // transaction — attributable to the only principal between endorsement
  // and delivery: the orderer.
  ASSERT_GE(fab_.evidence().count(), 1u);
  const audit::Evidence& e = fab_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::OrdererTampering);
  EXPECT_EQ(e.accused, fab_.orderer_operator("trade"));
  EXPECT_TRUE(net_.is_quarantined(fab_.orderer_operator("trade")));
  // Fail closed: no replica committed the poisoned block, and every
  // honest replica agrees bit-for-bit.
  EXPECT_FALSE(fab_.state("trade", "OrgA").get("deal").has_value());
  EXPECT_EQ(fab_.chain("trade", "OrgA").height(),
            fab_.chain("trade", "OrgC").height());
  EXPECT_EQ(fab_.chain("trade", "OrgA").tip_hash(),
            fab_.chain("trade", "OrgC").tip_hash());
  EXPECT_EQ(fab_.state("trade", "OrgA").digest(),
            fab_.state("trade", "OrgC").digest());
}

TEST_F(FabricByzantineTest, ValidateModeAcceptsEndorserEquivocation) {
  // Default validation checks SIGNATURES, not consistency: an endorser
  // that signs a different write-set for the same proposal each time
  // passes every check — both conflicting results commit silently.
  fab_.set_byzantine_endorser("OrgB");
  const auto r1 =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("100"));
  const auto r2 =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("100"));
  ASSERT_TRUE(r1.committed) << r1.reason;
  ASSERT_TRUE(r2.committed) << r2.reason;
  // Identical proposals, conflicting committed results.
  EXPECT_EQ(fab_.state("trade", "OrgA").get("deal")->value,
            to_bytes("100-equiv1"));
  EXPECT_TRUE(fab_.evidence().entries().empty());
}

TEST_F(FabricByzantineTest, DetectModeConvictsEquivocatingEndorser) {
  fab_.set_validation_mode(fabric::FabricNetwork::ValidationMode::Detect);
  fab_.set_byzantine_endorser("OrgB");
  const auto r1 =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("100"));
  ASSERT_TRUE(r1.committed) << r1.reason;  // first sighting: no conflict yet
  const auto r2 =
      fab_.submit("trade", "OrgA", "kv", "put:deal", to_bytes("100"));
  EXPECT_FALSE(r2.committed);  // cross-check caught the conflicting rwset
  ASSERT_GE(fab_.evidence().count(), 1u);
  const audit::Evidence& e = fab_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::EndorserEquivocation);
  EXPECT_EQ(e.accused, "OrgB");
  EXPECT_TRUE(fab_.evidence().convicted("OrgB"));
  EXPECT_TRUE(net_.is_quarantined("peer.OrgB"));
  // Honest replicas kept the FIRST result and agree bit-for-bit.
  EXPECT_EQ(fab_.state("trade", "OrgA").get("deal")->value,
            to_bytes("100-equiv0"));
  EXPECT_EQ(fab_.state("trade", "OrgA").digest(),
            fab_.state("trade", "OrgC").digest());
  EXPECT_EQ(fab_.chain("trade", "OrgA").tip_hash(),
            fab_.chain("trade", "OrgC").tip_hash());
}

// ---------------------------------------------------------------------------
// Attack 4 — Corda: notary signs conflicting consume requests
// ---------------------------------------------------------------------------

class CordaNotaryTest : public ::testing::Test {
 protected:
  CordaNotaryTest()
      : net_owner_(net::make_transport(Rng(17))),
        net_(*net_owner_), rng_(18), corda_(net_, crypto::Group::test_group(), rng_) {
    for (const char* p : {"Alice", "Bob", "Carol"}) corda_.add_party(p);
    corda_.add_notary("Notary", /*validating=*/false);
  }

  // Alice issues cash and pays Bob — Bob witnesses the consume of the
  // issue output, which is the history the detection runs against.
  corda::StateRef issue_and_pay_bob() {
    const auto issued =
        corda_.issue("Alice", "Cash", to_bytes("100"), {"Alice"}, "Notary");
    EXPECT_TRUE(issued.success) << issued.reason;
    const corda::StateRef ref = corda_.vault("Alice").back().ref;
    const auto paid = corda_.transact(
        "Alice", {ref}, {corda::OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
        "Notary");
    EXPECT_TRUE(paid.success) << paid.reason;
    return ref;
  }

  std::unique_ptr<net::Transport> net_owner_;
  net::Transport& net_;
  Rng rng_;
  corda::CordaNetwork corda_;
};

TEST_F(CordaNotaryTest, DetectionOffByzantineNotarySignsConflictingConsumes) {
  const corda::StateRef ref = issue_and_pay_bob();
  corda_.set_byzantine_notary("Notary");
  // Alice re-spends the consumed issue output to Bob a second time. The
  // notary — the single uniqueness authority — signs the conflict, and
  // the flow completes: Bob's vault now holds the same cash twice.
  const auto respend = corda_.byzantine_respend(
      "Alice", ref, {corda::OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
      "Notary");
  ASSERT_TRUE(respend.success) << respend.reason;
  EXPECT_EQ(corda_.vault("Bob").size(), 2u);
  EXPECT_TRUE(corda_.evidence().entries().empty());
}

TEST_F(CordaNotaryTest, DetectionOnPeersConvictEquivocatingNotary) {
  corda_.enable_detection();
  const corda::StateRef ref = issue_and_pay_bob();
  corda_.set_byzantine_notary("Notary");
  const auto respend = corda_.byzantine_respend(
      "Alice", ref, {corda::OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
      "Notary");
  // Bob's own consume log proves the notary signed two conflicting
  // consumes: finality is refused, the flow fails closed.
  EXPECT_FALSE(respend.success);
  EXPECT_NE(respend.reason.find("notary equivocation"), std::string::npos)
      << respend.reason;
  ASSERT_GE(corda_.evidence().count(), 1u);
  const audit::Evidence& e = corda_.evidence().entries().front();
  EXPECT_EQ(e.kind, audit::Misbehavior::NotaryEquivocation);
  EXPECT_EQ(e.accused, "Notary");
  EXPECT_EQ(e.reporter, "Bob");
  EXPECT_TRUE(net_.is_quarantined("Notary"));
  // Bob holds exactly the one legitimate state.
  EXPECT_EQ(corda_.vault("Bob").size(), 1u);
  // The quarantined notary is out of service: later flows through it
  // fail closed instead of trusting it again.
  const auto later =
      corda_.issue("Carol", "Cash", to_bytes("50"), {"Carol"}, "Notary");
  EXPECT_FALSE(later.success);
}

// Satellite: the honest notary's refusal path, with signed evidence,
// under a healthy network and under 20% loss.
class CordaRefusalTest : public ::testing::Test {
 protected:
  struct Transcript {
    bool success = true;
    std::string reason;
    Bytes evidence_digest;
    std::size_t evidence_count = 0;
    std::string accused;

    bool operator==(const Transcript&) const = default;
  };

  // Deterministic transcript of a Byzantine client hitting an honest
  // notary.
  static Transcript run_refusal(double loss) {
    auto net_owner = net::make_transport(Rng(17));
    net::Transport& net = *net_owner;
    Rng rng(18);
    corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
    for (const char* p : {"Alice", "Bob"}) corda.add_party(p);
    corda.add_notary("Notary", /*validating=*/false);
    corda.enable_detection();
    const auto issued =
        corda.issue("Alice", "Cash", to_bytes("100"), {"Alice"}, "Notary");
    EXPECT_TRUE(issued.success) << issued.reason;
    const corda::StateRef ref = corda.vault("Alice").back().ref;
    const auto paid = corda.transact(
        "Alice", {ref}, {corda::OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
        "Notary");
    EXPECT_TRUE(paid.success) << paid.reason;
    net.set_drop_probability(loss);  // reliable channel rides out the loss
    const auto respend = corda.byzantine_respend(
        "Alice", ref, {corda::OutputSpec{"Cash", to_bytes("100"), {"Bob"}}},
        "Notary");
    Transcript t;
    t.success = respend.success;
    t.reason = respend.reason;
    t.evidence_digest = corda.evidence().digest();
    t.evidence_count = corda.evidence().count();
    if (t.evidence_count > 0) {
      t.accused = corda.evidence().entries().front().accused;
      EXPECT_EQ(corda.evidence().entries().front().kind,
                audit::Misbehavior::DoubleSpendAttempt);
    }
    return t;
  }
};

TEST_F(CordaRefusalTest, HonestNotaryRefusesRespendWithSignedEvidence) {
  const Transcript t = run_refusal(0.0);
  EXPECT_FALSE(t.success);
  EXPECT_EQ(t.reason, "double spend rejected by notary");
  // The refusal produced a DoubleSpendAttempt conviction of the client.
  EXPECT_EQ(t.evidence_count, 1u);
  EXPECT_EQ(t.accused, "Alice");
}

TEST_F(CordaRefusalTest, RefusalTranscriptIdenticalUnderTwentyPercentLoss) {
  const Transcript healthy = run_refusal(0.0);
  const Transcript lossy = run_refusal(0.2);
  // Retransmission absorbs the loss: same refusal, same conviction.
  // (The evidence DIGEST legitimately differs across loss rates — it
  // commits to detection time — but the verdict must not.)
  EXPECT_FALSE(lossy.success);
  EXPECT_EQ(lossy.reason, healthy.reason);
  EXPECT_EQ(lossy.evidence_count, healthy.evidence_count);
  EXPECT_EQ(lossy.accused, healthy.accused);
  // And the full transcript is reproducible run-to-run at the same loss.
  EXPECT_EQ(run_refusal(0.2), lossy);
}

// ---------------------------------------------------------------------------
// Randomized chaos: the CI cron job drives this with VEIL_CHAOS_SEED.
// ---------------------------------------------------------------------------

TEST(RandomizedChaos, ByzantineQuorumConvergesUnderRandomSeed) {
  std::uint64_t seed = 9001;
  if (const char* env = std::getenv("VEIL_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  // Echoed so a failing cron run is reproducible locally.
  std::printf("[chaos] VEIL_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));

  auto net_owner = net::make_transport(Rng(seed));
  net::Transport& net = *net_owner;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/1);
  for (const char* n : {"NodeA", "NodeB", "NodeC", "NodeD"}) {
    quorum.add_node(n);
  }
  quorum.enable_detection();
  net.set_drop_probability(0.1);
  net.set_corruption_probability(0.05);

  Rng driver(seed + 1);
  std::string replay_source;
  for (int i = 0; i < 12; ++i) {
    const std::string from = "Node" + std::string(1, "ABCD"[driver.next_below(4)]);
    const std::string to = "Node" + std::string(1, "ABCD"[driver.next_below(4)]);
    if (from == to) continue;
    const auto r = quorum.submit_private(
        from, {to},
        {{"k" + std::to_string(i), to_bytes("v" + std::to_string(i)), false}});
    if (r.accepted && replay_source.empty()) replay_source = r.tx_id;
  }
  quorum.sync();
  // Honest nodes that saw every block agree; at minimum nobody crashed
  // and the stats ledger is self-consistent.
  const net::NetworkStats& s = net.stats();
  EXPECT_EQ(s.messages_dropped,
            s.dropped_random_loss + s.dropped_partition + s.dropped_crashed +
                s.dropped_detached + s.dropped_silenced + s.dropped_quarantined);
  quorum.sync();
  std::uint64_t heights[4] = {};
  std::size_t idx = 0;
  for (const char* n : {"NodeA", "NodeB", "NodeC", "NodeD"}) {
    heights[idx++] = quorum.public_chain(n).height();
  }
  EXPECT_EQ(heights[0], heights[1]);
  EXPECT_EQ(heights[1], heights[2]);
  EXPECT_EQ(heights[2], heights[3]);
  EXPECT_EQ(quorum.public_chain("NodeA").tip_hash(),
            quorum.public_chain("NodeD").tip_hash());
}

}  // namespace
}  // namespace veil
