// Failure injection: privacy mechanisms must fail CLOSED. Lost or
// partitioned traffic may stall commits, but must never cause partial
// commits, replica divergence, or information leaks.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mpc/protocol.hpp"
#include "platforms/fabric/fabric.hpp"

namespace veil {
namespace {

using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest()
      : net_(common::Rng(1234)),
        rng_(1235),
        fab_(net_, crypto::Group::test_group(), rng_) {
    fab_.add_org("OrgA");
    fab_.add_org("OrgB");
    fab_.create_channel("ch", {"OrgA", "OrgB"});
    fab_.install_chaincode("ch", "OrgA", put_contract(),
                           contracts::EndorsementPolicy::require("OrgA"));
  }

  net::SimNetwork net_;
  common::Rng rng_;
  fabric::FabricNetwork fab_;
};

TEST_F(FailureInjectionTest, TotalMessageLossStallsCommit) {
  net_.set_drop_probability(1.0);
  const auto receipt = fab_.submit("ch", "OrgA", "cc", "a", to_bytes("v"));
  EXPECT_FALSE(receipt.committed);
  EXPECT_EQ(receipt.reason, "not delivered");
  // No peer applied anything — fail closed, not partial.
  EXPECT_FALSE(fab_.state("ch", "OrgA").get("k/a").has_value());
  EXPECT_FALSE(fab_.state("ch", "OrgB").get("k/a").has_value());
  EXPECT_EQ(fab_.chain("ch", "OrgA").height(), 0u);
}

TEST_F(FailureInjectionTest, RecoveryAfterLossHeals) {
  net_.set_drop_probability(1.0);
  EXPECT_FALSE(fab_.submit("ch", "OrgA", "cc", "a", to_bytes("v")).committed);
  net_.set_drop_probability(0.0);
  // A fresh submission (fresh endorsement over current state) commits.
  const auto receipt = fab_.submit("ch", "OrgA", "cc", "b", to_bytes("w"));
  EXPECT_TRUE(receipt.committed) << receipt.reason;
  EXPECT_TRUE(fab_.state("ch", "OrgB").get("k/b").has_value());
}

TEST_F(FailureInjectionTest, PartitionFromOrdererStallsBothPeers) {
  // Peers can reach each other but not the orderer's delivery channel.
  net_.set_partitions({{"peer.OrgA", "peer.OrgB"}});
  const auto receipt = fab_.submit("ch", "OrgA", "cc", "a", to_bytes("v"));
  EXPECT_FALSE(receipt.committed);
  // Replica heights agree (both at zero) — no divergence.
  EXPECT_EQ(fab_.chain("ch", "OrgA").height(),
            fab_.chain("ch", "OrgB").height());

  net_.set_partitions({});
  const auto healed = fab_.submit("ch", "OrgA", "cc", "b", to_bytes("w"));
  EXPECT_TRUE(healed.committed);
  EXPECT_EQ(fab_.chain("ch", "OrgA").height(),
            fab_.chain("ch", "OrgB").height());
}

TEST_F(FailureInjectionTest, PartitionOfOnePeerKeepsReplicasConsistent) {
  // Only OrgB is cut off from block delivery.
  net_.set_partitions({{"orderer-org", "peer.OrgA"}, {"peer.OrgB"}});
  const auto receipt = fab_.submit("ch", "OrgA", "cc", "a", to_bytes("v"));
  // OrgA committed, OrgB is behind — but never wrong.
  EXPECT_TRUE(receipt.committed);
  EXPECT_EQ(fab_.chain("ch", "OrgA").height(), 1u);
  EXPECT_EQ(fab_.chain("ch", "OrgB").height(), 0u);
  EXPECT_TRUE(fab_.chain("ch", "OrgB").verify_integrity());
  // And the partitioned peer leaked nothing to anyone.
  EXPECT_TRUE(fab_.chain("ch", "OrgA").verify_integrity());
}

TEST_F(FailureInjectionTest, LossNeverLeaksToOutsiders) {
  fab_.add_org("OrgC");
  net_.set_drop_probability(0.5);
  for (int i = 0; i < 20; ++i) {
    fab_.submit("ch", "OrgA", "cc", "x" + std::to_string(i), to_bytes("v"));
  }
  // Whatever was lost or delivered, the non-member saw nothing.
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgC", "tx/"));
  EXPECT_FALSE(fab_.auditor().saw("peer.OrgC", "net/"));
}

TEST(FailureInjectionMpc, MessageLossIsDetectedNotMiscomputed) {
  // With shares lost, parties reconstruct different values; the protocol
  // must detect the disagreement rather than return a wrong sum.
  const crypto::Shamir field(
      crypto::BigInt::from_decimal("2305843009213693951"));
  net::SimNetwork net{common::Rng(5)};
  net.set_drop_probability(1.0);
  common::Rng rng(6);
  mpc::SecureSum protocol(field, net);
  EXPECT_THROW(protocol.run({{"A", crypto::BigInt(10)},
                             {"B", crypto::BigInt(20)},
                             {"C", crypto::BigInt(30)}},
                            rng),
               common::ProtocolError);
}

TEST(FailureInjectionMpc, CleanNetworkStillWorksAfterFailedRun) {
  const crypto::Shamir field(
      crypto::BigInt::from_decimal("2305843009213693951"));
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  mpc::SecureSum protocol(field, net);
  net.set_drop_probability(1.0);
  EXPECT_THROW(
      protocol.run({{"A", crypto::BigInt(1)}, {"B", crypto::BigInt(2)}}, rng),
      common::ProtocolError);
  net.set_drop_probability(0.0);
  const auto result =
      protocol.run({{"A", crypto::BigInt(1)}, {"B", crypto::BigInt(2)}}, rng);
  EXPECT_EQ(result.value, crypto::BigInt(3));
}

}  // namespace
}  // namespace veil
