// Sharded scale-out chaos suite: the cross-shard atomicity invariant
// under 20% message loss, partition-then-heal with operator redrive,
// and an equivocating coordinator under loss. After every scenario the
// shards must agree per transaction (no commit/abort split), honest
// replicas must converge to bit-identical state roots, and the verified
// composite root must attest the whole deployment or fail closed.
//
// Echo-window sizing: under loss the reliable channel's retry tail
// stretches delivery (default policy: ~155 ms worst case), and conflict
// forwarding adds a second hop. The loss scenarios therefore run with
// echo_window_us = 400 ms — at least twice the retry tail — per the
// sizing rule in docs/fault_model.md.
#include <gtest/gtest.h>

#include "ledger/shard.hpp"
#include "ledger/xshard.hpp"
#include "workload/openloop.hpp"

namespace veil::ledger {
namespace {

using common::to_bytes;

class ShardScaleTest : public ::testing::Test {
 protected:
  ShardScaleTest()
      : net_(common::Rng(700)),
        channel_(net_),
        rng_(701),
        shards_(net_, channel_, crypto::Group::test_group(), rng_, config()),
        coord_(net_, channel_, shards_, crypto::Group::test_group(), rng_) {}

  static ShardConfig config() {
    ShardConfig cfg;
    cfg.shard_count = 2;
    cfg.replicas_per_shard = 1;
    cfg.block_size = 2;
    cfg.echo_window_us = 400'000;  // covers the retry tail twice (see above)
    return cfg;
  }

  std::string key_on(std::uint64_t shard, int seq) const {
    for (int i = 0;; ++i) {
      const std::string k =
          "acct/" + std::to_string(seq) + "/" + std::to_string(i);
      if (shards_.shard_for_key(k) == shard) return k;
    }
  }

  Transaction cross_tx(int seq) const {
    Transaction tx;
    tx.channel = "scale";
    tx.contract = "pay";
    tx.action = "move";
    tx.timestamp = static_cast<common::SimTime>(seq);
    tx.writes.push_back({key_on(0, seq), to_bytes("a"), false});
    tx.writes.push_back({key_on(1, seq), to_bytes("b"), false});
    return tx;
  }

  Transaction local_tx(std::uint64_t shard, int seq) {
    Transaction tx;
    tx.channel = "scale";
    tx.timestamp = static_cast<common::SimTime>(1000 + seq);
    tx.writes.push_back(
        {key_on(shard, 1000 + seq), to_bytes("local"), false});
    return tx;
  }

  /// The headline invariant: per xid, no shard committed while another
  /// aborted; a committed verdict applied the write on BOTH shards.
  void expect_atomic(const Transaction& tx, const std::string& xid) {
    const auto o0 = shards_.outcome(0, xid);
    const auto o1 = shards_.outcome(1, xid);
    const bool c0 = o0 == ShardMap::Outcome::Committed;
    const bool c1 = o1 == ShardMap::Outcome::Committed;
    EXPECT_FALSE(c0 && o1 == ShardMap::Outcome::Aborted) << xid;
    EXPECT_FALSE(c1 && o0 == ShardMap::Outcome::Aborted) << xid;
    EXPECT_EQ(shards_.get(tx.writes[0].key).has_value(), c0) << xid;
    EXPECT_EQ(shards_.get(tx.writes[1].key).has_value(), c1) << xid;
    if (c0 || c1) {
      EXPECT_TRUE(c0 && c1) << xid << ": commit applied on one shard only";
    }
  }

  /// Honest replicas bit-identical after a final flush + resync.
  void expect_replicas_converged() {
    shards_.flush_all();
    net_.run();
    shards_.resync_all();
    net_.run();
    for (std::uint64_t s = 0; s < shards_.shard_count(); ++s) {
      EXPECT_EQ(shards_.replica_root(s, 0), shards_.shard_root(s))
          << "shard " << s << " replica diverged";
    }
    EXPECT_EQ(shards_.verified_composite_root(), shards_.composite_root());
  }

  net::SimNetwork net_;
  net::ReliableChannel channel_;
  common::Rng rng_;
  ShardMap shards_;
  CrossShardCoordinator coord_;
};

TEST_F(ShardScaleTest, AtomicityHoldsAtTwentyPercentLoss) {
  net_.set_drop_probability(0.2);

  std::vector<std::pair<Transaction, std::string>> inflight;
  for (int i = 0; i < 8; ++i) {
    const Transaction tx = cross_tx(i);
    inflight.emplace_back(tx, coord_.begin(tx));
    shards_.submit(local_tx(static_cast<std::uint64_t>(i % 2), i));
  }
  net_.run();
  // A second pass re-arms anything the bounded escalation gave up on.
  shards_.redrive_indoubt();
  net_.run();

  std::size_t commits = 0;
  for (const auto& [tx, xid] : inflight) {
    expect_atomic(tx, xid);
    if (shards_.outcome(0, xid) == ShardMap::Outcome::Committed) ++commits;
  }
  // The reliable channel keeps goodput alive under loss: most commit.
  EXPECT_GE(commits, 4u);
  net_.set_drop_probability(0.0);
  expect_replicas_converged();
}

TEST_F(ShardScaleTest, PartitionThenHealRedriveResolvesInDoubt) {
  // Decision durable but never sent (coordinator dies), then a partition
  // cuts shard 0 off from the standby. Both participants sit prepared;
  // every bounded escalation path stalls fail-closed (no unilateral
  // abort with an incomplete reply set — a silent shard might have
  // applied). Healing plus an operator redrive lets the standby gather
  // the full prepared-only reply set and abort both sides.
  coord_.arm_crash(CrossShardCoordinator::CrashPoint::AfterDecisionLog);
  const Transaction tx = cross_tx(50);
  const std::string xid = coord_.begin(tx);
  net_.schedule(net_.clock().now() + 3'000, [&] {
    net_.set_partitions(
        {{shards_.primary(0), shards_.primary(0) + "-r0"},
         {shards_.primary(1), shards_.primary(1) + "-r0", coord_.name(),
          coord_.standby_name()}});
  });
  net_.run();

  // Wedged: both prepared, nobody decided, escalation gave up cleanly.
  ASSERT_EQ(shards_.outcome(0, xid), ShardMap::Outcome::Prepared);
  ASSERT_EQ(shards_.outcome(1, xid), ShardMap::Outcome::Prepared);
  EXPECT_GE(shards_.stats().indoubt_stalled + coord_.stats().failover_stalled,
            1u);
  // Locks held while in doubt: the shard-0 key is untouchable.
  Transaction blocked;
  blocked.channel = "scale";
  blocked.timestamp = 51;
  blocked.writes.push_back({tx.writes[0].key, to_bytes("nope"), false});
  EXPECT_FALSE(shards_.submit(blocked).accepted);

  net_.set_partitions({});
  shards_.redrive_indoubt();
  net_.run();

  EXPECT_EQ(shards_.outcome(0, xid), ShardMap::Outcome::Aborted);
  EXPECT_EQ(shards_.outcome(1, xid), ShardMap::Outcome::Aborted);
  EXPECT_GE(coord_.stats().failover_recoveries, 1u);
  EXPECT_GE(net_.stats().xshard_failovers, 1u);
  expect_atomic(tx, xid);
  expect_replicas_converged();
}

TEST_F(ShardScaleTest, StandbyCompletesPartiallyDeliveredCommit) {
  // Shard 1 crashes right after voting yes; the coordinator commits,
  // reaches only shard 0, and dies. Shard 0 finalizes its commit alone
  // (the echo to the dead shard 1 exhausts its retries). The restarted
  // shard 1 escalates to the standby, whose full reply set contains
  // shard 0's durable commit certificate — the standby re-signs the
  // commit and shard 1 (fenced by its query answer) applies it.
  shards_.arm_primary_crash(1, ShardMap::PCrashPoint::AfterVoteSend);
  coord_.arm_crash(CrossShardCoordinator::CrashPoint::AfterFirstDecisionSend);
  const Transaction tx = cross_tx(55);
  const std::string xid = coord_.begin(tx);
  net_.schedule(net_.clock().now() + 500'000,
                [&] { net_.restart(shards_.primary(1)); });
  net_.run();

  EXPECT_EQ(shards_.outcome(0, xid), ShardMap::Outcome::Committed);
  EXPECT_EQ(shards_.outcome(1, xid), ShardMap::Outcome::Committed);
  EXPECT_GE(coord_.stats().failover_recoveries, 1u);
  EXPECT_GE(net_.stats().xshard_failovers, 1u);
  expect_atomic(tx, xid);
  expect_replicas_converged();
}

TEST_F(ShardScaleTest, EquivocatingCoordinatorUnderLossNeverSplits) {
  net_.set_drop_probability(0.1);
  coord_.set_equivocate(true);
  const Transaction tx = cross_tx(60);
  const std::string xid = coord_.begin(tx);
  net_.run();
  shards_.redrive_indoubt();
  net_.run();

  expect_atomic(tx, xid);
  // If both sides of the equivocation survived the loss, the conviction
  // fired: evidence recorded, coordinator quarantined, everyone aborted.
  if (shards_.stats().echo_conflicts > 0) {
    ASSERT_GE(shards_.evidence().entries().size(), 1u);
    EXPECT_EQ(shards_.evidence().entries()[0].kind,
              audit::Misbehavior::CoordinatorEquivocation);
    EXPECT_TRUE(net_.is_quarantined(coord_.name()));
    EXPECT_NE(shards_.outcome(0, xid), ShardMap::Outcome::Committed);
    EXPECT_NE(shards_.outcome(1, xid), ShardMap::Outcome::Committed);
  }
  net_.set_drop_probability(0.0);
  net_.release(coord_.name());
  expect_replicas_converged();
}

TEST_F(ShardScaleTest, CrashDuringLossyTrafficStaysAtomic) {
  net_.set_drop_probability(0.2);
  shards_.arm_primary_crash(1, ShardMap::PCrashPoint::AfterVoteSend);
  std::vector<std::pair<Transaction, std::string>> inflight;
  for (int i = 70; i < 74; ++i) {
    const Transaction tx = cross_tx(i);
    inflight.emplace_back(tx, coord_.begin(tx));
  }
  net_.schedule(net_.clock().now() + 150'000,
                [&] { net_.restart(shards_.primary(1)); });
  net_.run();
  shards_.redrive_indoubt();
  net_.run();

  for (const auto& [tx, xid] : inflight) expect_atomic(tx, xid);
  net_.set_drop_probability(0.0);
  expect_replicas_converged();
}

TEST_F(ShardScaleTest, ZipfCrossShardWorkloadDrives2pc) {
  // The bench_scale workload path in miniature: an open-loop Zipf
  // schedule with a 30% cross-party mix, routed through submit() for
  // single-shard arrivals and the coordinator for cross-shard ones.
  workload::OpenLoopConfig wcfg;
  wcfg.offered_per_s = 2'000.0;
  wcfg.arrivals = 60;
  wcfg.parties = 40;
  wcfg.zipf_s = 1.0;
  wcfg.cross_fraction = 0.3;
  workload::OpenLoopGenerator gen(wcfg, 99);
  const std::vector<workload::Arrival> schedule = gen.generate();

  std::size_t cross = 0, xid_count = 0;
  std::vector<std::pair<Transaction, std::string>> inflight;
  for (const workload::Arrival& a : schedule) {
    const std::string ka = "party/" + std::to_string(a.party) + "/bal";
    Transaction tx;
    tx.channel = "scale";
    tx.timestamp = a.at;
    tx.writes.push_back({ka, to_bytes("v"), false});
    if (a.cross) {
      ++cross;
      const std::string kb = "party/" + std::to_string(a.party_b) + "/bal";
      tx.writes.push_back({kb, to_bytes("w"), false});
      if (shards_.shard_for_key(ka) != shards_.shard_for_key(kb)) {
        inflight.emplace_back(tx, coord_.begin(tx));
        ++xid_count;
        continue;
      }
    }
    shards_.submit(tx);  // single-shard (locked keys may refuse; fine)
  }
  net_.run();

  EXPECT_GT(cross, 0u);
  EXPECT_GT(xid_count, 0u);
  for (const auto& [tx, xid] : inflight) {
    const auto o0 = shards_.outcome(shards_.shard_for_key(tx.writes[0].key), xid);
    const auto o1 = shards_.outcome(shards_.shard_for_key(tx.writes[1].key), xid);
    const bool split = (o0 == ShardMap::Outcome::Committed &&
                        o1 == ShardMap::Outcome::Aborted) ||
                       (o1 == ShardMap::Outcome::Committed &&
                        o0 == ShardMap::Outcome::Aborted);
    EXPECT_FALSE(split) << xid;
  }
  EXPECT_GT(shards_.stats().xcommitted + shards_.stats().committed, 0u);
  expect_replicas_converged();
}

}  // namespace
}  // namespace veil::ledger
