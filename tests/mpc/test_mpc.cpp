#include "mpc/protocol.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::mpc {
namespace {

using crypto::BigInt;

const char* kPrime = "2305843009213693951";  // 2^61 - 1

class MpcTest : public ::testing::Test {
 protected:
  crypto::Shamir field_{BigInt::from_decimal(kPrime)};
  net::SimNetwork net_{common::Rng(99)};
  common::Rng rng_{100};
};

TEST_F(MpcTest, SecureSumCorrect) {
  SecureSum protocol(field_, net_);
  const auto result = protocol.run(
      {{"A", BigInt(100)}, {"B", BigInt(250)}, {"C", BigInt(7)}}, rng_);
  EXPECT_EQ(result.value, BigInt(357));
  EXPECT_EQ(result.rounds, 2);
}

TEST_F(MpcTest, TwoPartyMinimum) {
  SecureSum protocol(field_, net_);
  const auto result =
      protocol.run({{"A", BigInt(5)}, {"B", BigInt(6)}}, rng_);
  EXPECT_EQ(result.value, BigInt(11));
  EXPECT_THROW(protocol.run({{"A", BigInt(1)}}, rng_),
               common::ProtocolError);
}

TEST_F(MpcTest, ZeroInputsAllowed) {
  SecureSum protocol(field_, net_);
  const auto result =
      protocol.run({{"A", BigInt(0)}, {"B", BigInt(0)}}, rng_);
  EXPECT_TRUE(result.value.is_zero());
}

TEST_F(MpcTest, NoPartyObservesAnotherInput) {
  // §2.2: "no private values need to be shared between parties".
  SecureSum protocol(field_, net_);
  protocol.run({{"A", BigInt(11)}, {"B", BigInt(22)}, {"C", BigInt(33)}},
               rng_);
  for (const char* owner : {"A", "B", "C"}) {
    for (const char* other : {"A", "B", "C"}) {
      const bool saw = net_.auditor().saw(
          owner, std::string("mpc/input/") + other);
      EXPECT_EQ(saw, std::string(owner) == other)
          << owner << " vs " << other;
    }
  }
}

TEST_F(MpcTest, MessageComplexityIsQuadratic) {
  SecureSum protocol(field_, net_);
  const auto result = protocol.run(
      {{"A", BigInt(1)}, {"B", BigInt(2)}, {"C", BigInt(3)}, {"D", BigInt(4)}},
      rng_);
  // Two rounds of all-to-all among n parties: 2 * n * (n-1).
  EXPECT_EQ(result.messages_exchanged, 2u * 4u * 3u);
}

TEST_F(MpcTest, LargeInputsNearFieldBoundaryWrap) {
  // Sums are modular in the field: callers must size the field to the
  // domain (documented behaviour).
  const BigInt prime = BigInt::from_decimal(kPrime);
  SecureSum protocol(field_, net_);
  const auto result = protocol.run(
      {{"A", prime - BigInt(1)}, {"B", BigInt(3)}}, rng_);
  EXPECT_EQ(result.value, BigInt(2));
}

TEST_F(MpcTest, DeterministicGivenSeeds) {
  net::SimNetwork net1{common::Rng(5)}, net2{common::Rng(5)};
  common::Rng r1(6), r2(6);
  SecureSum p1(field_, net1), p2(field_, net2);
  const std::map<std::string, BigInt> inputs = {{"A", BigInt(10)},
                                                {"B", BigInt(20)}};
  EXPECT_EQ(p1.run(inputs, r1).value, p2.run(inputs, r2).value);
}

TEST_F(MpcTest, SecretBallotTally) {
  const auto result = secret_ballot(
      field_, net_,
      {{"A", true}, {"B", false}, {"C", true}, {"D", true}, {"E", false}},
      rng_);
  EXPECT_EQ(result.yes, 3u);
  EXPECT_EQ(result.no, 2u);
}

TEST_F(MpcTest, UnanimousBallots) {
  const auto all_yes =
      secret_ballot(field_, net_, {{"A", true}, {"B", true}}, rng_);
  EXPECT_EQ(all_yes.yes, 2u);
  EXPECT_EQ(all_yes.no, 0u);
  const auto all_no =
      secret_ballot(field_, net_, {{"A", false}, {"B", false}}, rng_);
  EXPECT_EQ(all_no.yes, 0u);
  EXPECT_EQ(all_no.no, 2u);
}

TEST_F(MpcTest, BallotPrivacy) {
  secret_ballot(field_, net_, {{"Voter1", true}, {"Voter2", false}}, rng_);
  EXPECT_FALSE(net_.auditor().saw("Voter1", "mpc/input/Voter2"));
  EXPECT_FALSE(net_.auditor().saw("Voter2", "mpc/input/Voter1"));
}

TEST_F(MpcTest, PartiesDetachedAfterRun) {
  SecureSum protocol(field_, net_);
  protocol.run({{"A", BigInt(1)}, {"B", BigInt(2)}}, rng_);
  EXPECT_FALSE(net_.attached("A"));
  EXPECT_FALSE(net_.attached("B"));
  // Network is reusable for a second run.
  const auto again = protocol.run({{"A", BigInt(3)}, {"B", BigInt(4)}}, rng_);
  EXPECT_EQ(again.value, BigInt(7));
}

class MpcPartyCounts : public ::testing::TestWithParam<int> {};

TEST_P(MpcPartyCounts, SumScalesWithParties) {
  crypto::Shamir field(BigInt::from_decimal(kPrime));
  net::SimNetwork net{common::Rng(GetParam())};
  common::Rng rng(GetParam() + 1);
  SecureSum protocol(field, net);
  std::map<std::string, BigInt> inputs;
  std::uint64_t expected = 0;
  for (int i = 0; i < GetParam(); ++i) {
    inputs["P" + std::to_string(i)] = BigInt(static_cast<std::uint64_t>(i * 7));
    expected += static_cast<std::uint64_t>(i * 7);
  }
  EXPECT_EQ(protocol.run(inputs, rng).value, BigInt(expected));
}

INSTANTIATE_TEST_SUITE_P(Counts, MpcPartyCounts,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace veil::mpc
