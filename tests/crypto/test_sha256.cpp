#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/bytes.hpp"

namespace veil::crypto {
namespace {

using common::to_bytes;

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(sha256(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finalize(), sha256(msg)) << "split=" << split;
  }
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding around the 55/56/64-byte boundaries.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    for (char c : msg) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), sha256(msg)) << "len=" << len;
  }
}

TEST(Sha256, DoubleFinalizeThrows) {
  Sha256 h;
  h.update(std::string_view("x"));
  h.finalize();
  EXPECT_THROW(h.finalize(), common::CryptoError);
}

TEST(Sha256, UpdateAfterFinalizeThrows) {
  Sha256 h;
  h.finalize();
  EXPECT_THROW(h.update(std::string_view("x")), common::CryptoError);
}

TEST(Sha256, DigestBytesMatchesHex) {
  const Digest d = sha256(std::string_view("abc"));
  EXPECT_EQ(common::to_hex(digest_bytes(d)), digest_hex(d));
}

}  // namespace
}  // namespace veil::crypto
