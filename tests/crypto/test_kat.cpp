// NIST known-answer tests run against EVERY available kernel.
//
// The hardware kernels (AES-NI, SHA-NI) and the software fallbacks
// (T-table, scalar) must be indistinguishable through the public API;
// each vector below is checked once per kernel, and the kernels are then
// cross-checked against each other on random inputs — sizes chosen to
// hit the 8-wide/4-wide SIMD main loops, their scalar tails, and the
// incremental-buffer edge cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace veil::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_hex;

// Restores CPUID dispatch no matter how a test exits.
struct KernelGuard {
  ~KernelGuard() {
    set_aes_kernel(AesKernel::Auto);
    set_sha256_kernel(Sha256Kernel::Auto);
  }
};

std::vector<AesKernel> available_aes_kernels() {
  std::vector<AesKernel> ks{AesKernel::Reference, AesKernel::TTable};
  set_aes_kernel(AesKernel::AesNi);
  if (active_aes_kernel() == AesKernel::AesNi) ks.push_back(AesKernel::AesNi);
  set_aes_kernel(AesKernel::Auto);
  return ks;
}

std::vector<Sha256Kernel> available_sha_kernels() {
  std::vector<Sha256Kernel> ks{Sha256Kernel::Scalar};
  set_sha256_kernel(Sha256Kernel::ShaNi);
  if (active_sha256_kernel() == Sha256Kernel::ShaNi) {
    ks.push_back(Sha256Kernel::ShaNi);
  }
  set_sha256_kernel(Sha256Kernel::Auto);
  return ks;
}

// NIST SP 800-38A F.5.1/F.5.2: AES-128 CTR, four blocks.
TEST(Kat, Sp800_38aAes128Ctr) {
  KernelGuard guard;
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes ctr = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expect =
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee";
  for (const AesKernel k : available_aes_kernels()) {
    set_aes_kernel(k);
    EXPECT_EQ(to_hex(aes_ctr(key, ctr, plain)), expect)
        << "kernel=" << aes_kernel_name();
    // CTR is an involution.
    EXPECT_EQ(aes_ctr(key, ctr, aes_ctr(key, ctr, plain)), plain);
  }
}

// NIST SP 800-38A F.5.5/F.5.6: AES-256 CTR, four blocks.
TEST(Kat, Sp800_38aAes256Ctr) {
  KernelGuard guard;
  const Bytes key = from_hex(
      "603deb1015ca71be2b73aef0857d7781"
      "1f352c073b6108d72d9810a30914dff4");
  const Bytes ctr = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expect =
      "601ec313775789a5b7a7f504bbf3d228"
      "f443e3ca4d62b59aca84e990cacaf5c5"
      "2b0930daa23de94ce87017ba2d84988d"
      "dfc9c58db67aada613c2dd08457941a6";
  for (const AesKernel k : available_aes_kernels()) {
    set_aes_kernel(k);
    EXPECT_EQ(to_hex(aes_ctr(key, ctr, plain)), expect)
        << "kernel=" << aes_kernel_name();
  }
}

// FIPS 180-4 single-block, two-block, and long multi-block messages.
TEST(Kat, Fips180_4Sha256) {
  KernelGuard guard;
  for (const Sha256Kernel k : available_sha_kernels()) {
    set_sha256_kernel(k);
    EXPECT_EQ(digest_hex(sha256(std::string_view("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad")
        << "kernel=" << sha256_kernel_name();
    EXPECT_EQ(digest_hex(sha256(std::string_view(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1")
        << "kernel=" << sha256_kernel_name();
    // One million 'a': 15625 blocks through the bulk path.
    const std::string million(1000000, 'a');
    EXPECT_EQ(digest_hex(sha256(std::string_view(million))),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0")
        << "kernel=" << sha256_kernel_name();
  }
}

// RFC 4231 test cases 1, 2, 6 and 7 (short key, short data; key shorter
// than a block; key and data longer than a block).
TEST(Kat, Rfc4231HmacSha256) {
  KernelGuard guard;
  const Bytes key1(20, 0x0b);
  const Bytes key6(131, 0xaa);
  for (const Sha256Kernel k : available_sha_kernels()) {
    set_sha256_kernel(k);
    EXPECT_EQ(digest_hex(hmac_sha256(key1, common::to_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7")
        << "kernel=" << sha256_kernel_name();
    EXPECT_EQ(
        digest_hex(hmac_sha256(common::to_bytes("Jefe"),
                               common::to_bytes("what do ya want for nothing?"))),
        "5bdcc146bf60754e6a042426089575c7"
        "5a003f089d2739839dec58b964ec3843")
        << "kernel=" << sha256_kernel_name();
    EXPECT_EQ(
        digest_hex(hmac_sha256(
            key6, common::to_bytes(
                      "Test Using Larger Than Block-Size Key - Hash Key First"))),
        "60e431591ee0b67f0d8a26aacbf5b77f"
        "8e0bc6213728c5140546040f0ee37f54")
        << "kernel=" << sha256_kernel_name();
    EXPECT_EQ(
        digest_hex(hmac_sha256(
            key6,
            common::to_bytes("This is a test using a larger than block-size "
                             "key and a larger than block-size data. The key "
                             "needs to be hashed before being used by the "
                             "HMAC algorithm."))),
        "9b09ffa71b942fcb27635fbcd5b0e944"
        "bfdc63644f0713938a7f51535c3a35e2")
        << "kernel=" << sha256_kernel_name();
  }
}

// All AES kernels must agree bit-for-bit on random inputs. Lengths cover
// the 8-wide CTR main loop, the block tail, and sub-block tails.
TEST(Kat, AesKernelsAgreeOnRandomInputs) {
  KernelGuard guard;
  common::Rng rng(0xae5'cafe);
  const std::vector<AesKernel> kernels = available_aes_kernels();
  for (const std::size_t key_len : {16u, 32u}) {
    const Bytes key = rng.next_bytes(key_len);
    const Bytes iv = rng.next_bytes(16);
    for (const std::size_t len : {0u, 1u, 15u, 16u, 17u, 127u, 128u, 129u,
                                  1000u, 4096u}) {
      const Bytes data = rng.next_bytes(len);
      set_aes_kernel(kernels[0]);
      const Bytes ref_ctr = aes_ctr(key, iv, data);
      const Bytes ref_cbc = aes_cbc_encrypt(key, iv, data);
      for (std::size_t i = 1; i < kernels.size(); ++i) {
        set_aes_kernel(kernels[i]);
        EXPECT_EQ(aes_ctr(key, iv, data), ref_ctr)
            << "kernel=" << aes_kernel_name() << " len=" << len;
        EXPECT_EQ(aes_cbc_encrypt(key, iv, data), ref_cbc)
            << "kernel=" << aes_kernel_name() << " len=" << len;
        const auto back = aes_cbc_decrypt(key, iv, ref_cbc);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, data)
            << "kernel=" << aes_kernel_name() << " len=" << len;
      }
    }
  }
}

// Both SHA kernels must agree through arbitrary incremental chunkings,
// which exercises the partial-buffer path around the bulk path.
TEST(Kat, ShaKernelsAgreeOnRandomChunkings) {
  KernelGuard guard;
  common::Rng rng(0x5a'5a'5a);
  const std::vector<Sha256Kernel> kernels = available_sha_kernels();
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes data = rng.next_bytes(1 + rng.next_below(2000));
    std::vector<Digest> digests;
    for (const Sha256Kernel k : kernels) {
      set_sha256_kernel(k);
      Sha256 hasher;
      std::size_t off = 0;
      common::Rng chunker(trial);  // same chunking across kernels
      while (off < data.size()) {
        const std::size_t take =
            std::min<std::size_t>(1 + chunker.next_below(200),
                                  data.size() - off);
        hasher.update(common::BytesView(data.data() + off, take));
        off += take;
      }
      digests.push_back(hasher.finalize());
    }
    for (std::size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0]) << "trial=" << trial;
    }
  }
}

// seal/open must round-trip identically regardless of kernel, and a
// ciphertext sealed by one kernel must open under another.
TEST(Kat, SealOpenCrossKernel) {
  KernelGuard guard;
  common::Rng rng(7);
  const Bytes key = rng.next_bytes(32);
  const Bytes nonce = rng.next_bytes(16);
  const Bytes msg = rng.next_bytes(333);
  std::vector<Bytes> sealed;
  for (const AesKernel k : available_aes_kernels()) {
    set_aes_kernel(k);
    sealed.push_back(seal(key, msg, nonce));
  }
  for (std::size_t i = 1; i < sealed.size(); ++i) {
    EXPECT_EQ(sealed[i], sealed[0]);
  }
  for (const AesKernel k : available_aes_kernels()) {
    set_aes_kernel(k);
    const auto opened = open(key, sealed[0]);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
  }
}

}  // namespace
}  // namespace veil::crypto
