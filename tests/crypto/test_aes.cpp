#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace veil::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_bytes;

// FIPS 197 Appendix C.1: AES-128 single-block known answer.
TEST(Aes, Fips197Aes128Block) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes plain = from_hex("00112233445566778899aabbccddeeff");
  const Aes cipher(key);
  std::uint8_t out[16];
  cipher.encrypt_block(plain.data(), out);
  EXPECT_EQ(common::to_hex(common::BytesView(out, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  cipher.decrypt_block(out, back);
  EXPECT_EQ(common::to_hex(common::BytesView(back, 16)),
            common::to_hex(plain));
}

// FIPS 197 Appendix C.3: AES-256 single-block known answer.
TEST(Aes, Fips197Aes256Block) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes plain = from_hex("00112233445566778899aabbccddeeff");
  const Aes cipher(key);
  std::uint8_t out[16];
  cipher.encrypt_block(plain.data(), out);
  EXPECT_EQ(common::to_hex(common::BytesView(out, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A F.5.1: AES-128-CTR.
TEST(Aes, Sp80038aCtr128) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes nonce = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes_ctr(key, nonce, plain);
  EXPECT_EQ(common::to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
  EXPECT_EQ(aes_ctr(key, nonce, ct), plain);
}

TEST(Aes, InvalidKeySizeThrows) {
  EXPECT_THROW(Aes(Bytes(15, 0)), common::CryptoError);
  EXPECT_THROW(Aes(Bytes(24, 0)), common::CryptoError);  // AES-192 unsupported
  EXPECT_THROW(Aes(Bytes(0, 0)), common::CryptoError);
}

TEST(Aes, CtrRejectsBadNonce) {
  EXPECT_THROW(aes_ctr(Bytes(16, 1), Bytes(8, 0), Bytes{1}),
               common::CryptoError);
}

TEST(Aes, CbcRoundTripVariousLengths) {
  common::Rng rng(1);
  const Bytes key = rng.next_bytes(32);
  const Bytes iv = rng.next_bytes(16);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
    const Bytes plain = rng.next_bytes(len);
    const Bytes ct = aes_cbc_encrypt(key, iv, plain);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), plain.size());  // always padded
    const auto back = aes_cbc_decrypt(key, iv, ct);
    ASSERT_TRUE(back.has_value()) << "len=" << len;
    EXPECT_EQ(*back, plain);
  }
}

TEST(Aes, CbcWrongKeyFailsPadding) {
  common::Rng rng(2);
  const Bytes key = rng.next_bytes(16);
  const Bytes iv = rng.next_bytes(16);
  const Bytes ct = aes_cbc_encrypt(key, iv, to_bytes("attack at dawn"));
  // Overwhelmingly likely to fail the padding check with the wrong key.
  const auto out = aes_cbc_decrypt(rng.next_bytes(16), iv, ct);
  if (out) {
    EXPECT_NE(*out, to_bytes("attack at dawn"));
  }
}

TEST(Aes, CbcMalformedCiphertext) {
  const Bytes key(16, 7);
  const Bytes iv(16, 9);
  EXPECT_EQ(aes_cbc_decrypt(key, iv, Bytes{}), std::nullopt);
  EXPECT_EQ(aes_cbc_decrypt(key, iv, Bytes(15, 0)), std::nullopt);
}

TEST(Aes, SealOpenRoundTrip) {
  common::Rng rng(3);
  const Bytes key = rng.next_bytes(32);
  const Bytes msg = to_bytes("confidential trade data");
  const Bytes sealed = seal(key, msg, rng.next_bytes(16));
  const auto opened = open(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(Aes, OpenRejectsWrongKey) {
  common::Rng rng(4);
  const Bytes sealed = seal(rng.next_bytes(32), to_bytes("m"), rng.next_bytes(16));
  EXPECT_EQ(open(rng.next_bytes(32), sealed), std::nullopt);
}

TEST(Aes, OpenRejectsTamperedCiphertext) {
  common::Rng rng(5);
  const Bytes key = rng.next_bytes(32);
  Bytes sealed = seal(key, to_bytes("message"), rng.next_bytes(16));
  for (std::size_t i : {std::size_t{0}, std::size_t{16}, sealed.size() - 1}) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_EQ(open(key, tampered), std::nullopt) << "flip at " << i;
  }
}

TEST(Aes, OpenRejectsTruncated) {
  common::Rng rng(6);
  const Bytes key = rng.next_bytes(32);
  const Bytes sealed = seal(key, to_bytes("message"), rng.next_bytes(16));
  EXPECT_EQ(open(key, common::BytesView(sealed.data(), 40)), std::nullopt);
  EXPECT_EQ(open(key, Bytes{}), std::nullopt);
}

TEST(Aes, SealEmptyPlaintext) {
  common::Rng rng(7);
  const Bytes key = rng.next_bytes(32);
  const Bytes sealed = seal(key, Bytes{}, rng.next_bytes(16));
  const auto opened = open(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace veil::crypto
