#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

using common::Bytes;
using common::from_hex;
using common::to_bytes;

// RFC 4231 test vectors for HMAC-SHA256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      digest_hex(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      digest_hex(hmac_sha256(
          key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), msg),
            hmac_sha256(to_bytes("key2"), msg));
}

// RFC 5869 test vector A.1 (SHA-256).
TEST(Hkdf, Rfc5869CaseA1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Digest prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(digest_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  // info = 0xf0f1...f9, L = 42
  const std::string info = "\xf0\xf1\xf2\xf3\xf4\xf5\xf6\xf7\xf8\xf9";
  const Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(common::to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, EmptySaltUsesZeros) {
  const Bytes ikm = to_bytes("input");
  // Must not throw, and must be deterministic.
  const Bytes a = hkdf({}, ikm, "ctx", 32);
  const Bytes b = hkdf({}, ikm, "ctx", 32);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);
}

TEST(Hkdf, InfoSeparatesKeys) {
  const Bytes ikm = to_bytes("shared-secret");
  EXPECT_NE(hkdf({}, ikm, "enc", 32), hkdf({}, ikm, "mac", 32));
}

TEST(Hkdf, LongOutput) {
  const Bytes okm = hkdf({}, to_bytes("x"), "stretch", 100);
  EXPECT_EQ(okm.size(), 100u);
}

TEST(Hkdf, TooLongOutputThrows) {
  EXPECT_THROW(hkdf({}, to_bytes("x"), "y", 255 * 32 + 1),
               common::CryptoError);
}

}  // namespace
}  // namespace veil::crypto
