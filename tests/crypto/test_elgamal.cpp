#include "crypto/elgamal.hpp"

#include <gtest/gtest.h>

namespace veil::crypto {
namespace {

using common::to_bytes;

class ElGamalTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  common::Rng rng_{4242};
  KeyPair recipient_ = KeyPair::generate(group_, rng_);
};

TEST_F(ElGamalTest, EncryptDecryptRoundTrip) {
  const auto ct = elgamal_encrypt(group_, recipient_.public_key(),
                                  to_bytes("wire instructions"), rng_);
  const auto pt = elgamal_decrypt(recipient_, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, to_bytes("wire instructions"));
}

TEST_F(ElGamalTest, WrongRecipientCannotDecrypt) {
  const KeyPair other = KeyPair::generate(group_, rng_);
  const auto ct = elgamal_encrypt(group_, recipient_.public_key(),
                                  to_bytes("m"), rng_);
  EXPECT_FALSE(elgamal_decrypt(other, ct).has_value());
}

TEST_F(ElGamalTest, CiphertextIsRandomized) {
  const auto a =
      elgamal_encrypt(group_, recipient_.public_key(), to_bytes("m"), rng_);
  const auto b =
      elgamal_encrypt(group_, recipient_.public_key(), to_bytes("m"), rng_);
  EXPECT_NE(a.ephemeral_key, b.ephemeral_key);
  EXPECT_NE(a.sealed, b.sealed);
}

TEST_F(ElGamalTest, TamperingDetected) {
  auto ct = elgamal_encrypt(group_, recipient_.public_key(),
                            to_bytes("payload"), rng_);
  ct.sealed[ct.sealed.size() / 2] ^= 0x01;
  EXPECT_FALSE(elgamal_decrypt(recipient_, ct).has_value());
}

TEST_F(ElGamalTest, SwappedEphemeralKeyDetected) {
  const auto a = elgamal_encrypt(group_, recipient_.public_key(),
                                 to_bytes("m1"), rng_);
  auto b = elgamal_encrypt(group_, recipient_.public_key(),
                           to_bytes("m2"), rng_);
  b.ephemeral_key = a.ephemeral_key;  // mix-and-match
  EXPECT_FALSE(elgamal_decrypt(recipient_, b).has_value());
}

TEST_F(ElGamalTest, RejectsNonGroupEphemeralKey) {
  auto ct = elgamal_encrypt(group_, recipient_.public_key(),
                            to_bytes("m"), rng_);
  ct.ephemeral_key = BigInt(0);
  EXPECT_FALSE(elgamal_decrypt(recipient_, ct).has_value());
  ct.ephemeral_key = group_.p() + BigInt(7);
  EXPECT_FALSE(elgamal_decrypt(recipient_, ct).has_value());
}

TEST_F(ElGamalTest, EmptyAndLargePayloads) {
  for (std::size_t n : {0u, 1u, 4096u}) {
    const common::Bytes payload = rng_.next_bytes(n);
    const auto ct =
        elgamal_encrypt(group_, recipient_.public_key(), payload, rng_);
    const auto pt = elgamal_decrypt(recipient_, ct);
    ASSERT_TRUE(pt.has_value()) << n;
    EXPECT_EQ(*pt, payload);
  }
}

TEST_F(ElGamalTest, EncodingRoundTrip) {
  const auto ct = elgamal_encrypt(group_, recipient_.public_key(),
                                  to_bytes("serialize me"), rng_);
  const auto decoded = ElGamalCiphertext::decode(ct.encode());
  const auto pt = elgamal_decrypt(recipient_, decoded);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, to_bytes("serialize me"));
  EXPECT_GT(ct.size(), 0u);
}

TEST_F(ElGamalTest, CertificateBoundEncryption) {
  // Typical use: encrypt to a key found in a counterparty's certificate.
  const auto ct = elgamal_encrypt(
      group_, PublicKey{recipient_.public_key().y}, to_bytes("via-cert"),
      rng_);
  EXPECT_EQ(elgamal_decrypt(recipient_, ct), to_bytes("via-cert"));
}

}  // namespace
}  // namespace veil::crypto
