#include "crypto/commitment.hpp"

#include <gtest/gtest.h>

namespace veil::crypto {
namespace {

class PedersenTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  Pedersen pedersen_{group_};
  common::Rng rng_{77};
};

TEST_F(PedersenTest, CommitOpenRoundTrip) {
  auto [commitment, opening] = pedersen_.commit(BigInt(42), rng_);
  EXPECT_TRUE(pedersen_.open(commitment, opening));
}

TEST_F(PedersenTest, WrongValueFailsOpen) {
  auto [commitment, opening] = pedersen_.commit(BigInt(42), rng_);
  Opening wrong = opening;
  wrong.value = BigInt(43);
  EXPECT_FALSE(pedersen_.open(commitment, wrong));
}

TEST_F(PedersenTest, WrongBlindingFailsOpen) {
  auto [commitment, opening] = pedersen_.commit(BigInt(42), rng_);
  Opening wrong = opening;
  wrong.blinding = (wrong.blinding + BigInt(1)) % group_.q();
  EXPECT_FALSE(pedersen_.open(commitment, wrong));
}

TEST_F(PedersenTest, HidingSameValueDifferentCommitments) {
  auto [c1, o1] = pedersen_.commit(BigInt(7), rng_);
  auto [c2, o2] = pedersen_.commit(BigInt(7), rng_);
  EXPECT_NE(c1, c2);  // fresh blinding hides equality of values
}

TEST_F(PedersenTest, HomomorphicAddition) {
  auto [c1, o1] = pedersen_.commit(BigInt(30), rng_);
  auto [c2, o2] = pedersen_.commit(BigInt(12), rng_);
  const Commitment sum = pedersen_.add(c1, c2);
  const Opening sum_opening = pedersen_.add_openings(o1, o2);
  EXPECT_EQ(sum_opening.value, BigInt(42));
  EXPECT_TRUE(pedersen_.open(sum, sum_opening));
}

TEST_F(PedersenTest, CommitZero) {
  auto [commitment, opening] = pedersen_.commit(BigInt(0), rng_);
  EXPECT_TRUE(pedersen_.open(commitment, opening));
  // A commitment to zero is h^r, never the identity for r != 0.
  EXPECT_NE(commitment.c, BigInt(1));
}

TEST_F(PedersenTest, ValueReducedModQ) {
  const BigInt big = group_.q() + BigInt(5);
  auto [c1, o1] = pedersen_.commit(big, rng_);
  const Commitment c2 = pedersen_.commit_with(BigInt(5), o1.blinding);
  EXPECT_EQ(c1, c2);
}

TEST_F(PedersenTest, CommitmentIsGroupElement) {
  auto [commitment, opening] = pedersen_.commit(BigInt(999), rng_);
  EXPECT_TRUE(group_.is_element(commitment.c));
}

class PedersenHomomorphism
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PedersenHomomorphism, SumsCommute) {
  const Group& group = Group::test_group();
  const Pedersen pedersen(group);
  common::Rng rng(101);
  const auto [a, b] = GetParam();
  auto [ca, oa] = pedersen.commit(BigInt(a), rng);
  auto [cb, ob] = pedersen.commit(BigInt(b), rng);
  EXPECT_EQ(pedersen.add(ca, cb), pedersen.add(cb, ca));
  const Opening sum = pedersen.add_openings(oa, ob);
  EXPECT_TRUE(pedersen.open(pedersen.add(ca, cb), sum));
}

INSTANTIATE_TEST_SUITE_P(Pairs, PedersenHomomorphism,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 0},
                                           std::pair{100, 200},
                                           std::pair{65535, 1},
                                           std::pair{123456, 654321}));

}  // namespace
}  // namespace veil::crypto
