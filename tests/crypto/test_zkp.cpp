#include "crypto/zkp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

using common::to_bytes;

class ZkpTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  Pedersen pedersen_{group_};
  common::Rng rng_{2024};
};

// --- Dlog proofs (ZKP of identity) ------------------------------------------

TEST_F(ZkpTest, DlogCompleteness) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt y = group_.pow_g(secret);
  const auto proof =
      prove_dlog(group_, group_.g(), secret, to_bytes("ctx"), rng_);
  EXPECT_TRUE(verify_dlog(group_, group_.g(), y, proof, to_bytes("ctx")));
}

TEST_F(ZkpTest, DlogRejectsWrongStatement) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt other = group_.pow_g(group_.random_scalar(rng_));
  const auto proof =
      prove_dlog(group_, group_.g(), secret, to_bytes("ctx"), rng_);
  EXPECT_FALSE(verify_dlog(group_, group_.g(), other, proof, to_bytes("ctx")));
}

TEST_F(ZkpTest, DlogContextBinding) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt y = group_.pow_g(secret);
  const auto proof =
      prove_dlog(group_, group_.g(), secret, to_bytes("session-1"), rng_);
  // Replaying under another context must fail.
  EXPECT_FALSE(
      verify_dlog(group_, group_.g(), y, proof, to_bytes("session-2")));
}

TEST_F(ZkpTest, DlogProofsAreRandomized) {
  // Two proofs of the same statement differ => unlinkable presentations.
  const BigInt secret = group_.random_scalar(rng_);
  const auto p1 = prove_dlog(group_, group_.g(), secret, to_bytes("c"), rng_);
  const auto p2 = prove_dlog(group_, group_.g(), secret, to_bytes("c"), rng_);
  EXPECT_NE(p1.commitment, p2.commitment);
}

TEST_F(ZkpTest, DlogTamperedProofFails) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt y = group_.pow_g(secret);
  auto proof = prove_dlog(group_, group_.g(), secret, to_bytes("c"), rng_);
  proof.response = (proof.response + BigInt(1)) % group_.q();
  EXPECT_FALSE(verify_dlog(group_, group_.g(), y, proof, to_bytes("c")));
}

TEST_F(ZkpTest, DlogWorksOverBaseH) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt y = group_.pow_h(secret);
  const auto proof =
      prove_dlog(group_, group_.h(), secret, to_bytes("c"), rng_);
  EXPECT_TRUE(verify_dlog(group_, group_.h(), y, proof, to_bytes("c")));
}

TEST_F(ZkpTest, DlogEncodingRoundTrip) {
  const BigInt secret = group_.random_scalar(rng_);
  const BigInt y = group_.pow_g(secret);
  const auto proof = prove_dlog(group_, group_.g(), secret, to_bytes("c"), rng_);
  const auto decoded = DlogProof::decode(proof.encode());
  EXPECT_TRUE(verify_dlog(group_, group_.g(), y, decoded, to_bytes("c")));
}

// --- Bit proofs --------------------------------------------------------------

TEST_F(ZkpTest, BitProofCompletenessBothValues) {
  for (bool bit : {false, true}) {
    auto [commitment, opening] = pedersen_.commit(BigInt(bit ? 1 : 0), rng_);
    const auto proof = prove_bit(group_, commitment, bit, opening.blinding,
                                 to_bytes("c"), rng_);
    EXPECT_TRUE(verify_bit(group_, commitment, proof, to_bytes("c")))
        << "bit=" << bit;
  }
}

TEST_F(ZkpTest, BitProofSoundness) {
  // A commitment to 2 cannot produce a valid bit proof with either branch.
  auto [commitment, opening] = pedersen_.commit(BigInt(2), rng_);
  const auto proof_as_0 = prove_bit(group_, commitment, false,
                                    opening.blinding, to_bytes("c"), rng_);
  EXPECT_FALSE(verify_bit(group_, commitment, proof_as_0, to_bytes("c")));
  const auto proof_as_1 = prove_bit(group_, commitment, true,
                                    opening.blinding, to_bytes("c"), rng_);
  EXPECT_FALSE(verify_bit(group_, commitment, proof_as_1, to_bytes("c")));
}

TEST_F(ZkpTest, BitProofContextBinding) {
  auto [commitment, opening] = pedersen_.commit(BigInt(1), rng_);
  const auto proof = prove_bit(group_, commitment, true, opening.blinding,
                               to_bytes("ctx-a"), rng_);
  EXPECT_FALSE(verify_bit(group_, commitment, proof, to_bytes("ctx-b")));
}

// --- Range proofs (proof of sufficient funds) --------------------------------

TEST_F(ZkpTest, RangeProofCompleteness) {
  for (std::uint64_t value : {0ULL, 1ULL, 100ULL, 65535ULL}) {
    auto [commitment, opening] = pedersen_.commit(BigInt(value), rng_);
    const auto proof = prove_range(group_, commitment, opening, 16,
                                   to_bytes("funds"), rng_);
    EXPECT_TRUE(verify_range(group_, commitment, proof, 16, to_bytes("funds")))
        << value;
  }
}

TEST_F(ZkpTest, RangeProofRejectsOutOfRangeAtProveTime) {
  auto [commitment, opening] = pedersen_.commit(BigInt(65536), rng_);
  EXPECT_THROW(
      prove_range(group_, commitment, opening, 16, to_bytes("f"), rng_),
      common::CryptoError);
}

TEST_F(ZkpTest, RangeProofWrongCommitmentFails) {
  auto [c1, o1] = pedersen_.commit(BigInt(500), rng_);
  auto [c2, o2] = pedersen_.commit(BigInt(500), rng_);
  const auto proof = prove_range(group_, c1, o1, 16, to_bytes("f"), rng_);
  EXPECT_FALSE(verify_range(group_, c2, proof, 16, to_bytes("f")));
}

TEST_F(ZkpTest, RangeProofContextBinding) {
  auto [commitment, opening] = pedersen_.commit(BigInt(5), rng_);
  const auto proof =
      prove_range(group_, commitment, opening, 8, to_bytes("tx-1"), rng_);
  EXPECT_FALSE(verify_range(group_, commitment, proof, 8, to_bytes("tx-2")));
}

TEST_F(ZkpTest, RangeProofBitCountMismatchFails) {
  auto [commitment, opening] = pedersen_.commit(BigInt(5), rng_);
  const auto proof =
      prove_range(group_, commitment, opening, 8, to_bytes("f"), rng_);
  EXPECT_FALSE(verify_range(group_, commitment, proof, 16, to_bytes("f")));
}

TEST_F(ZkpTest, SufficientFundsScenario) {
  // The paper's example: prove balance >= amount without revealing either.
  const BigInt balance(9000), amount(2500);
  auto [commitment, opening] =
      pedersen_.commit(balance - amount, rng_);
  const auto proof = prove_range(group_, commitment, opening, 16,
                                 to_bytes("payment-affirmation"), rng_);
  EXPECT_TRUE(verify_range(group_, commitment, proof, 16,
                           to_bytes("payment-affirmation")));

  // Insufficient funds: balance - amount would be negative, so the prover
  // cannot even form the difference as a non-negative value in range.
  const BigInt small_balance(100);
  EXPECT_THROW((void)(small_balance - amount), common::CryptoError);
}

TEST_F(ZkpTest, RangeProofEncodingRoundTrip) {
  auto [commitment, opening] = pedersen_.commit(BigInt(77), rng_);
  const auto proof =
      prove_range(group_, commitment, opening, 8, to_bytes("f"), rng_);
  const auto decoded = RangeProof::decode(proof.encode(), 8);
  EXPECT_TRUE(verify_range(group_, commitment, decoded, 8, to_bytes("f")));
  EXPECT_GT(proof.encoded_size(), 0u);
}

class RangeProofWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RangeProofWidths, BoundaryValues) {
  const Group& group = Group::test_group();
  const Pedersen pedersen(group);
  common::Rng rng(500 + GetParam());
  const std::size_t bits = GetParam();
  // Largest in-range value: 2^bits - 1.
  const BigInt max_value = (BigInt(1) << bits) - BigInt(1);
  auto [commitment, opening] = pedersen.commit(max_value, rng);
  const auto proof =
      prove_range(group, commitment, opening, bits, to_bytes("b"), rng);
  EXPECT_TRUE(verify_range(group, commitment, proof, bits, to_bytes("b")));
}

INSTANTIATE_TEST_SUITE_P(Widths, RangeProofWidths,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

}  // namespace
}  // namespace veil::crypto
