#include "crypto/group.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/rng.hpp"

namespace veil::crypto {
namespace {

TEST(Group, PinnedDefaultGroupIsValid) {
  const Group& g = Group::default_group();
  common::Rng rng(1);
  EXPECT_EQ(g.q().bit_length(), 256u);
  EXPECT_EQ(g.p().bit_length(), 1024u);
  EXPECT_TRUE(g.p().is_probable_prime(rng));
  EXPECT_TRUE(g.q().is_probable_prime(rng));
  EXPECT_TRUE(((g.p() - BigInt(1)) % g.q()).is_zero());
  EXPECT_TRUE(g.is_element(g.g()));
  EXPECT_TRUE(g.is_element(g.h()));
  EXPECT_NE(g.g(), g.h());
}

TEST(Group, PinnedTestGroupIsValid) {
  const Group& g = Group::test_group();
  common::Rng rng(2);
  EXPECT_EQ(g.q().bit_length(), 160u);
  EXPECT_EQ(g.p().bit_length(), 512u);
  EXPECT_TRUE(g.p().is_probable_prime(rng));
  EXPECT_TRUE(g.q().is_probable_prime(rng));
}

TEST(Group, GeneratorHasOrderQ) {
  const Group& g = Group::test_group();
  EXPECT_EQ(g.pow_g(g.q()), BigInt(1));
  EXPECT_NE(g.pow_g(BigInt(1)), BigInt(1));
}

TEST(Group, ElementMembership) {
  const Group& g = Group::test_group();
  common::Rng rng(3);
  // Powers of g are members.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(g.is_element(g.pow_g(g.random_scalar(rng))));
  }
  EXPECT_FALSE(g.is_element(BigInt(0)));
  EXPECT_FALSE(g.is_element(g.p()));
  EXPECT_FALSE(g.is_element(g.p() + BigInt(1)));
}

TEST(Group, RandomScalarRange) {
  const Group& g = Group::test_group();
  common::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const BigInt s = g.random_scalar(rng);
    EXPECT_FALSE(s.is_zero());
    EXPECT_LT(s, g.q());
  }
}

TEST(Group, HashToScalarDeterministicAndBounded) {
  const Group& g = Group::test_group();
  const BigInt a = g.hash_to_scalar(common::to_bytes("message"));
  EXPECT_EQ(a, g.hash_to_scalar(common::to_bytes("message")));
  EXPECT_NE(a, g.hash_to_scalar(common::to_bytes("other")));
  EXPECT_LT(a, g.q());
}

TEST(Group, HashToElementInGroup) {
  const Group& g = Group::test_group();
  const BigInt e = g.hash_to_element(common::to_bytes("anything"));
  EXPECT_TRUE(g.is_element(e));
  EXPECT_NE(e, BigInt(1));
}

TEST(Group, ExponentLaws) {
  const Group& g = Group::test_group();
  common::Rng rng(5);
  const BigInt a = g.random_scalar(rng);
  const BigInt b = g.random_scalar(rng);
  // g^a * g^b == g^(a+b mod q)
  EXPECT_EQ(g.mul(g.pow_g(a), g.pow_g(b)), g.pow_g((a + b) % g.q()));
  // (g^a)^b == g^(ab mod q)
  EXPECT_EQ(g.pow(g.pow_g(a), b), g.pow_g((a * b) % g.q()));
}

TEST(Group, InverseLaw) {
  const Group& g = Group::test_group();
  common::Rng rng(6);
  const BigInt x = g.pow_g(g.random_scalar(rng));
  EXPECT_EQ(g.mul(x, g.inv(x)), BigInt(1));
}

TEST(Group, GenerateProducesConsistentParameters) {
  common::Rng rng(7);
  const Group g = Group::generate(rng, 256, 80);
  EXPECT_EQ(g.p().bit_length(), 256u);
  EXPECT_EQ(g.q().bit_length(), 80u);
  EXPECT_EQ(g.pow_g(g.q()), BigInt(1));
  EXPECT_EQ(g.pow_h(g.q()), BigInt(1));
}

TEST(Group, ConstructorValidatesParameters) {
  const Group& g = Group::test_group();
  // q not dividing p-1
  EXPECT_THROW(Group(g.p(), g.q() + BigInt(2), g.g(), g.h()),
               common::CryptoError);
  // generator outside the subgroup
  EXPECT_THROW(Group(g.p(), g.q(), BigInt(0), g.h()), common::CryptoError);
}

}  // namespace
}  // namespace veil::crypto
