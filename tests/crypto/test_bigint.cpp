#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace veil::crypto {
namespace {

TEST(BigInt, ConstructionAndConversion) {
  EXPECT_TRUE(BigInt().is_zero());
  EXPECT_EQ(BigInt(0).to_u64(), 0u);
  EXPECT_EQ(BigInt(1).to_u64(), 1u);
  EXPECT_EQ(BigInt(~0ULL).to_u64(), ~0ULL);
}

TEST(BigInt, HexRoundTrip) {
  for (const char* hex :
       {"0", "1", "ff", "100", "deadbeef", "123456789abcdef0123456789abcdef"}) {
    const BigInt v = BigInt::from_hex(hex);
    EXPECT_EQ(BigInt::from_hex(v.to_hex()), v) << hex;
  }
  EXPECT_EQ(BigInt::from_hex("ff").to_u64(), 255u);
  EXPECT_THROW(BigInt::from_hex("xyz"), common::CryptoError);
}

TEST(BigInt, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "10", "4294967296",
                         "340282366920938463463374607431768211456"};
  for (const char* dec : cases) {
    EXPECT_EQ(BigInt::from_decimal(dec).to_decimal(), dec);
  }
  EXPECT_THROW(BigInt::from_decimal("12a"), common::CryptoError);
}

TEST(BigInt, BytesRoundTrip) {
  common::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const common::Bytes raw = rng.next_bytes(1 + rng.next_below(64));
    const BigInt v = BigInt::from_bytes_be(raw);
    EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be()), v);
  }
  EXPECT_EQ(BigInt(0x1234).to_bytes_be(4), common::from_hex("00001234"));
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt(~0ULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, AddSubInverse) {
  common::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(256));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(256));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST(BigInt, SubtractBelowZeroThrows) {
  EXPECT_THROW(BigInt(1) - BigInt(2), common::CryptoError);
}

TEST(BigInt, AdditionCarryChain) {
  const BigInt max32 = BigInt::from_hex("ffffffff");
  EXPECT_EQ((max32 + BigInt(1)).to_hex(), "100000000");
  const BigInt big = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((big + BigInt(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigInt, MultiplicationKnownAnswers) {
  EXPECT_EQ((BigInt(0) * BigInt(12345)).to_u64(), 0u);
  EXPECT_EQ((BigInt(123456789) * BigInt(987654321)).to_decimal(),
            "121932631112635269");
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt max64(~0ULL);
  EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, DivModProperty) {
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(512));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(300));
    const auto dm = a.divmod(b);
    EXPECT_LT(dm.remainder, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  }
}

TEST(BigInt, DivideByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), common::CryptoError);
  EXPECT_THROW(BigInt(1) % BigInt(0), common::CryptoError);
}

TEST(BigInt, KnuthAddBackCase) {
  // Divisor shaped to trigger the rare add-back branch of algorithm D.
  const BigInt a = BigInt::from_hex("800000000000000000000003");
  const BigInt b = BigInt::from_hex("200000000000000000000001");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigInt, Shifts) {
  EXPECT_EQ((BigInt(1) << 100).to_hex(),
            "10000000000000000000000000");
  EXPECT_EQ((BigInt::from_hex("10000000000000000000000000") >> 100).to_u64(),
            1u);
  EXPECT_EQ((BigInt(0xff) >> 4).to_u64(), 0xfu);
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
  common::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const BigInt v = BigInt::random_bits(rng, 200);
    const std::size_t s = rng.next_below(250);
    EXPECT_EQ((v << s) >> s, v);
  }
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_EQ(BigInt().bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
}

TEST(BigInt, ModPowKnownAnswers) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt(2).mod_pow(BigInt(10), BigInt(1000)).to_u64(), 24u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt(2).mod_pow(p - BigInt(1), p).to_u64(), 1u);
  EXPECT_EQ(BigInt(5).mod_pow(BigInt(0), p).to_u64(), 1u);
  EXPECT_TRUE(BigInt(5).mod_pow(BigInt(3), BigInt(1)).is_zero());
}

TEST(BigInt, ModInverseProperty) {
  common::Rng rng(5);
  const BigInt p = BigInt::generate_prime(rng, 128);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::random_below(rng, p);
    if (a.is_zero()) a = BigInt(1);
    const BigInt inv = a.mod_inverse(p);
    EXPECT_EQ((a * inv) % p, BigInt(1));
  }
}

TEST(BigInt, ModInverseNotInvertibleThrows) {
  EXPECT_THROW(BigInt(6).mod_inverse(BigInt(9)), common::CryptoError);
  EXPECT_THROW(BigInt(0).mod_inverse(BigInt(7)), common::CryptoError);
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).to_u64(), 12u);
  EXPECT_TRUE(BigInt::lcm(BigInt(0), BigInt(6)).is_zero());
}

TEST(BigInt, RandomBelowBounds) {
  common::Rng rng(6);
  const BigInt bound = BigInt::from_hex("10000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(BigInt, RandomBitsExactLength) {
  common::Rng rng(7);
  for (std::size_t bits : {8u, 17u, 64u, 129u, 256u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigInt, PrimalityKnownValues) {
  common::Rng rng(8);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 1000003ULL}) {
    EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
  }
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 65541ULL, 1000001ULL}) {
    EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
  }
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(BigInt(561).is_probable_prime(rng));
  EXPECT_FALSE(BigInt(41041).is_probable_prime(rng));
}

TEST(BigInt, GeneratePrimeHasRequestedSize) {
  common::Rng rng(9);
  const BigInt p = BigInt::generate_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_probable_prime(rng));
  EXPECT_TRUE(p.is_odd());
}

class BigIntModArithmetic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntModArithmetic, FermatAndDistributivity) {
  common::Rng rng(GetParam());
  const BigInt p = BigInt::generate_prime(rng, 64 + GetParam() % 64);
  const BigInt a = BigInt::random_below(rng, p);
  const BigInt b = BigInt::random_below(rng, p);
  // (a+b) mod p distributes.
  EXPECT_EQ(((a % p) + (b % p)) % p, (a + b) % p);
  // (a*b)^e = a^e * b^e mod p.
  const BigInt e(65537);
  EXPECT_EQ(((a * b) % p).mod_pow(e, p),
            (a.mod_pow(e, p) * b.mod_pow(e, p)) % p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntModArithmetic,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace veil::crypto
