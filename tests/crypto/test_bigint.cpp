#include "crypto/bigint.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace veil::crypto {
namespace {

TEST(BigInt, ConstructionAndConversion) {
  EXPECT_TRUE(BigInt().is_zero());
  EXPECT_EQ(BigInt(0).to_u64(), 0u);
  EXPECT_EQ(BigInt(1).to_u64(), 1u);
  EXPECT_EQ(BigInt(~0ULL).to_u64(), ~0ULL);
}

TEST(BigInt, HexRoundTrip) {
  for (const char* hex :
       {"0", "1", "ff", "100", "deadbeef", "123456789abcdef0123456789abcdef"}) {
    const BigInt v = BigInt::from_hex(hex);
    EXPECT_EQ(BigInt::from_hex(v.to_hex()), v) << hex;
  }
  EXPECT_EQ(BigInt::from_hex("ff").to_u64(), 255u);
  EXPECT_THROW(BigInt::from_hex("xyz"), common::CryptoError);
}

TEST(BigInt, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "10", "4294967296",
                         "340282366920938463463374607431768211456"};
  for (const char* dec : cases) {
    EXPECT_EQ(BigInt::from_decimal(dec).to_decimal(), dec);
  }
  EXPECT_THROW(BigInt::from_decimal("12a"), common::CryptoError);
}

TEST(BigInt, BytesRoundTrip) {
  common::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const common::Bytes raw = rng.next_bytes(1 + rng.next_below(64));
    const BigInt v = BigInt::from_bytes_be(raw);
    EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be()), v);
  }
  EXPECT_EQ(BigInt(0x1234).to_bytes_be(4), common::from_hex("00001234"));
}

TEST(BigInt, BytesRoundTripRandomWidths) {
  // Exercises the direct limb-packing deserializer across widths that hit
  // every limb-boundary alignment, including multi-KB values.
  common::Rng rng(101);
  for (std::size_t width : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 32u, 33u,
                            63u, 64u, 65u, 127u, 255u, 256u, 1024u, 4096u}) {
    const common::Bytes raw = rng.next_bytes(width);
    const BigInt v = BigInt::from_bytes_be(raw);
    EXPECT_EQ(BigInt::from_bytes_be(v.to_bytes_be()), v) << width;
    // Leading zero bytes must not change the value.
    common::Bytes padded(3, 0);
    padded.insert(padded.end(), raw.begin(), raw.end());
    EXPECT_EQ(BigInt::from_bytes_be(padded), v) << width;
  }
  EXPECT_TRUE(BigInt::from_bytes_be({}).is_zero());
  EXPECT_TRUE(BigInt::from_bytes_be(common::Bytes(8, 0)).is_zero());
}

TEST(BigInt, HexAndBytesAgree) {
  common::Rng rng(102);
  for (int i = 0; i < 30; ++i) {
    const common::Bytes raw = rng.next_bytes(1 + rng.next_below(96));
    EXPECT_EQ(BigInt::from_hex(common::to_hex(raw)),
              BigInt::from_bytes_be(raw));
  }
  // Odd-length hex strings (leading implicit zero nibble).
  EXPECT_EQ(BigInt::from_hex("123").to_u64(), 0x123u);
  EXPECT_EQ(BigInt::from_hex("0000123").to_u64(), 0x123u);
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt(~0ULL));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigInt, AddSubInverse) {
  common::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(256));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(256));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST(BigInt, SubtractBelowZeroThrows) {
  EXPECT_THROW(BigInt(1) - BigInt(2), common::CryptoError);
}

TEST(BigInt, AdditionCarryChain) {
  const BigInt max32 = BigInt::from_hex("ffffffff");
  EXPECT_EQ((max32 + BigInt(1)).to_hex(), "100000000");
  const BigInt big = BigInt::from_hex("ffffffffffffffffffffffff");
  EXPECT_EQ((big + BigInt(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigInt, MultiplicationKnownAnswers) {
  EXPECT_EQ((BigInt(0) * BigInt(12345)).to_u64(), 0u);
  EXPECT_EQ((BigInt(123456789) * BigInt(987654321)).to_decimal(),
            "121932631112635269");
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt max64(~0ULL);
  EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, DivModProperty) {
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(512));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(300));
    const auto dm = a.divmod(b);
    EXPECT_LT(dm.remainder, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  }
}

TEST(BigInt, DivideByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), common::CryptoError);
  EXPECT_THROW(BigInt(1) % BigInt(0), common::CryptoError);
}

TEST(BigInt, KnuthAddBackCase) {
  // Divisor shaped to trigger the rare add-back branch of algorithm D.
  const BigInt a = BigInt::from_hex("800000000000000000000003");
  const BigInt b = BigInt::from_hex("200000000000000000000001");
  const auto dm = a.divmod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder, b);
}

TEST(BigInt, Shifts) {
  EXPECT_EQ((BigInt(1) << 100).to_hex(),
            "10000000000000000000000000");
  EXPECT_EQ((BigInt::from_hex("10000000000000000000000000") >> 100).to_u64(),
            1u);
  EXPECT_EQ((BigInt(0xff) >> 4).to_u64(), 0xfu);
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
  common::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const BigInt v = BigInt::random_bits(rng, 200);
    const std::size_t s = rng.next_below(250);
    EXPECT_EQ((v << s) >> s, v);
  }
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_EQ(BigInt().bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
}

TEST(BigInt, ModPowKnownAnswers) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt(2).mod_pow(BigInt(10), BigInt(1000)).to_u64(), 24u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt(2).mod_pow(p - BigInt(1), p).to_u64(), 1u);
  EXPECT_EQ(BigInt(5).mod_pow(BigInt(0), p).to_u64(), 1u);
  EXPECT_TRUE(BigInt(5).mod_pow(BigInt(3), BigInt(1)).is_zero());
}

// RFC 3526 group 14: the 2048-bit MODP prime. Used as a known-good odd
// modulus that drives mod_pow through the Montgomery fast path.
const char* const kRfc3526Group14P =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

TEST(BigInt, ModPowRfc3526KnownAnswers) {
  const BigInt p = BigInt::from_hex(kRfc3526Group14P);
  ASSERT_EQ(p.bit_length(), 2048u);
  // Fermat: a^(p-1) == 1 mod p for the standardized prime.
  for (std::uint64_t a : {2ULL, 3ULL, 65537ULL}) {
    EXPECT_EQ(BigInt(a).mod_pow(p - BigInt(1), p), BigInt(1)) << a;
  }
  // p = 2q+1 is a safe prime and p == 7 (mod 8), so 2 is a quadratic
  // residue: the standard generator g=2 lands in the order-q subgroup.
  const BigInt q = (p - BigInt(1)) >> 1;
  EXPECT_EQ(BigInt(2).mod_pow(q, p), BigInt(1));
  // Euler's criterion: every base raises to +-1 mod p under q, and
  // non-residues (half of all bases) give exactly p-1.
  bool found_non_residue = false;
  for (std::uint64_t a = 2; a < 40; ++a) {
    const BigInt r = BigInt(a).mod_pow(q, p);
    ASSERT_TRUE(r == BigInt(1) || r == p - BigInt(1)) << a;
    if (r == p - BigInt(1)) found_non_residue = true;
  }
  EXPECT_TRUE(found_non_residue);
}

// Reference square-and-multiply used to cross-check the windowed
// Montgomery exponentiation bit-for-bit.
BigInt naive_mod_pow(const BigInt& base, const BigInt& exp, const BigInt& mod) {
  BigInt result(1);
  BigInt b = base % mod;
  for (std::size_t i = 0; i < exp.bit_length(); ++i) {
    if (exp.bit(i)) result = (result * b) % mod;
    b = (b * b) % mod;
  }
  return result;
}

TEST(BigInt, ModPowMatchesNaiveReference) {
  common::Rng rng(103);
  for (std::size_t bits : {33u, 64u, 128u, 384u, 1024u}) {
    for (int i = 0; i < 4; ++i) {
      BigInt m = BigInt::random_bits(rng, bits);
      if (!m.is_odd()) m += BigInt(1);  // odd => Montgomery path
      const BigInt base = BigInt::random_bits(rng, bits + 17);
      const BigInt exp = BigInt::random_bits(rng, bits);
      EXPECT_EQ(base.mod_pow(exp, m), naive_mod_pow(base, exp, m))
          << bits << " bits";
    }
  }
}

TEST(BigInt, ModPowEvenModulusFallback) {
  common::Rng rng(104);
  for (int i = 0; i < 8; ++i) {
    BigInt m = BigInt::random_bits(rng, 160);
    if (m.is_odd()) m += BigInt(1);  // even => classic path
    const BigInt base = BigInt::random_bits(rng, 200);
    const BigInt exp = BigInt::random_bits(rng, 80);
    EXPECT_EQ(base.mod_pow(exp, m), naive_mod_pow(base, exp, m));
  }
  // 3^5 mod 2^64 has a trivial closed form.
  EXPECT_EQ(BigInt(3).mod_pow(BigInt(5), BigInt(1) << 64).to_u64(), 243u);
}

TEST(BigInt, ModPowEdgeCases) {
  const BigInt p = BigInt::from_hex(kRfc3526Group14P);
  // Zero exponent: 1 for any base, including 0^0 by our convention.
  EXPECT_EQ(BigInt(0).mod_pow(BigInt(0), p), BigInt(1));
  EXPECT_EQ(p.mod_pow(BigInt(0), p), BigInt(1));
  // One exponent: base reduced mod modulus.
  const BigInt a = BigInt::from_hex("deadbeefcafebabe");
  EXPECT_EQ(a.mod_pow(BigInt(1), p), a);
  EXPECT_EQ((p + a).mod_pow(BigInt(1), p), a);
  // Zero base with positive exponent.
  EXPECT_TRUE(BigInt(0).mod_pow(BigInt(12345), p).is_zero());
  // Base equal to the modulus reduces to zero.
  EXPECT_TRUE(p.mod_pow(BigInt(3), p).is_zero());
  // Modulus one collapses everything to zero; modulus zero throws.
  EXPECT_TRUE(a.mod_pow(a, BigInt(1)).is_zero());
  EXPECT_THROW(a.mod_pow(a, BigInt(0)), common::CryptoError);
}

TEST(BigInt, KaratsubaMatchesSchoolbook) {
  // Products large enough to take the Karatsuba split (>= 24 limbs each
  // side), validated against the schoolbook kernel by chunking one
  // operand below the threshold.
  common::Rng rng(105);
  for (std::size_t bits : {768u, 1024u, 2048u, 4096u}) {
    const BigInt a = BigInt::random_bits(rng, bits);
    const BigInt b = BigInt::random_bits(rng, bits + 96);
    const BigInt product = a * b;
    // Recompute via 256-bit chunks of b (each chunk multiply is
    // schoolbook since the chunk stays under the threshold).
    BigInt expected;
    for (std::size_t off = 0; off < b.bit_length(); off += 256) {
      BigInt chunk = (b >> off) % (BigInt(1) << 256);
      expected += (a * chunk) << off;
    }
    EXPECT_EQ(product, expected) << bits;
    // And the divmod property must hold.
    EXPECT_EQ(product / a, b);
    EXPECT_TRUE((product % a).is_zero());
  }
}

TEST(BigInt, ModInverseProperty) {
  common::Rng rng(5);
  const BigInt p = BigInt::generate_prime(rng, 128);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::random_below(rng, p);
    if (a.is_zero()) a = BigInt(1);
    const BigInt inv = a.mod_inverse(p);
    EXPECT_EQ((a * inv) % p, BigInt(1));
  }
}

TEST(BigInt, ModInverseNotInvertibleThrows) {
  EXPECT_THROW(BigInt(6).mod_inverse(BigInt(9)), common::CryptoError);
  EXPECT_THROW(BigInt(0).mod_inverse(BigInt(7)), common::CryptoError);
}

TEST(BigInt, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).to_u64(), 12u);
  EXPECT_TRUE(BigInt::lcm(BigInt(0), BigInt(6)).is_zero());
}

TEST(BigInt, RandomBelowBounds) {
  common::Rng rng(6);
  const BigInt bound = BigInt::from_hex("10000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(BigInt, RandomBitsExactLength) {
  common::Rng rng(7);
  for (std::size_t bits : {8u, 17u, 64u, 129u, 256u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigInt, PrimalityKnownValues) {
  common::Rng rng(8);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 65537ULL, 1000003ULL}) {
    EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
  }
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 100ULL, 65541ULL, 1000001ULL}) {
    EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
  }
  // Carmichael numbers must be rejected.
  EXPECT_FALSE(BigInt(561).is_probable_prime(rng));
  EXPECT_FALSE(BigInt(41041).is_probable_prime(rng));
}

TEST(BigInt, GeneratePrimeHasRequestedSize) {
  common::Rng rng(9);
  const BigInt p = BigInt::generate_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_probable_prime(rng));
  EXPECT_TRUE(p.is_odd());
}

class BigIntModArithmetic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntModArithmetic, FermatAndDistributivity) {
  common::Rng rng(GetParam());
  const BigInt p = BigInt::generate_prime(rng, 64 + GetParam() % 64);
  const BigInt a = BigInt::random_below(rng, p);
  const BigInt b = BigInt::random_below(rng, p);
  // (a+b) mod p distributes.
  EXPECT_EQ(((a % p) + (b % p)) % p, (a + b) % p);
  // (a*b)^e = a^e * b^e mod p.
  const BigInt e(65537);
  EXPECT_EQ(((a * b) % p).mod_pow(e, p),
            (a.mod_pow(e, p) * b.mod_pow(e, p)) % p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntModArithmetic,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace veil::crypto
