#include "crypto/montgomery.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/group.hpp"

namespace veil::crypto {
namespace {

BigInt naive_mod_pow(const BigInt& base, const BigInt& exp, const BigInt& mod) {
  BigInt result(1);
  BigInt b = base % mod;
  for (std::size_t i = 0; i < exp.bit_length(); ++i) {
    if (exp.bit(i)) result = (result * b) % mod;
    b = (b * b) % mod;
  }
  return result;
}

TEST(Montgomery, RejectsUnusableModuli) {
  EXPECT_EQ(MontgomeryCtx::create(BigInt(0)), nullptr);
  EXPECT_EQ(MontgomeryCtx::create(BigInt(1)), nullptr);
  EXPECT_EQ(MontgomeryCtx::create(BigInt(4096)), nullptr);
  EXPECT_EQ(MontgomeryCtx::shared(BigInt::from_hex("10000000000000000")),
            nullptr);
  EXPECT_NE(MontgomeryCtx::create(BigInt(3)), nullptr);
}

TEST(Montgomery, DomainRoundTrip) {
  common::Rng rng(1);
  for (std::size_t bits : {8u, 32u, 64u, 257u, 1024u}) {
    BigInt n = BigInt::random_bits(rng, bits);
    if (!n.is_odd()) n += BigInt(1);
    const auto ctx = MontgomeryCtx::create(n);
    ASSERT_NE(ctx, nullptr);
    for (int i = 0; i < 10; ++i) {
      const BigInt a = BigInt::random_below(rng, n);
      EXPECT_EQ(ctx->from_mont(ctx->to_mont(a)), a);
    }
    // to_mont reduces oversized inputs.
    const BigInt big = BigInt::random_bits(rng, bits + 40);
    EXPECT_EQ(ctx->from_mont(ctx->to_mont(big)), big % n);
    // one() is the Montgomery form of 1.
    EXPECT_EQ(ctx->from_mont(ctx->one()), BigInt(1));
  }
}

TEST(Montgomery, MulMatchesModularProduct) {
  common::Rng rng(2);
  for (std::size_t bits : {16u, 96u, 512u, 2048u}) {
    BigInt n = BigInt::random_bits(rng, bits);
    if (!n.is_odd()) n += BigInt(1);
    const auto ctx = MontgomeryCtx::create(n);
    for (int i = 0; i < 10; ++i) {
      const BigInt a = BigInt::random_below(rng, n);
      const BigInt b = BigInt::random_below(rng, n);
      const BigInt got =
          ctx->from_mont(ctx->mul(ctx->to_mont(a), ctx->to_mont(b)));
      EXPECT_EQ(got, (a * b) % n) << bits;
    }
  }
}

TEST(Montgomery, PowMatchesNaiveReference) {
  common::Rng rng(3);
  for (std::size_t bits : {9u, 33u, 160u, 768u}) {
    BigInt n = BigInt::random_bits(rng, bits);
    if (!n.is_odd()) n += BigInt(1);
    const auto ctx = MontgomeryCtx::create(n);
    for (int i = 0; i < 5; ++i) {
      const BigInt base = BigInt::random_bits(rng, bits + 11);
      const BigInt exp = BigInt::random_bits(rng, 1 + rng.next_below(bits));
      EXPECT_EQ(ctx->pow(base, exp), naive_mod_pow(base, exp, n)) << bits;
    }
  }
}

TEST(Montgomery, PowEdgeCases) {
  const auto ctx = MontgomeryCtx::create(BigInt(1000003));
  EXPECT_EQ(ctx->pow(BigInt(0), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx->pow(BigInt(5), BigInt(0)), BigInt(1));
  EXPECT_TRUE(ctx->pow(BigInt(0), BigInt(77)).is_zero());
  EXPECT_EQ(ctx->pow(BigInt(5), BigInt(1)), BigInt(5));
  // Exponent with long zero runs (stresses the sliding-window scanner).
  const BigInt exp = BigInt(1) << 255;
  EXPECT_EQ(ctx->pow(BigInt(3), exp), naive_mod_pow(BigInt(3), exp, BigInt(1000003)));
  // All-ones exponent (maximal windows).
  const BigInt ones = (BigInt(1) << 128) - BigInt(1);
  EXPECT_EQ(ctx->pow(BigInt(3), ones), naive_mod_pow(BigInt(3), ones, BigInt(1000003)));
}

TEST(Montgomery, SharedCacheReturnsSameContext) {
  const BigInt n = BigInt::from_hex("c000000000000000000000000000000d");
  const auto a = MontgomeryCtx::shared(n);
  const auto b = MontgomeryCtx::shared(n);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->modulus(), n);
}

TEST(FixedBaseTable, MatchesGenericPow) {
  common::Rng rng(4);
  const Group& group = Group::test_group();
  const auto ctx = MontgomeryCtx::create(group.p());
  const FixedBaseTable table(ctx, group.g(), group.q().bit_length() + 1);
  for (int i = 0; i < 20; ++i) {
    const BigInt e = BigInt::random_below(rng, group.q());
    EXPECT_EQ(table.pow(e), ctx->pow(group.g(), e));
  }
  EXPECT_EQ(table.pow(BigInt(0)), BigInt(1));
  EXPECT_EQ(table.pow(BigInt(1)), group.g());
  // Exponents wider than the table fall back to the generic path.
  const BigInt wide = BigInt::random_bits(rng, group.q().bit_length() + 64);
  EXPECT_EQ(table.pow(wide), ctx->pow(group.g(), wide));
}

TEST(FixedBaseTable, GroupGeneratorsRouteThroughTables) {
  common::Rng rng(5);
  const Group& group = Group::default_group();
  for (int i = 0; i < 5; ++i) {
    const BigInt e = group.random_scalar(rng);
    EXPECT_EQ(group.pow_g(e), group.pow(group.g(), e));
    EXPECT_EQ(group.pow_h(e), group.pow(group.h(), e));
  }
}

}  // namespace
}  // namespace veil::crypto
