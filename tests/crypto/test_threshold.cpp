#include "crypto/threshold.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

using common::to_bytes;

class ThresholdTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  common::Rng rng_{9090};
};

TEST_F(ThresholdTest, QuorumDecrypts) {
  const auto committee = ThresholdElGamal::deal(group_, 3, 5, rng_);
  const auto ct = committee.encrypt(to_bytes("escrowed payload"), rng_);

  std::vector<PartialDecryption> partials;
  for (std::size_t i : {0u, 2u, 4u}) {
    partials.push_back(ThresholdElGamal::partial_decrypt(
        group_, committee.shares()[i], ct));
  }
  const auto pt = committee.combine(ct, partials);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, to_bytes("escrowed payload"));
}

TEST_F(ThresholdTest, AnyQuorumWorks) {
  const auto committee = ThresholdElGamal::deal(group_, 2, 4, rng_);
  const auto ct = committee.encrypt(to_bytes("m"), rng_);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      const std::vector<PartialDecryption> partials = {
          ThresholdElGamal::partial_decrypt(group_, committee.shares()[a], ct),
          ThresholdElGamal::partial_decrypt(group_, committee.shares()[b], ct),
      };
      EXPECT_EQ(committee.combine(ct, partials), to_bytes("m"))
          << a << "," << b;
    }
  }
}

TEST_F(ThresholdTest, BelowThresholdFails) {
  const auto committee = ThresholdElGamal::deal(group_, 3, 5, rng_);
  const auto ct = committee.encrypt(to_bytes("m"), rng_);
  const std::vector<PartialDecryption> partials = {
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[0], ct),
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[1], ct),
  };
  EXPECT_FALSE(committee.combine(ct, partials).has_value());
}

TEST_F(ThresholdTest, DuplicatePartialsRejected) {
  const auto committee = ThresholdElGamal::deal(group_, 2, 3, rng_);
  const auto ct = committee.encrypt(to_bytes("m"), rng_);
  const auto p0 =
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[0], ct);
  EXPECT_FALSE(committee.combine(ct, {p0, p0}).has_value());
}

TEST_F(ThresholdTest, CorruptedPartialFailsAuthenticatedOpen) {
  const auto committee = ThresholdElGamal::deal(group_, 2, 3, rng_);
  const auto ct = committee.encrypt(to_bytes("m"), rng_);
  auto p0 =
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[0], ct);
  const auto p1 =
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[1], ct);
  p0.value = group_.mul(p0.value, group_.g());  // corrupt contribution
  // The derived KEM key is wrong, so the DEM MAC rejects.
  EXPECT_FALSE(committee.combine(ct, {p0, p1}).has_value());
}

TEST_F(ThresholdTest, SingleHolderCannotDecryptAlone) {
  // The defining property: no share alone is the key.
  const auto committee = ThresholdElGamal::deal(group_, 2, 2, rng_);
  const auto ct = committee.encrypt(to_bytes("secret"), rng_);
  for (const KeyShare& share : committee.shares()) {
    const KeyPair lone = KeyPair::from_secret(group_, share.value);
    EXPECT_FALSE(elgamal_decrypt(lone, ct).has_value());
  }
}

TEST_F(ThresholdTest, ThresholdOneDegeneratesToPlainElGamal) {
  const auto committee = ThresholdElGamal::deal(group_, 1, 1, rng_);
  const auto ct = committee.encrypt(to_bytes("m"), rng_);
  const auto p =
      ThresholdElGamal::partial_decrypt(group_, committee.shares()[0], ct);
  EXPECT_EQ(committee.combine(ct, {p}), to_bytes("m"));
}

TEST_F(ThresholdTest, InvalidDealParametersThrow) {
  EXPECT_THROW(ThresholdElGamal::deal(group_, 0, 3, rng_),
               common::CryptoError);
  EXPECT_THROW(ThresholdElGamal::deal(group_, 4, 3, rng_),
               common::CryptoError);
}

class ThresholdConfigs
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ThresholdConfigs, RoundTrip) {
  const auto [t, n] = GetParam();
  const Group& group = Group::test_group();
  common::Rng rng(t * 31 + n);
  const auto committee = ThresholdElGamal::deal(group, t, n, rng);
  const common::Bytes msg = rng.next_bytes(100);
  const auto ct = committee.encrypt(msg, rng);
  std::vector<PartialDecryption> partials;
  for (std::size_t i = 0; i < t; ++i) {
    partials.push_back(ThresholdElGamal::partial_decrypt(
        group, committee.shares()[n - 1 - i], ct));
  }
  EXPECT_EQ(committee.combine(ct, partials), msg);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ThresholdConfigs,
    ::testing::Values(std::pair{1u, 3u}, std::pair{2u, 3u}, std::pair{3u, 3u},
                      std::pair{3u, 7u}, std::pair{5u, 9u}));

}  // namespace
}  // namespace veil::crypto
