#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace veil::crypto {
namespace {

using common::Bytes;
using common::to_bytes;

std::vector<Bytes> make_leaves(std::size_t n) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

std::vector<Bytes> make_salts(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Bytes> salts;
  for (std::size_t i = 0; i < n; ++i) salts.push_back(rng.next_bytes(16));
  return salts;
}

TEST(Merkle, EmptyTreeThrows) {
  EXPECT_THROW(MerkleTree::build({}), common::CryptoError);
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_EQ(tree.leaf_count(), 1u);
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], {}, proof));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Digest root = MerkleTree::build(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto modified = leaves;
    modified[i].push_back('!');
    EXPECT_NE(MerkleTree::build(modified).root(), root) << i;
  }
}

TEST(Merkle, SaltChangesLeafHash) {
  const auto leaves = make_leaves(4);
  const Digest a = MerkleTree::build(leaves, make_salts(4, 1)).root();
  const Digest b = MerkleTree::build(leaves, make_salts(4, 2)).root();
  EXPECT_NE(a, b);
}

TEST(Merkle, SaltCountMismatchThrows) {
  EXPECT_THROW(MerkleTree::build(make_leaves(4), make_salts(3, 1)),
               common::CryptoError);
}

class MerkleProofs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofs, AllLeavesProvable) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const auto salts = make_salts(n, n);
  const MerkleTree tree = MerkleTree::build(leaves, salts);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], salts[i], proof))
        << "leaf " << i << " of " << n;
    // Wrong leaf payload must fail.
    EXPECT_FALSE(
        MerkleTree::verify(tree.root(), to_bytes("evil"), salts[i], proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofs,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33,
                                           64));

TEST(Merkle, ProofIndexOutOfRangeThrows) {
  const MerkleTree tree = MerkleTree::build(make_leaves(4));
  EXPECT_THROW(tree.prove(4), common::CryptoError);
}

TEST(Merkle, ProofFromDifferentTreeFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree_a = MerkleTree::build(leaves);
  auto other = leaves;
  other[7].push_back('x');
  const MerkleTree tree_b = MerkleTree::build(other);
  const MerkleProof proof = tree_b.prove(0);
  // Same leaf 0, but root from tree A and sibling path from tree B.
  EXPECT_FALSE(MerkleTree::verify(tree_a.root(), leaves[0], {}, proof));
}

// --- Tear-offs --------------------------------------------------------------

TEST(TearOff, VisibleSubsetVerifiesAgainstRoot) {
  const auto leaves = make_leaves(6);
  const auto salts = make_salts(6, 9);
  const MerkleTree tree = MerkleTree::build(leaves, salts);
  const TearOff torn = TearOff::create(leaves, salts, {1, 4});
  EXPECT_TRUE(torn.verify_against(tree.root()));
  EXPECT_EQ(torn.visible_count(), 2u);
  EXPECT_TRUE(torn.is_visible(1));
  EXPECT_FALSE(torn.is_visible(0));
  EXPECT_EQ(torn.leaf(1), leaves[1]);
  EXPECT_EQ(torn.leaf(0), std::nullopt);
}

TEST(TearOff, TamperedVisibleLeafFails) {
  const auto leaves = make_leaves(6);
  const auto salts = make_salts(6, 10);
  const MerkleTree tree = MerkleTree::build(leaves, salts);
  auto tampered_leaves = leaves;
  tampered_leaves[2] = to_bytes("forged");
  const TearOff torn = TearOff::create(tampered_leaves, salts, {2});
  EXPECT_FALSE(torn.verify_against(tree.root()));
}

TEST(TearOff, AllVisibleAndNoneVisible) {
  const auto leaves = make_leaves(4);
  const auto salts = make_salts(4, 11);
  const MerkleTree tree = MerkleTree::build(leaves, salts);
  const TearOff all = TearOff::create(leaves, salts, {0, 1, 2, 3});
  EXPECT_TRUE(all.verify_against(tree.root()));
  const TearOff none = TearOff::create(leaves, salts, {});
  EXPECT_TRUE(none.verify_against(tree.root()));
  EXPECT_EQ(none.visible_count(), 0u);
}

TEST(TearOff, OutOfRangeVisibleIndexThrows) {
  const auto leaves = make_leaves(3);
  EXPECT_THROW(TearOff::create(leaves, {}, {3}), common::CryptoError);
}

TEST(TearOff, EncodingRoundTrip) {
  const auto leaves = make_leaves(5);
  const auto salts = make_salts(5, 12);
  const MerkleTree tree = MerkleTree::build(leaves, salts);
  const TearOff torn = TearOff::create(leaves, salts, {0, 3});
  const TearOff decoded = TearOff::decode(torn.encode());
  EXPECT_TRUE(decoded.verify_against(tree.root()));
  EXPECT_EQ(decoded.leaf(3), leaves[3]);
  EXPECT_EQ(decoded.leaf(1), std::nullopt);
  EXPECT_EQ(decoded.encoded_size(), torn.encoded_size());
}

TEST(TearOff, SaltPreventsBruteForceOfHiddenLeaf) {
  // With salts, identical low-entropy leaves hash differently, so an
  // adversary cannot confirm a guessed value from the leaf hash.
  const std::vector<Bytes> leaves = {to_bytes("yes"), to_bytes("yes")};
  const auto salts = make_salts(2, 13);
  const TearOff torn = TearOff::create(leaves, salts, {});
  const Digest guess_without_salt = MerkleTree::hash_leaf(to_bytes("yes"), {});
  const Digest hidden0 = MerkleTree::hash_leaf(leaves[0], salts[0]);
  const Digest hidden1 = MerkleTree::hash_leaf(leaves[1], salts[1]);
  EXPECT_NE(hidden0, guess_without_salt);
  EXPECT_NE(hidden0, hidden1);  // equal plaintexts, different hashes
}

TEST(TearOff, CountMismatchOnDecodeThrows) {
  const auto leaves = make_leaves(4);
  const TearOff torn = TearOff::create(leaves, {}, {0});
  Bytes enc = torn.encode();
  enc[0] = 5;  // corrupt leaf_count varint
  EXPECT_THROW(TearOff::decode(enc), common::Error);
}

}  // namespace
}  // namespace veil::crypto
