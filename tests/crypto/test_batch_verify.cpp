// Soundness tests for the random-linear-combination batch verifier.
//
// The critical properties: an honest batch always passes, a forged item
// is not only rejected but bisected to its exact add-order index (the
// conviction feeds the Evidence path, so it must be proof-grade), and
// classic cancellation attacks against naive aggregation fail against
// the per-verifier randomizer stream.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/group.hpp"
#include "crypto/multiexp.hpp"
#include "crypto/signature.hpp"
#include "crypto/zkp.hpp"

namespace veil::crypto {
namespace {

class BatchVerifyTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  common::Rng rng_{4242};
};

// ---- multi-exponentiation kernel -------------------------------------------

TEST_F(BatchVerifyTest, MultiExpMatchesNaivePowProduct) {
  std::vector<ExpTerm> terms;
  BigInt expected = 1;
  for (int i = 0; i < 9; ++i) {
    const BigInt base = group_.pow_g(rng_.next_u64() % 100000 + 1);
    const BigInt exp = BigInt(rng_.next_u64()) * BigInt(rng_.next_u64());
    terms.push_back({base, exp});
    expected = group_.mul(expected, base.mod_pow(exp, group_.p()));
  }
  EXPECT_EQ(multi_exp(*group_.mont(), terms), expected);
}

TEST_F(BatchVerifyTest, MultiExpEdgeCases) {
  // Empty product is one.
  EXPECT_EQ(multi_exp(*group_.mont(), {}), BigInt(1));
  // Zero exponents contribute nothing.
  std::vector<ExpTerm> terms{{group_.g(), 0}, {group_.h(), 7}};
  EXPECT_EQ(multi_exp(*group_.mont(), terms),
            group_.h().mod_pow(7, group_.p()));
  // Single term degenerates to mod_pow.
  terms = {{group_.g(), BigInt::from_hex("abcdef0123456789")}};
  EXPECT_EQ(multi_exp(*group_.mont(), terms),
            group_.g().mod_pow(BigInt::from_hex("abcdef0123456789"),
                               group_.p()));
}

// ---- honest batches --------------------------------------------------------

TEST_F(BatchVerifyTest, HonestMixedBatchPasses) {
  BatchVerifier verifier(group_, 1);
  const KeyPair key_a = KeyPair::generate(group_, rng_);
  const KeyPair key_b = KeyPair::generate(group_, rng_);
  for (int i = 0; i < 20; ++i) {
    const common::Bytes msg = rng_.next_bytes(24);
    const KeyPair& key = (i % 2) ? key_a : key_b;
    verifier.add_signature(key.public_key(), msg, key.sign(msg));
  }
  for (int i = 0; i < 8; ++i) {
    const BigInt secret = BigInt(rng_.next_u64()) % group_.q();
    const BigInt y = group_.pow_g(secret);
    const auto proof =
        prove_dlog(group_, group_.g(), secret, common::to_bytes("ctx"), rng_);
    verifier.add_dlog(group_.g(), y, proof, common::to_bytes("ctx"));
  }
  EXPECT_EQ(verifier.pending(), 28u);
  const BatchOutcome outcome = verifier.verify();
  EXPECT_TRUE(outcome.all_valid);
  EXPECT_TRUE(outcome.invalid.empty());
  EXPECT_EQ(outcome.batch_checks, 1u);  // one RLC check, no bisection
  EXPECT_EQ(outcome.bisect_steps, 0u);
  EXPECT_EQ(verifier.pending(), 0u);  // verify() drains the queue
  // Two distinct keys recur across 20 signatures: membership pow is paid
  // twice, not twenty times.
  EXPECT_EQ(verifier.stats().key_cache_misses, 2u + 8u);
  EXPECT_GT(verifier.stats().key_cache_hits, 0u);
}

TEST_F(BatchVerifyTest, EmptyBatchPasses) {
  BatchVerifier verifier(group_, 2);
  const BatchOutcome outcome = verifier.verify();
  EXPECT_TRUE(outcome.all_valid);
  EXPECT_TRUE(outcome.invalid.empty());
}

// ---- forgery conviction ----------------------------------------------------

TEST_F(BatchVerifyTest, SingleForgeryIn128Bisected) {
  BatchVerifier verifier(group_, 3);
  const KeyPair key = KeyPair::generate(group_, rng_);
  constexpr std::size_t kBatch = 128;
  constexpr std::size_t kForged = 77;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const common::Bytes msg = rng_.next_bytes(16);
    Signature sig = key.sign(msg);
    if (i == kForged) {
      // Bump the response scalar: hash binding still holds (e, R, m are
      // untouched), so only the group equation — the probabilistically
      // covered half — can catch it.
      sig.response = (sig.response + 1) % group_.q();
    }
    verifier.add_signature(key.public_key(), msg, sig);
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 1u);
  EXPECT_EQ(outcome.invalid[0], kForged);
  // The conviction came from bisection plus an exact singleton check, not
  // from 128 per-item verifications.
  EXPECT_GT(outcome.bisect_steps, 0u);
  EXPECT_GE(outcome.single_fallbacks, 1u);
  EXPECT_LT(outcome.single_fallbacks, kBatch / 2);
  EXPECT_EQ(verifier.stats().rejected_items, 1u);
}

TEST_F(BatchVerifyTest, MultipleCulpritsAllConvicted) {
  BatchVerifier verifier(group_, 4);
  const KeyPair key = KeyPair::generate(group_, rng_);
  const std::vector<std::size_t> forged{5, 33, 60, 61};
  for (std::size_t i = 0; i < 96; ++i) {
    const common::Bytes msg = rng_.next_bytes(16);
    Signature sig = key.sign(msg);
    if (std::find(forged.begin(), forged.end(), i) != forged.end()) {
      sig.response = (sig.response + 9) % group_.q();
    }
    verifier.add_signature(key.public_key(), msg, sig);
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  EXPECT_EQ(outcome.invalid, forged);  // ascending add-order indices
}

TEST_F(BatchVerifyTest, TamperedCommitmentFailsHashBinding) {
  BatchVerifier verifier(group_, 5);
  const KeyPair key = KeyPair::generate(group_, rng_);
  for (int i = 0; i < 8; ++i) {
    const common::Bytes msg = rng_.next_bytes(16);
    Signature sig = key.sign(msg);
    if (i == 3) sig.commitment = group_.mul(sig.commitment, group_.g());
    verifier.add_signature(key.public_key(), msg, sig);
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 1u);
  EXPECT_EQ(outcome.invalid[0], 3u);
}

TEST_F(BatchVerifyTest, OutOfRangeScalarsRejectedExactly) {
  BatchVerifier verifier(group_, 6);
  const KeyPair key = KeyPair::generate(group_, rng_);
  const common::Bytes msg = common::to_bytes("range");
  Signature bad = key.sign(msg);
  bad.response = bad.response + group_.q();  // >= q: must fail pre-check
  verifier.add_signature(key.public_key(), msg, bad);
  for (int i = 0; i < 3; ++i) {
    const common::Bytes m = rng_.next_bytes(8);
    verifier.add_signature(key.public_key(), m, key.sign(m));
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 1u);
  EXPECT_EQ(outcome.invalid[0], 0u);
}

TEST_F(BatchVerifyTest, ForgedDlogProofConvicted) {
  BatchVerifier verifier(group_, 7);
  for (int i = 0; i < 12; ++i) {
    const BigInt secret = BigInt(rng_.next_u64()) % group_.q();
    const BigInt y = group_.pow_g(secret);
    auto proof =
        prove_dlog(group_, group_.g(), secret, common::to_bytes("c"), rng_);
    if (i == 9) proof.response = (proof.response + 1) % group_.q();
    verifier.add_dlog(group_.g(), y, proof, common::to_bytes("c"));
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  ASSERT_EQ(outcome.invalid.size(), 1u);
  EXPECT_EQ(outcome.invalid[0], 9u);
}

// ---- adversarial aggregation -----------------------------------------------

// The classic attack on sum-based batch verification: shift one response
// up by delta and another down by delta. Under equal (or known) weights
// the defects cancel in the aggregated g-exponent and the combined check
// passes even though both items are individually invalid. Random
// per-item z_i break the cancellation with overwhelming probability, and
// bisection + exact singleton fallback must then convict BOTH items.
TEST_F(BatchVerifyTest, CancellationPairConvicted) {
  BatchVerifier verifier(group_, 8);
  const KeyPair key = KeyPair::generate(group_, rng_);
  std::vector<std::size_t> tampered;
  const BigInt delta = 12345;
  for (int i = 0; i < 16; ++i) {
    const common::Bytes msg = rng_.next_bytes(16);
    Signature sig = key.sign(msg);
    if (i == 4) {
      sig.response = (sig.response + delta) % group_.q();
      tampered.push_back(4);
    } else if (i == 11) {
      sig.response = ((sig.response + group_.q()) - delta) % group_.q();
      tampered.push_back(11);
    }
    verifier.add_signature(key.public_key(), msg, sig);
  }
  const BatchOutcome outcome = verifier.verify();
  EXPECT_FALSE(outcome.all_valid);
  EXPECT_EQ(outcome.invalid, tampered);
}

// ---- determinism -----------------------------------------------------------

TEST_F(BatchVerifyTest, SameSeedSameHistorySameOutcome) {
  BatchVerifier a(group_, 99);
  BatchVerifier b(group_, 99);
  const KeyPair key = KeyPair::generate(group_, rng_);
  std::vector<common::Bytes> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 32; ++i) {
    msgs.push_back(rng_.next_bytes(16));
    sigs.push_back(key.sign(msgs.back()));
  }
  sigs[13].response = (sigs[13].response + 1) % group_.q();
  for (int i = 0; i < 32; ++i) {
    a.add_signature(key.public_key(), msgs[i], sigs[i]);
    b.add_signature(key.public_key(), msgs[i], sigs[i]);
  }
  const BatchOutcome oa = a.verify();
  const BatchOutcome ob = b.verify();
  EXPECT_EQ(oa.invalid, ob.invalid);
  EXPECT_EQ(oa.batch_checks, ob.batch_checks);
  EXPECT_EQ(oa.bisect_steps, ob.bisect_steps);
  EXPECT_EQ(oa.single_fallbacks, ob.single_fallbacks);
}

TEST_F(BatchVerifyTest, DifferentSeedsAgreeOnVerdict) {
  const KeyPair key = KeyPair::generate(group_, rng_);
  std::vector<common::Bytes> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 16; ++i) {
    msgs.push_back(rng_.next_bytes(16));
    sigs.push_back(key.sign(msgs.back()));
  }
  sigs[7].challenge = (sigs[7].challenge + 1) % group_.q();
  for (const std::uint64_t seed : {1ull, 1234567ull, 0xdeadbeefull}) {
    BatchVerifier verifier(group_, seed);
    for (int i = 0; i < 16; ++i) {
      verifier.add_signature(key.public_key(), msgs[i], sigs[i]);
    }
    const BatchOutcome outcome = verifier.verify();
    EXPECT_EQ(outcome.invalid, (std::vector<std::size_t>{7}))
        << "seed " << seed;
  }
}

// Batched accept/reject must be bit-identical to the per-item reference
// implementation for every item — the whole point of the exact fallback.
TEST_F(BatchVerifyTest, BatchMatchesPerItemReference) {
  BatchVerifier verifier(group_, 10);
  const KeyPair key = KeyPair::generate(group_, rng_);
  std::vector<common::Bytes> msgs;
  std::vector<Signature> sigs;
  std::vector<bool> reference;
  for (int i = 0; i < 40; ++i) {
    msgs.push_back(rng_.next_bytes(16));
    Signature sig = key.sign(msgs.back());
    if (i % 7 == 3) sig.response = (sig.response + i) % group_.q();
    sigs.push_back(sig);
    reference.push_back(verify(group_, key.public_key(), msgs.back(), sig));
    verifier.add_signature(key.public_key(), msgs.back(), sig);
  }
  const BatchOutcome outcome = verifier.verify();
  std::vector<bool> batched(40, true);
  for (const std::size_t i : outcome.invalid) batched[i] = false;
  EXPECT_EQ(batched, reference);
}

// ---- wire format of the commitment-bearing signature -----------------------

TEST_F(BatchVerifyTest, SignatureCommitmentRoundTrips) {
  const KeyPair key = KeyPair::generate(group_, rng_);
  const common::Bytes msg = common::to_bytes("wire");
  const Signature sig = key.sign(msg);
  EXPECT_FALSE(sig.commitment.is_zero());
  const Signature decoded = Signature::decode(sig.encode());
  EXPECT_EQ(decoded, sig);
  EXPECT_TRUE(verify(group_, key.public_key(), msg, decoded));
  // A signature stripped of its commitment must not verify: both the hash
  // binding and the group equation are required.
  Signature stripped = sig;
  stripped.commitment = BigInt();
  EXPECT_FALSE(verify(group_, key.public_key(), msg, stripped));
}

}  // namespace
}  // namespace veil::crypto
