#include "crypto/shamir.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

const char* kPrime = "2305843009213693951";  // 2^61 - 1, Mersenne prime

class ShamirTest : public ::testing::Test {
 protected:
  Shamir shamir_{BigInt::from_decimal(kPrime)};
  common::Rng rng_{808};
};

TEST_F(ShamirTest, SplitReconstructExactThreshold) {
  const BigInt secret(123456789);
  const auto shares = shamir_.split(secret, 3, 5, rng_);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shamir_.reconstruct({shares[0], shares[2], shares[4]}), secret);
}

TEST_F(ShamirTest, AllShareSubsetsOfThresholdSizeWork) {
  const BigInt secret(42);
  const auto shares = shamir_.split(secret, 2, 4, rng_);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_EQ(shamir_.reconstruct({shares[i], shares[j]}), secret);
    }
  }
}

TEST_F(ShamirTest, BelowThresholdRevealsNothing) {
  // With t-1 shares the secret is information-theoretically hidden: for
  // any candidate secret there exists a consistent polynomial. Check
  // statistically: one share from splits of two different secrets is
  // identically distributed (can't distinguish by value range).
  const auto shares_a = shamir_.split(BigInt(1), 3, 3, rng_);
  const auto shares_b = shamir_.split(BigInt(1000000), 3, 3, rng_);
  // Interpolating 2 of 3 shares with a forged third gives arbitrary values;
  // reconstructing from fewer than threshold must NOT equal the secret
  // except by negligible chance.
  const BigInt wrong = shamir_.reconstruct({shares_a[0], shares_a[1]});
  EXPECT_NE(wrong, BigInt(1));  // 2-point interpolation of a degree-2 poly
}

TEST_F(ShamirTest, MoreThanThresholdAlsoWorks) {
  const BigInt secret(777);
  const auto shares = shamir_.split(secret, 2, 5, rng_);
  EXPECT_EQ(shamir_.reconstruct(shares), secret);
}

TEST_F(ShamirTest, ZeroSecret) {
  const auto shares = shamir_.split(BigInt(0), 3, 4, rng_);
  EXPECT_EQ(shamir_.reconstruct(shares), BigInt(0));
}

TEST_F(ShamirTest, ThresholdOneIsConstantPolynomial) {
  const auto shares = shamir_.split(BigInt(5), 1, 3, rng_);
  for (const Share& s : shares) EXPECT_EQ(s.y, BigInt(5));
}

TEST_F(ShamirTest, InvalidParametersThrow) {
  EXPECT_THROW(shamir_.split(BigInt(1), 0, 3, rng_), common::CryptoError);
  EXPECT_THROW(shamir_.split(BigInt(1), 4, 3, rng_), common::CryptoError);
  EXPECT_THROW(
      shamir_.split(BigInt::from_decimal(kPrime), 2, 3, rng_),
      common::CryptoError);
  EXPECT_THROW(shamir_.reconstruct({}), common::CryptoError);
}

TEST_F(ShamirTest, DuplicateSharePointsThrow) {
  const auto shares = shamir_.split(BigInt(9), 2, 3, rng_);
  EXPECT_THROW(shamir_.reconstruct({shares[0], shares[0]}),
               common::CryptoError);
}

TEST_F(ShamirTest, ShareAdditionGivesShareOfSum) {
  const BigInt a(1000), b(2345);
  const auto shares_a = shamir_.split(a, 3, 3, rng_);
  const auto shares_b = shamir_.split(b, 3, 3, rng_);
  std::vector<Share> sum_shares;
  for (std::size_t i = 0; i < 3; ++i) {
    sum_shares.push_back(shamir_.add(shares_a[i], shares_b[i]));
  }
  EXPECT_EQ(shamir_.reconstruct(sum_shares), a + b);
}

TEST_F(ShamirTest, ShareScalingGivesShareOfProduct) {
  const BigInt secret(321);
  const auto shares = shamir_.split(secret, 2, 3, rng_);
  std::vector<Share> scaled;
  for (const Share& s : shares) scaled.push_back(shamir_.scale(s, BigInt(7)));
  EXPECT_EQ(shamir_.reconstruct(scaled), BigInt(321 * 7));
}

TEST_F(ShamirTest, AddMismatchedPointsThrows) {
  const auto shares = shamir_.split(BigInt(1), 2, 3, rng_);
  EXPECT_THROW(shamir_.add(shares[0], shares[1]), common::CryptoError);
}

TEST(Shamir, TinyFieldRejected) {
  EXPECT_THROW(Shamir(BigInt(2)), common::CryptoError);
}

class ShamirParams
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirParams, RoundTripAcrossConfigurations) {
  const auto [threshold, count] = GetParam();
  Shamir shamir(BigInt::from_decimal(kPrime));
  common::Rng rng(threshold * 100 + count);
  const BigInt secret = BigInt::random_below(rng, BigInt(1) << 60);
  const auto shares = shamir.split(secret, threshold, count, rng);
  // Use the first `threshold` shares.
  std::vector<Share> subset(shares.begin(),
                            shares.begin() + static_cast<long>(threshold));
  EXPECT_EQ(shamir.reconstruct(subset), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShamirParams,
    ::testing::Values(std::pair{1u, 1u}, std::pair{2u, 2u}, std::pair{2u, 10u},
                      std::pair{5u, 5u}, std::pair{7u, 10u},
                      std::pair{10u, 20u}));

}  // namespace
}  // namespace veil::crypto
