#include "crypto/signature.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

using common::to_bytes;

class SignatureTest : public ::testing::Test {
 protected:
  const Group& group_ = Group::test_group();
  common::Rng rng_{42};
};

TEST_F(SignatureTest, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  const auto sig = kp.sign(to_bytes("hello ledger"));
  EXPECT_TRUE(verify(group_, kp.public_key(), to_bytes("hello ledger"), sig));
}

TEST_F(SignatureTest, RejectsWrongMessage) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  const auto sig = kp.sign(to_bytes("message A"));
  EXPECT_FALSE(verify(group_, kp.public_key(), to_bytes("message B"), sig));
}

TEST_F(SignatureTest, RejectsWrongKey) {
  const KeyPair alice = KeyPair::generate(group_, rng_);
  const KeyPair bob = KeyPair::generate(group_, rng_);
  const auto sig = alice.sign(to_bytes("m"));
  EXPECT_FALSE(verify(group_, bob.public_key(), to_bytes("m"), sig));
}

TEST_F(SignatureTest, RejectsTamperedSignature) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  Signature sig = kp.sign(to_bytes("m"));
  sig.response = (sig.response + BigInt(1)) % group_.q();
  EXPECT_FALSE(verify(group_, kp.public_key(), to_bytes("m"), sig));
  Signature sig2 = kp.sign(to_bytes("m"));
  sig2.challenge = (sig2.challenge + BigInt(1)) % group_.q();
  EXPECT_FALSE(verify(group_, kp.public_key(), to_bytes("m"), sig2));
}

TEST_F(SignatureTest, RejectsOutOfRangeComponents) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  Signature sig = kp.sign(to_bytes("m"));
  sig.response = sig.response + group_.q();
  EXPECT_FALSE(verify(group_, kp.public_key(), to_bytes("m"), sig));
}

TEST_F(SignatureTest, RejectsInvalidPublicKey) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  const auto sig = kp.sign(to_bytes("m"));
  PublicKey bogus{BigInt(0)};
  EXPECT_FALSE(verify(group_, bogus, to_bytes("m"), sig));
}

TEST_F(SignatureTest, DeterministicNonce) {
  // Same key + message => identical signature (RFC 6979 style).
  const KeyPair kp = KeyPair::generate(group_, rng_);
  EXPECT_EQ(kp.sign(to_bytes("m")), kp.sign(to_bytes("m")));
  EXPECT_NE(kp.sign(to_bytes("m1")), kp.sign(to_bytes("m2")));
}

TEST_F(SignatureTest, FromSecretIsDeterministic) {
  const BigInt secret(123456789);
  const KeyPair a = KeyPair::from_secret(group_, secret);
  const KeyPair b = KeyPair::from_secret(group_, secret);
  EXPECT_EQ(a.public_key(), b.public_key());
}

TEST_F(SignatureTest, FromSecretRejectsZero) {
  EXPECT_THROW(KeyPair::from_secret(group_, group_.q()),
               common::CryptoError);
}

TEST_F(SignatureTest, EncodingRoundTrips) {
  const KeyPair kp = KeyPair::generate(group_, rng_);
  const PublicKey pub2 = PublicKey::decode(kp.public_key().encode());
  EXPECT_EQ(pub2, kp.public_key());
  const Signature sig = kp.sign(to_bytes("m"));
  const Signature sig2 = Signature::decode(sig.encode());
  EXPECT_EQ(sig2, sig);
  EXPECT_TRUE(verify(group_, pub2, to_bytes("m"), sig2));
}

TEST_F(SignatureTest, FingerprintStableAndDistinct) {
  const KeyPair a = KeyPair::generate(group_, rng_);
  const KeyPair b = KeyPair::generate(group_, rng_);
  EXPECT_EQ(a.public_key().fingerprint(), a.public_key().fingerprint());
  EXPECT_NE(a.public_key().fingerprint(), b.public_key().fingerprint());
  EXPECT_EQ(a.public_key().fingerprint().size(), 16u);
}

TEST_F(SignatureTest, WorksInDefaultGroupToo) {
  const Group& group = Group::default_group();
  const KeyPair kp = KeyPair::generate(group, rng_);
  const auto sig = kp.sign(to_bytes("production-size group"));
  EXPECT_TRUE(
      verify(group, kp.public_key(), to_bytes("production-size group"), sig));
}

class SignatureMessages : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignatureMessages, VariousMessageSizes) {
  const Group& group = Group::test_group();
  common::Rng rng(GetParam());
  const KeyPair kp = KeyPair::generate(group, rng);
  const common::Bytes msg = rng.next_bytes(GetParam());
  const auto sig = kp.sign(msg);
  EXPECT_TRUE(verify(group, kp.public_key(), msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SignatureMessages,
                         ::testing::Values(0, 1, 32, 100, 1000, 10000));

}  // namespace
}  // namespace veil::crypto
