#include "crypto/paillier.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  // 128-bit primes keep tests fast; bench_crypto uses larger keys.
  common::Rng rng_{314159};
  PaillierKeyPair keys_ = PaillierKeyPair::generate(rng_, 128);
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (std::uint64_t m : {0ULL, 1ULL, 42ULL, 1000000ULL}) {
    const auto ct = paillier_encrypt(keys_.public_key(), BigInt(m), rng_);
    EXPECT_EQ(keys_.decrypt(ct).to_u64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  const auto a = paillier_encrypt(keys_.public_key(), BigInt(5), rng_);
  const auto b = paillier_encrypt(keys_.public_key(), BigInt(5), rng_);
  EXPECT_NE(a, b);  // semantic security: same plaintext, fresh randomness
  EXPECT_EQ(keys_.decrypt(a), keys_.decrypt(b));
}

TEST_F(PaillierTest, AdditiveHomomorphism) {
  const auto a = paillier_encrypt(keys_.public_key(), BigInt(1200), rng_);
  const auto b = paillier_encrypt(keys_.public_key(), BigInt(345), rng_);
  const auto sum = paillier_add(keys_.public_key(), a, b);
  EXPECT_EQ(keys_.decrypt(sum).to_u64(), 1545u);
}

TEST_F(PaillierTest, ScalarMultiplication) {
  const auto a = paillier_encrypt(keys_.public_key(), BigInt(111), rng_);
  const auto tripled = paillier_mul_plain(keys_.public_key(), a, BigInt(3));
  EXPECT_EQ(keys_.decrypt(tripled).to_u64(), 333u);
}

TEST_F(PaillierTest, ChainedAggregation) {
  // Aggregating many encrypted ledger entries, as an uninvolved validator
  // would.
  PaillierCiphertext acc =
      paillier_encrypt(keys_.public_key(), BigInt(0), rng_);
  std::uint64_t expected = 0;
  for (std::uint64_t v = 1; v <= 20; ++v) {
    acc = paillier_add(keys_.public_key(), acc,
                       paillier_encrypt(keys_.public_key(), BigInt(v), rng_));
    expected += v;
  }
  EXPECT_EQ(keys_.decrypt(acc).to_u64(), expected);
}

TEST_F(PaillierTest, PlaintextTooLargeThrows) {
  EXPECT_THROW(
      paillier_encrypt(keys_.public_key(), keys_.public_key().n, rng_),
      common::CryptoError);
}

TEST_F(PaillierTest, MalformedCiphertextThrows) {
  EXPECT_THROW(keys_.decrypt(PaillierCiphertext{BigInt(0)}),
               common::CryptoError);
  EXPECT_THROW(
      keys_.decrypt(PaillierCiphertext{keys_.public_key().n_squared}),
      common::CryptoError);
}

TEST_F(PaillierTest, PublicKeyEncodingRoundTrip) {
  const auto decoded =
      PaillierPublicKey::decode(keys_.public_key().encode());
  EXPECT_EQ(decoded.n, keys_.public_key().n);
  EXPECT_EQ(decoded.n_squared, keys_.public_key().n_squared);
  // Encrypt under the decoded key; decrypt with the original secrets.
  const auto ct = paillier_encrypt(decoded, BigInt(77), rng_);
  EXPECT_EQ(keys_.decrypt(ct).to_u64(), 77u);
}

TEST_F(PaillierTest, SumWrapsModN) {
  // (n-1) + 2 = 1 mod n: documents the modular-arithmetic caveat.
  const BigInt n_minus_1 = keys_.public_key().n - BigInt(1);
  const auto a = paillier_encrypt(keys_.public_key(), n_minus_1, rng_);
  const auto b = paillier_encrypt(keys_.public_key(), BigInt(2), rng_);
  const auto sum = paillier_add(keys_.public_key(), a, b);
  EXPECT_EQ(keys_.decrypt(sum), BigInt(1));
}

TEST(Paillier, DistinctKeysDontInterop) {
  common::Rng rng(999);
  const auto k1 = PaillierKeyPair::generate(rng, 128);
  const auto k2 = PaillierKeyPair::generate(rng, 128);
  const auto ct = paillier_encrypt(k1.public_key(), BigInt(42), rng);
  // Decrypting with the wrong key gives garbage (or throws on range).
  try {
    EXPECT_NE(k2.decrypt(ct).to_u64(), 42u);
  } catch (const common::CryptoError&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace veil::crypto
