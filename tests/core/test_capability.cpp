#include "core/capability.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::core {
namespace {

using M = Mechanism;
using S = Support;

TEST(Capability, CatalogHasFifteenMechanisms) {
  EXPECT_EQ(mechanism_catalog().size(), 15u);
}

TEST(Capability, Table1HasFifteenRows) {
  EXPECT_EQ(table1_rows().size(), 15u);
}

TEST(Capability, PaperTable1GoldenCells) {
  // Spot-check Table 1 exactly as published.
  const CapabilityMatrix& t = CapabilityMatrix::paper_table1();
  // Parties
  EXPECT_EQ(t.at(Platform::Fabric, M::SeparationOfLedgers), S::Native);
  EXPECT_EQ(t.at(Platform::Fabric, M::OneTimePublicKeys), S::HardRewrite);
  EXPECT_EQ(t.at(Platform::Corda, M::OneTimePublicKeys), S::Native);
  EXPECT_EQ(t.at(Platform::Quorum, M::OneTimePublicKeys), S::Extendable);
  EXPECT_EQ(t.at(Platform::Fabric, M::ZkpIdentity), S::Native);
  EXPECT_EQ(t.at(Platform::Corda, M::ZkpIdentity), S::HardRewrite);
  // Transactions
  EXPECT_EQ(t.at(Platform::Fabric, M::OffChainData), S::Native);
  EXPECT_EQ(t.at(Platform::Corda, M::OffChainData), S::Extendable);
  EXPECT_EQ(t.at(Platform::Quorum, M::OffChainData), S::HardRewrite);
  EXPECT_EQ(t.at(Platform::Fabric, M::SymmetricEncryption), S::Native);
  EXPECT_EQ(t.at(Platform::Fabric, M::MerkleTearOffs), S::Extendable);
  EXPECT_EQ(t.at(Platform::Corda, M::MerkleTearOffs), S::Native);
  EXPECT_EQ(t.at(Platform::Quorum, M::MerkleTearOffs), S::HardRewrite);
  for (Platform p : {Platform::Fabric, Platform::Corda, Platform::Quorum}) {
    EXPECT_EQ(t.at(p, M::ZkProofs), S::Extendable);
    EXPECT_EQ(t.at(p, M::MultipartyComputation), S::Extendable);
    EXPECT_EQ(t.at(p, M::HomomorphicEncryption), S::Extendable);
    EXPECT_EQ(t.at(p, M::TeeForLogic), S::HardRewrite);
    EXPECT_EQ(t.at(p, M::PrivateSequencer), S::Native);
    EXPECT_EQ(t.at(p, M::OpenSource), S::Native);
  }
  // Logic
  EXPECT_EQ(t.at(Platform::Fabric, M::InstallOnInvolvedNodes), S::Native);
  EXPECT_EQ(t.at(Platform::Corda, M::InstallOnInvolvedNodes),
            S::NotApplicable);
  EXPECT_EQ(t.at(Platform::Quorum, M::InstallOnInvolvedNodes), S::Native);
  EXPECT_EQ(t.at(Platform::Fabric, M::OffChainExecutionEngine),
            S::Extendable);
  EXPECT_EQ(t.at(Platform::Corda, M::OffChainExecutionEngine), S::Native);
  EXPECT_EQ(t.at(Platform::Quorum, M::OffChainExecutionEngine),
            S::HardRewrite);
}

TEST(Capability, EveryTable1CellDefined) {
  const CapabilityMatrix& t = CapabilityMatrix::paper_table1();
  for (const auto& [category, mech] : table1_rows()) {
    for (Platform p : {Platform::Fabric, Platform::Corda, Platform::Quorum}) {
      EXPECT_NO_THROW(t.at(p, mech)) << category << "/" << to_string(mech);
    }
  }
}

TEST(Capability, MissingCellThrows) {
  CapabilityMatrix empty;
  EXPECT_THROW(empty.at(Platform::Fabric, M::OpenSource), common::Error);
}

TEST(Capability, SetOverrides) {
  CapabilityMatrix m;
  m.set(Platform::Fabric, M::OpenSource, S::Native);
  EXPECT_EQ(m.at(Platform::Fabric, M::OpenSource), S::Native);
  m.set(Platform::Fabric, M::OpenSource, S::Extendable);
  EXPECT_EQ(m.at(Platform::Fabric, M::OpenSource), S::Extendable);
}

TEST(Capability, SymbolsMatchPaperLegend) {
  EXPECT_EQ(symbol(S::Native), "+");
  EXPECT_EQ(symbol(S::Extendable), "*");
  EXPECT_EQ(symbol(S::HardRewrite), "-");
  EXPECT_EQ(symbol(S::NotApplicable), "N/A");
}

TEST(Capability, RenderContainsEveryRowAndPlatform) {
  const std::string rendered = CapabilityMatrix::paper_table1().render();
  for (const auto& [category, mech] : table1_rows()) {
    EXPECT_NE(rendered.find(to_string(mech)), std::string::npos);
  }
  for (const char* platform : {"HLF", "Corda", "Quorum"}) {
    EXPECT_NE(rendered.find(platform), std::string::npos);
  }
}

TEST(Capability, MechanismInfoConsistent) {
  for (const MechanismInfo& m : mechanism_catalog()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_FALSE(m.summary.empty());
    EXPECT_EQ(info(m.id).name, m.name);
  }
  // Maturity claims from §2.
  EXPECT_EQ(info(M::HomomorphicEncryption).maturity,
            Maturity::ProofOfConcept);
  EXPECT_EQ(info(M::ZkProofs).maturity, Maturity::Emerging);
  EXPECT_EQ(info(M::SymmetricEncryption).maturity, Maturity::Production);
}

}  // namespace
}  // namespace veil::core
