#include "core/assessment.hpp"

#include <gtest/gtest.h>

#include "core/requirements.hpp"

namespace veil::core {
namespace {

using M = Mechanism;

Recommendation rec_of(std::vector<M> mechanisms) {
  Recommendation rec;
  rec.mechanisms = std::move(mechanisms);
  return rec;
}

TEST(Assessment, AllNativeScoresOne) {
  const auto results = assess(rec_of({M::SeparationOfLedgers, M::OpenSource}),
                              CapabilityMatrix::paper_table1());
  for (const auto& a : results) {
    EXPECT_DOUBLE_EQ(a.score, 1.0) << to_string(a.platform);
    EXPECT_EQ(a.native, 2);
    EXPECT_TRUE(a.gaps.empty());
  }
}

TEST(Assessment, BlockedMechanismsScoreZeroAndReportGaps) {
  // TEE for logic is '—' everywhere.
  const auto results =
      assess(rec_of({M::TeeForLogic}), CapabilityMatrix::paper_table1());
  for (const auto& a : results) {
    EXPECT_DOUBLE_EQ(a.score, 0.0);
    EXPECT_EQ(a.blocked, 1);
    ASSERT_EQ(a.gaps.size(), 1u);
    EXPECT_NE(a.gaps[0].find("substantial rewriting"), std::string::npos);
  }
}

TEST(Assessment, RankingFavoursNativeSupport) {
  // One-time public keys: Corda native, Quorum extendable, Fabric blocked.
  const auto results =
      assess(rec_of({M::OneTimePublicKeys}), CapabilityMatrix::paper_table1());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].platform, Platform::Corda);
  EXPECT_EQ(results[1].platform, Platform::Quorum);
  EXPECT_EQ(results[2].platform, Platform::Fabric);
  EXPECT_GT(results[0].score, results[1].score);
  EXPECT_GT(results[1].score, results[2].score);
}

TEST(Assessment, NotApplicableDoesNotPenalise) {
  // Install-on-involved-nodes is N/A for Corda; Corda must tie with the
  // native platforms.
  const auto results = assess(rec_of({M::InstallOnInvolvedNodes}),
                              CapabilityMatrix::paper_table1());
  for (const auto& a : results) {
    EXPECT_DOUBLE_EQ(a.score, 1.0) << to_string(a.platform);
  }
}

TEST(Assessment, EmptyRecommendationPerfectScores) {
  const auto results = assess(rec_of({}), CapabilityMatrix::paper_table1());
  for (const auto& a : results) EXPECT_DOUBLE_EQ(a.score, 1.0);
}

TEST(Assessment, LetterOfCreditFavoursFabric) {
  // The LoC profile recommends off-chain data + separation + symmetric
  // encryption. Fabric supports all three natively (PDC/peer off-chain
  // data is '+' only for Fabric), so it must rank first.
  const auto rec = DecisionEngine::for_profile(letter_of_credit_profile());
  const auto results = assess(rec, CapabilityMatrix::paper_table1());
  EXPECT_EQ(results[0].platform, Platform::Fabric);
  EXPECT_GT(results[0].score, results[2].score);
}

TEST(Assessment, RenderMentionsAllPlatforms) {
  const auto results =
      assess(rec_of({M::ZkProofs}), CapabilityMatrix::paper_table1());
  const std::string out = render(results);
  for (const char* p : {"HLF", "Corda", "Quorum"}) {
    EXPECT_NE(out.find(p), std::string::npos);
  }
}

}  // namespace
}  // namespace veil::core
