#include "core/demonstration.hpp"

#include <gtest/gtest.h>

namespace veil::core {
namespace {

// The demonstration harness must agree with Table 1: every Native or
// Extendable (or N/A) cell demonstrates; every HardRewrite cell reports
// non-demonstrable.
class DemonstrationMatchesTable1
    : public ::testing::TestWithParam<std::tuple<Platform, std::size_t>> {};

TEST_P(DemonstrationMatchesTable1, CellAgrees) {
  const auto [platform, row_index] = GetParam();
  const Mechanism mechanism = table1_rows()[row_index].second;
  const Support support =
      CapabilityMatrix::paper_table1().at(platform, mechanism);
  const DemoResult result = demonstrate(platform, mechanism);
  const bool expected = support != Support::HardRewrite;
  EXPECT_EQ(result.demonstrated, expected)
      << to_string(platform) << " / " << to_string(mechanism) << " ("
      << symbol(support) << "): " << result.note;
  EXPECT_FALSE(result.note.empty());
}

using DemoParam = std::tuple<Platform, std::size_t>;

std::string demo_param_name(const ::testing::TestParamInfo<DemoParam>& info) {
  const auto [platform, row] = info.param;
  std::string name = to_string(platform) + "_row" + std::to_string(row);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, DemonstrationMatchesTable1,
    ::testing::Combine(::testing::Values(Platform::Fabric, Platform::Corda,
                                         Platform::Quorum),
                       ::testing::Range<std::size_t>(0, 15)),
    demo_param_name);

TEST(Demonstration, ReproducibleAcrossSeeds) {
  // The semantic outcome must not depend on the seed.
  for (std::uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    EXPECT_TRUE(demonstrate(Platform::Fabric, Mechanism::SeparationOfLedgers,
                            seed)
                    .demonstrated)
        << seed;
    EXPECT_FALSE(
        demonstrate(Platform::Fabric, Mechanism::OneTimePublicKeys, seed)
            .demonstrated)
        << seed;
  }
}

}  // namespace
}  // namespace veil::core
