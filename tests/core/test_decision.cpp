#include "core/decision.hpp"

#include <gtest/gtest.h>

namespace veil::core {
namespace {

using M = Mechanism;

// --- Figure 1 named paths -----------------------------------------------------

TEST(DecisionData, DeletionRequiresOffChain) {
  DataRequirements req;
  req.deletion_required = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::OffChainData));
  EXPECT_FALSE(rec.caveats.empty());  // immutability caveat attached
}

TEST(DecisionData, NoEncryptedSharingMeansSegregation) {
  DataRequirements req;
  req.encrypted_sharing_allowed = false;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::SeparationOfLedgers));
}

TEST(DecisionData, OnChainRecordPrefersSegregatedLedgers) {
  DataRequirements req;  // defaults: on-chain desired, involved validators
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::SeparationOfLedgers));
}

TEST(DecisionData, HideWithinTransactionAddsTearOffs) {
  DataRequirements req;
  req.hide_within_transaction = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::MerkleTearOffs));
}

TEST(DecisionData, UninvolvedValidationNeedsTee) {
  DataRequirements req;
  req.uninvolved_validation = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::TrustedExecution));
  // The homomorphic-maturity caveat must be present.
  bool he_caveat = false;
  for (const auto& c : rec.caveats) {
    if (c.find("omomorphic") != std::string::npos) he_caveat = true;
  }
  EXPECT_TRUE(he_caveat);
  // And TEE replaces the segregated-ledger default on this branch.
  EXPECT_FALSE(rec.recommends(M::SeparationOfLedgers));
}

TEST(DecisionData, PrivateInputsBooleanAffirmationIsZkp) {
  DataRequirements req;
  req.private_inputs = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::ZkProofs));
  EXPECT_FALSE(rec.recommends(M::MultipartyComputation));
}

TEST(DecisionData, SharedFunctionOnPrivateValuesIsMpc) {
  DataRequirements req;
  req.private_inputs = true;
  req.shared_function_on_private = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::MultipartyComputation));
  EXPECT_FALSE(rec.recommends(M::ZkProofs));
}

TEST(DecisionData, UntrustedAdminAddsEncryption) {
  DataRequirements req;
  req.untrusted_node_admin = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.recommends(M::SymmetricEncryption));
}

TEST(DecisionData, NoRestrictionsNoMechanisms) {
  DataRequirements req;
  req.onchain_record_desired = false;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_TRUE(rec.mechanisms.empty());
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(DecisionData, RationaleTracksEveryFork) {
  DataRequirements req;
  req.deletion_required = true;
  req.hide_within_transaction = true;
  req.untrusted_node_admin = true;
  const auto rec = DecisionEngine::for_data(req);
  EXPECT_GE(rec.rationale.size(), 3u);
}

// Exhaustive sweep: engine is total and deterministic over the whole
// requirement space (2^8 profiles).
TEST(DecisionData, TotalOverRequirementSpace) {
  for (int mask = 0; mask < 256; ++mask) {
    DataRequirements req;
    req.deletion_required = mask & 1;
    req.encrypted_sharing_allowed = mask & 2;
    req.onchain_record_desired = mask & 4;
    req.hide_within_transaction = mask & 8;
    req.uninvolved_validation = mask & 16;
    req.private_inputs = mask & 32;
    req.shared_function_on_private = mask & 64;
    req.untrusted_node_admin = mask & 128;
    const auto rec1 = DecisionEngine::for_data(req);
    const auto rec2 = DecisionEngine::for_data(req);
    EXPECT_EQ(rec1.mechanisms.size(), rec2.mechanisms.size()) << mask;
    EXPECT_FALSE(rec1.rationale.empty()) << mask;
    // Invariants that must hold on every path:
    if (req.deletion_required) {
      EXPECT_TRUE(rec1.recommends(M::OffChainData)) << mask;
    }
    if (req.private_inputs && req.shared_function_on_private) {
      EXPECT_TRUE(rec1.recommends(M::MultipartyComputation)) << mask;
    }
    if (req.untrusted_node_admin) {
      EXPECT_TRUE(rec1.recommends(M::SymmetricEncryption)) << mask;
    }
  }
}

// --- §3.1 party privacy --------------------------------------------------------

TEST(DecisionParties, GroupHidingIsSeparation) {
  PartyRequirements req;
  req.hide_group_from_network = true;
  EXPECT_TRUE(DecisionEngine::for_parties(req).recommends(
      M::SeparationOfLedgers));
}

TEST(DecisionParties, SubgroupHidingIsOneTimeKeys) {
  PartyRequirements req;
  req.hide_subgroup_on_ledger = true;
  EXPECT_TRUE(
      DecisionEngine::for_parties(req).recommends(M::OneTimePublicKeys));
}

TEST(DecisionParties, FullyPrivateIndividualIsZkpIdentity) {
  PartyRequirements req;
  req.fully_private_individual = true;
  EXPECT_TRUE(DecisionEngine::for_parties(req).recommends(M::ZkpIdentity));
}

TEST(DecisionParties, LayeredRequirementsStack) {
  PartyRequirements req;
  req.hide_group_from_network = true;
  req.hide_subgroup_on_ledger = true;
  req.fully_private_individual = true;
  const auto rec = DecisionEngine::for_parties(req);
  EXPECT_EQ(rec.mechanisms.size(), 3u);
}

// --- §3.3 logic confidentiality -------------------------------------------------

TEST(DecisionLogic, HideFromAdminIsTee) {
  LogicRequirements req;
  req.hide_from_node_admin = true;
  req.keep_logic_private = true;
  const auto rec = DecisionEngine::for_logic(req);
  EXPECT_TRUE(rec.recommends(M::TeeForLogic));
  EXPECT_FALSE(rec.recommends(M::InstallOnInvolvedNodes));
}

TEST(DecisionLogic, PrivateLogicPlatformLanguageIsInstallRestriction) {
  LogicRequirements req;
  req.keep_logic_private = true;
  EXPECT_TRUE(DecisionEngine::for_logic(req).recommends(
      M::InstallOnInvolvedNodes));
}

TEST(DecisionLogic, PrivateLogicWithLanguageFreedomIsOffChainEngine) {
  LogicRequirements req;
  req.keep_logic_private = true;
  req.language_freedom = true;
  EXPECT_TRUE(DecisionEngine::for_logic(req).recommends(
      M::OffChainExecutionEngine));
}

TEST(DecisionLogic, VersioningCaveatForExternalEngine) {
  LogicRequirements req;
  req.keep_logic_private = true;
  req.language_freedom = true;
  req.need_builtin_versioning = true;
  const auto rec = DecisionEngine::for_logic(req);
  bool versioning_caveat = false;
  for (const auto& c : rec.caveats) {
    if (c.find("version") != std::string::npos) versioning_caveat = true;
  }
  EXPECT_TRUE(versioning_caveat);
}

TEST(DecisionLogic, LanguageFreedomAloneStillOffChainEngine) {
  LogicRequirements req;
  req.language_freedom = true;
  EXPECT_TRUE(DecisionEngine::for_logic(req).recommends(
      M::OffChainExecutionEngine));
}

TEST(DecisionLogic, NoRequirementsNoMechanisms) {
  const auto rec = DecisionEngine::for_logic({});
  EXPECT_TRUE(rec.mechanisms.empty());
}

// --- Profile union ----------------------------------------------------------------

TEST(DecisionProfile, UnionDeduplicates) {
  RequirementProfile profile;
  profile.parties.hide_group_from_network = true;  // -> separation
  profile.data.encrypted_sharing_allowed = false;  // -> separation again
  const auto rec = DecisionEngine::for_profile(profile);
  int separation_count = 0;
  for (M m : rec.mechanisms) {
    if (m == M::SeparationOfLedgers) ++separation_count;
  }
  EXPECT_EQ(separation_count, 1);
}

TEST(DecisionProfile, LetterOfCreditMatchesPaperSection4) {
  // The paper's conclusion for the LoC case: off-ledger PII, segregated
  // ledger for the transacting group, encrypted data if a third party
  // runs the orderer.
  const auto rec =
      DecisionEngine::for_profile(letter_of_credit_profile());
  EXPECT_TRUE(rec.recommends(M::OffChainData));
  EXPECT_TRUE(rec.recommends(M::SeparationOfLedgers));
  EXPECT_TRUE(rec.recommends(M::SymmetricEncryption));
  // Logic is standardized and non-confidential: no logic mechanisms.
  EXPECT_FALSE(rec.recommends(M::TeeForLogic));
  EXPECT_FALSE(rec.recommends(M::OffChainExecutionEngine));
  // No uninvolved validation: no TEE for data either.
  EXPECT_FALSE(rec.recommends(M::TrustedExecution));
}

}  // namespace
}  // namespace veil::core
