#include "ledger/wal.hpp"

#include <gtest/gtest.h>

#include "ledger/chain.hpp"

namespace veil::ledger {
namespace {

using common::Bytes;
using common::to_bytes;

Block make_block(std::uint64_t height, const crypto::Digest& prev,
                 const std::string& key) {
  Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = "put";
  tx.writes = {{key, to_bytes("v-" + key), false}};
  return Block::make(height, prev, {tx}, height + 1);
}

TEST(Wal, AppendAndRecoverRoundTrip) {
  WriteAheadLog wal;
  wal.append(7, to_bytes("first"));
  wal.append(9, to_bytes("second"));
  wal.append(7, Bytes{});  // empty payloads are valid records
  EXPECT_EQ(wal.record_count(), 3u);

  const auto records = wal.recover();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 7);
  EXPECT_EQ(records[0].payload, to_bytes("first"));
  EXPECT_EQ(records[1].type, 9);
  EXPECT_EQ(records[1].payload, to_bytes("second"));
  EXPECT_EQ(records[2].type, 7);
  EXPECT_TRUE(records[2].payload.empty());
  EXPECT_EQ(wal.torn_tail_bytes(), 0u);
}

TEST(Wal, TornTailYieldsCleanPrefix) {
  WriteAheadLog wal;
  wal.append(1, to_bytes("keep-me"));
  wal.append(2, to_bytes("also-keep"));
  const std::size_t intact = wal.size_bytes();
  wal.append(3, to_bytes("torn-away"));
  // Chop halfway into the last record, simulating a crash mid-write.
  wal.tear((wal.size_bytes() - intact) / 2 + 1);

  const auto records = wal.recover();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, to_bytes("keep-me"));
  EXPECT_EQ(records[1].payload, to_bytes("also-keep"));
  EXPECT_GT(wal.torn_tail_bytes(), 0u);
}

TEST(Wal, CorruptRecordStopsRecoveryAtCleanPrefix) {
  WriteAheadLog wal;
  wal.append(1, to_bytes("good"));
  const std::size_t first_end = wal.size_bytes();
  wal.append(2, to_bytes("rotted"));
  wal.append(3, to_bytes("after-the-rot"));
  // Flip a byte inside the second record's payload region: its checksum
  // fails, and recovery keeps only the records before it.
  wal.corrupt_byte(first_end + 8);
  const auto records = wal.recover();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, to_bytes("good"));
  EXPECT_GT(wal.torn_tail_bytes(), 0u);
}

TEST(Wal, RecoveryReportDistinguishesCorruptionFromTornTail) {
  // A torn tail is a crash mid-append: expected, benign. A checksum
  // failure on a FULLY FRAMED record is bit-rot or tampering: the log
  // lied, and callers must be able to tell the difference.
  WriteAheadLog torn;
  torn.append(1, to_bytes("keep"));
  torn.append(2, to_bytes("torn-away"));
  torn.tear(4);
  torn.recover();
  EXPECT_EQ(torn.last_recovery().records_recovered, 1u);
  EXPECT_EQ(torn.last_recovery().corrupt_records, 0u);
  EXPECT_GT(torn.last_recovery().torn_tail_bytes, 0u);
  EXPECT_FALSE(torn.last_recovery().clean());

  WriteAheadLog rotted;
  rotted.append(1, to_bytes("keep"));
  const std::size_t first_end = rotted.size_bytes();
  rotted.append(2, to_bytes("mid-log-record"));
  rotted.append(3, to_bytes("unreachable"));
  rotted.corrupt_byte(first_end + 6);  // bit-flip inside record 2's payload
  const auto records = rotted.recover();
  // Recovery stops at the clean prefix and FLAGS the corruption — it is
  // not silently folded into the torn-tail count.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(rotted.last_recovery().records_recovered, 1u);
  EXPECT_EQ(rotted.last_recovery().corrupt_records, 1u);
  EXPECT_FALSE(rotted.last_recovery().clean());

  WriteAheadLog clean;
  clean.append(1, to_bytes("fine"));
  clean.recover();
  EXPECT_TRUE(clean.last_recovery().clean());
  EXPECT_EQ(clean.last_recovery().records_recovered, 1u);
}

TEST(Wal, BlockLogRecoversChainAndState) {
  // Build a 3-block chain, logging each block before applying it; then
  // replay the WAL into a fresh replica and compare digests.
  WriteAheadLog wal;
  Chain chain;
  WorldState state;
  crypto::Digest prev = chain.tip_hash();
  for (std::uint64_t h = 0; h < 3; ++h) {
    Block block = make_block(h, prev, "k" + std::to_string(h));
    wal_log_block(wal, block);
    prev = block.header.hash();
    for (const Transaction& tx : block.transactions) state.apply(tx);
    chain.append(std::move(block));
  }

  const WalRecovery recovery = wal_recover_blocks(wal);
  EXPECT_FALSE(recovery.checkpoint.has_value());
  ASSERT_EQ(recovery.blocks.size(), 3u);

  Chain replayed;
  WorldState replayed_state;
  for (const Block& block : recovery.blocks) {
    for (const Transaction& tx : block.transactions) replayed_state.apply(tx);
    replayed.append(block);
  }
  EXPECT_EQ(replayed.height(), chain.height());
  EXPECT_EQ(replayed.tip_hash(), chain.tip_hash());
  EXPECT_EQ(replayed_state.digest(), state.digest());
}

TEST(Wal, CheckpointPlusBlocksRoundTrip) {
  // A peer that joined from a snapshot logs a checkpoint first, then
  // blocks; recovery must rebuild from the checkpoint.
  WorldState snap_state;
  snap_state.put("base", to_bytes("snapshot-value"));
  const crypto::Digest tip = crypto::sha256(std::string_view("fake-tip"));

  WriteAheadLog wal;
  wal_log_checkpoint(wal, 5, tip, snap_state);
  Block block = make_block(5, tip, "post-snap");
  wal_log_block(wal, block);

  const WalRecovery recovery = wal_recover_blocks(wal);
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->height, 5u);
  EXPECT_EQ(recovery.checkpoint->tip_hash, tip);
  EXPECT_EQ(recovery.checkpoint->state.digest(), snap_state.digest());
  ASSERT_EQ(recovery.blocks.size(), 1u);
  EXPECT_EQ(recovery.blocks[0].header.hash(), block.header.hash());

  Chain chain = Chain::from_checkpoint(recovery.checkpoint->height,
                                       recovery.checkpoint->tip_hash);
  chain.append(recovery.blocks[0]);
  EXPECT_EQ(chain.height(), 6u);
}

TEST(Wal, WorldStateEncodeDecodeDigestStable) {
  WorldState state;
  state.put("alpha", to_bytes("1"));
  state.put("beta", to_bytes("2"));
  state.put("alpha", to_bytes("3"));  // bump version
  const WorldState back = WorldState::decode(state.encode());
  EXPECT_EQ(back.digest(), state.digest());
  ASSERT_TRUE(back.get("alpha").has_value());
  EXPECT_EQ(back.get("alpha")->value, to_bytes("3"));
  EXPECT_EQ(back.get("alpha")->version, state.get("alpha")->version);
}

TEST(Wal, ClearEmptiesLog) {
  WriteAheadLog wal;
  wal.append(1, to_bytes("x"));
  wal.clear();
  EXPECT_EQ(wal.size_bytes(), 0u);
  EXPECT_TRUE(wal.recover().empty());
}

// ---- Checkpoint compaction -------------------------------------------------

TEST(WalCompact, CompactionKeepsOnlyCheckpointAndReportsTruncation) {
  WriteAheadLog wal;
  wal.append(2, to_bytes("block-a"));
  wal.append(2, to_bytes("block-b"));
  wal.append(2, to_bytes("block-c"));
  const std::size_t before = wal.size_bytes();

  const std::size_t dropped = wal.compact(1, to_bytes("checkpoint"));
  EXPECT_EQ(dropped, before);
  EXPECT_EQ(wal.record_count(), 1u);
  EXPECT_EQ(wal.truncated_bytes(), before);

  const auto records = wal.recover();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[0].payload, to_bytes("checkpoint"));
  EXPECT_EQ(wal.last_recovery().truncated_bytes, before);
  EXPECT_TRUE(wal.last_recovery().clean());
}

TEST(WalCompact, CrashBetweenCheckpointAndTruncateLosesNothing) {
  // Power cut in the fsync-then-truncate window: the checkpoint record is
  // durable but the stale prefix was never dropped. Recovery must come up
  // with the checkpoint state exactly — the prefix is wasted space, never
  // replayed, never lost state.
  WriteAheadLog wal;
  const crypto::Digest genesis = crypto::sha256(std::string_view("g"));
  Block b0 = make_block(0, genesis, "k0");
  wal_log_block(wal, b0);
  Block b1 = make_block(1, b0.header.hash(), "k1");
  wal_log_block(wal, b1);

  WorldState state;
  state.put("k0", to_bytes("v-k0"));
  state.put("k1", to_bytes("v-k1"));

  wal.arm_crash_between_checkpoint_and_truncate();
  wal_checkpoint_compact(wal, 2, b1.header.hash(), state);
  // Crash point: both prefix and checkpoint are on disk.
  EXPECT_EQ(wal.record_count(), 3u);
  EXPECT_EQ(wal.truncated_bytes(), 0u);

  const WalRecovery recovery = wal_recover_blocks(wal);
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->height, 2u);
  EXPECT_EQ(recovery.checkpoint->state.digest(), state.digest());
  // The superseded blocks must not be replayed on top of the checkpoint.
  EXPECT_TRUE(recovery.blocks.empty());

  // The NEXT compaction (post-recovery) reclaims the wasted prefix.
  wal_checkpoint_compact(wal, 2, b1.header.hash(), state);
  EXPECT_EQ(wal.record_count(), 1u);
  EXPECT_GT(wal.truncated_bytes(), 0u);
}

TEST(WalCompact, CheckpointAuxSidecarRoundTrips) {
  WriteAheadLog wal;
  WorldState state;
  state.put("pub", to_bytes("1"));
  const crypto::Digest tip = crypto::sha256(std::string_view("tip"));
  wal_checkpoint_compact(wal, 4, tip, state, to_bytes("private-sidecar"));

  const WalRecovery recovery = wal_recover_blocks(wal);
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->aux, to_bytes("private-sidecar"));
}

TEST(WalCompact, BlocksAfterCompactionReplayOnTopOfCheckpoint) {
  WriteAheadLog wal;
  const crypto::Digest genesis = crypto::sha256(std::string_view("g"));
  Block b0 = make_block(0, genesis, "k0");
  wal_log_block(wal, b0);

  WorldState state;
  state.put("k0", to_bytes("v-k0"));
  wal_checkpoint_compact(wal, 1, b0.header.hash(), state);

  Block b1 = make_block(1, b0.header.hash(), "k1");
  wal_log_block(wal, b1);

  const WalRecovery recovery = wal_recover_blocks(wal);
  ASSERT_TRUE(recovery.checkpoint.has_value());
  ASSERT_EQ(recovery.blocks.size(), 1u);
  Chain chain = Chain::from_checkpoint(recovery.checkpoint->height,
                                       recovery.checkpoint->tip_hash);
  chain.append(recovery.blocks[0]);
  EXPECT_EQ(chain.height(), 2u);
}

TEST(WalCompact, RepeatedCompactionBoundsLogSize) {
  WriteAheadLog wal;
  WorldState state;
  std::size_t peak = 0;
  for (int i = 0; i < 100; ++i) {
    wal.append(2, to_bytes("block-" + std::to_string(i)));
    if ((i + 1) % 10 == 0) {
      state.put("k", to_bytes(std::to_string(i)));
      const crypto::Digest tip =
          crypto::sha256(std::string_view("tip"));
      wal_checkpoint_compact(wal, static_cast<std::uint64_t>(i), tip, state);
      peak = std::max(peak, wal.size_bytes());
    }
  }
  // Interval compaction keeps the log near one checkpoint + one interval
  // of records, regardless of history length.
  EXPECT_EQ(wal.record_count(), 1u);
  EXPECT_LE(wal.size_bytes(), peak);
  EXPECT_GT(wal.truncated_bytes(), wal.size_bytes());
}

}  // namespace
}  // namespace veil::ledger
