#include "ledger/chain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::ledger {
namespace {

Transaction make_tx(int i) {
  Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = "act-" + std::to_string(i);
  return tx;
}

Block next_block(const Chain& chain, std::vector<Transaction> txs) {
  return Block::make(chain.height(), chain.tip_hash(), std::move(txs),
                     chain.height() * 10);
}

TEST(Chain, AppendAndQuery) {
  Chain chain;
  chain.append(next_block(chain, {make_tx(0)}));
  chain.append(next_block(chain, {make_tx(1), make_tx(2)}));
  EXPECT_EQ(chain.height(), 2u);
  const auto block = chain.block_at(1);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->transactions.size(), 2u);
  EXPECT_FALSE(chain.block_at(2).has_value());
}

TEST(Chain, RejectsWrongHeight) {
  Chain chain;
  Block block = Block::make(5, chain.tip_hash(), {make_tx(0)}, 0);
  EXPECT_THROW(chain.append(block), common::LedgerError);
}

TEST(Chain, RejectsWrongPreviousHash) {
  Chain chain;
  chain.append(next_block(chain, {make_tx(0)}));
  Block bad = Block::make(1, crypto::sha256(std::string_view("wrong")),
                          {make_tx(1)}, 0);
  EXPECT_THROW(chain.append(bad), common::LedgerError);
}

TEST(Chain, RejectsTamperedBody) {
  Chain chain;
  Block block = next_block(chain, {make_tx(0)});
  block.transactions[0].action = "evil";
  EXPECT_THROW(chain.append(block), common::LedgerError);
}

TEST(Chain, FindTransactionBlock) {
  Chain chain;
  const Transaction needle = make_tx(42);
  chain.append(next_block(chain, {make_tx(0)}));
  chain.append(next_block(chain, {needle}));
  const auto found = chain.find_transaction_block(needle.id());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->header.height, 1u);
  EXPECT_FALSE(chain.find_transaction_block("nonexistent").has_value());
}

TEST(Chain, IntegrityHoldsAfterAppends) {
  Chain chain;
  for (int i = 0; i < 10; ++i) chain.append(next_block(chain, {make_tx(i)}));
  EXPECT_TRUE(chain.verify_integrity());
}

TEST(Chain, PruneMovesBlocksToArchive) {
  Chain chain;
  for (int i = 0; i < 10; ++i) chain.append(next_block(chain, {make_tx(i)}));
  EXPECT_EQ(chain.prune(4), 4u);
  EXPECT_EQ(chain.archived_count(), 4u);
  EXPECT_EQ(chain.live_blocks().size(), 6u);
  EXPECT_EQ(chain.height(), 10u);  // logical height unchanged
}

TEST(Chain, ArchivedBlocksStillAvailable) {
  // The paper's caveat: "archived entries are generally still available
  // to parties on request" — pruning is NOT deletion.
  Chain chain;
  const Transaction tx0 = make_tx(0);
  chain.append(next_block(chain, {tx0}));
  for (int i = 1; i < 5; ++i) chain.append(next_block(chain, {make_tx(i)}));
  chain.prune(3);
  const auto block = chain.block_at(0);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->transactions[0].id(), tx0.id());
  EXPECT_TRUE(chain.find_transaction_block(tx0.id()).has_value());
}

TEST(Chain, AppendContinuesAfterPrune) {
  Chain chain;
  for (int i = 0; i < 5; ++i) chain.append(next_block(chain, {make_tx(i)}));
  chain.prune(5);  // prune everything live
  chain.append(next_block(chain, {make_tx(5)}));
  EXPECT_EQ(chain.height(), 6u);
  EXPECT_TRUE(chain.verify_integrity());
}

TEST(Chain, IntegrityVerificationSpansArchive) {
  Chain chain;
  for (int i = 0; i < 6; ++i) chain.append(next_block(chain, {make_tx(i)}));
  chain.prune(3);
  EXPECT_TRUE(chain.verify_integrity());
}

TEST(Chain, PruneBeyondHeightIsBounded) {
  Chain chain;
  chain.append(next_block(chain, {make_tx(0)}));
  EXPECT_EQ(chain.prune(100), 1u);
  EXPECT_EQ(chain.prune(100), 0u);  // nothing left to prune
}


TEST(Chain, CheckpointBootstrap) {
  // Build a source chain, then bootstrap a new one from its tip.
  Chain source;
  for (int i = 0; i < 5; ++i) source.append(next_block(source, {make_tx(i)}));

  Chain booted = Chain::from_checkpoint(source.height(), source.tip_hash());
  EXPECT_EQ(booted.height(), 5u);
  EXPECT_EQ(booted.checkpoint_height(), 5u);
  EXPECT_FALSE(booted.block_at(0).has_value());  // history not held
  EXPECT_TRUE(booted.verify_integrity());

  // Appending continues from the checkpoint.
  booted.append(next_block(booted, {make_tx(100)}));
  EXPECT_EQ(booted.height(), 6u);
  EXPECT_TRUE(booted.verify_integrity());
  EXPECT_TRUE(booted.block_at(5).has_value());

  // And the same block appends to the source chain identically.
  source.append(next_block(source, {make_tx(100)}));
  EXPECT_EQ(source.tip_hash(), booted.tip_hash());
}

TEST(Chain, CheckpointRejectsWrongContinuation) {
  Chain source;
  source.append(next_block(source, {make_tx(0)}));
  Chain booted = Chain::from_checkpoint(source.height(), source.tip_hash());
  // Wrong height.
  Block bad = Block::make(5, source.tip_hash(), {make_tx(1)}, 0);
  EXPECT_THROW(booted.append(bad), common::LedgerError);
  // Wrong previous hash.
  Block bad2 = Block::make(1, crypto::sha256(std::string_view("x")),
                           {make_tx(1)}, 0);
  EXPECT_THROW(booted.append(bad2), common::LedgerError);
}

TEST(Chain, CheckpointedChainPrunes) {
  Chain source;
  for (int i = 0; i < 3; ++i) source.append(next_block(source, {make_tx(i)}));
  Chain booted = Chain::from_checkpoint(source.height(), source.tip_hash());
  for (int i = 3; i < 8; ++i) booted.append(next_block(booted, {make_tx(i)}));
  EXPECT_EQ(booted.prune(6), 3u);  // prunes heights 3,4,5
  EXPECT_TRUE(booted.block_at(4).has_value());   // archived
  EXPECT_TRUE(booted.block_at(7).has_value());   // live
  EXPECT_FALSE(booted.block_at(2).has_value());  // before checkpoint
  EXPECT_TRUE(booted.verify_integrity());
}

}  // namespace
}  // namespace veil::ledger
