#include "ledger/ordering.hpp"

#include <gtest/gtest.h>

namespace veil::ledger {
namespace {

Transaction tx_on(const std::string& channel, int i) {
  Transaction tx;
  tx.channel = channel;
  tx.contract = "cc";
  tx.action = "a" + std::to_string(i);
  tx.payload = common::to_bytes("payload-" + std::to_string(i));
  tx.participants = {"OrgA", "OrgB"};
  return tx;
}

TEST(Ordering, BatchesByBlockSize) {
  net::LeakageAuditor auditor;
  OrderingService orderer("orderer-org", OrdererDeployment::Shared, auditor,
                          3);
  EXPECT_TRUE(orderer.submit(tx_on("ch", 0), 1).empty());
  EXPECT_TRUE(orderer.submit(tx_on("ch", 1), 2).empty());
  const auto blocks = orderer.submit(tx_on("ch", 2), 3);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].transactions.size(), 3u);
  EXPECT_EQ(blocks[0].header.height, 0u);
}

TEST(Ordering, FlushCutsPartialBatches) {
  net::LeakageAuditor auditor;
  OrderingService orderer("op", OrdererDeployment::Shared, auditor, 100);
  orderer.submit(tx_on("ch", 0), 1);
  orderer.submit(tx_on("ch", 1), 2);
  const auto blocks = orderer.flush(5);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].transactions.size(), 2u);
  EXPECT_TRUE(orderer.flush(6).empty());  // nothing pending
}

TEST(Ordering, PerChannelChains) {
  net::LeakageAuditor auditor;
  OrderingService orderer("op", OrdererDeployment::Shared, auditor, 1);
  const auto b1 = orderer.submit(tx_on("alpha", 0), 1);
  const auto b2 = orderer.submit(tx_on("beta", 0), 2);
  const auto b3 = orderer.submit(tx_on("alpha", 1), 3);
  ASSERT_EQ(b1.size(), 1u);
  ASSERT_EQ(b3.size(), 1u);
  // Each channel numbers its own blocks.
  EXPECT_EQ(b1[0].header.height, 0u);
  EXPECT_EQ(b2[0].header.height, 0u);
  EXPECT_EQ(b3[0].header.height, 1u);
  // And alpha's second block links to its first.
  EXPECT_EQ(b3[0].header.previous_hash, b1[0].header.hash());
}

TEST(Ordering, SharedOrdererSeesEverything) {
  // §3.4: "this service has visibility of all DLT events, including
  // parties to transactions and transaction details".
  net::LeakageAuditor auditor;
  OrderingService orderer("orderer-org", OrdererDeployment::Shared, auditor,
                          1);
  const Transaction tx = tx_on("confidential-channel", 0);
  orderer.submit(tx, 1);
  const std::string prefix = "tx/" + tx.id() + "/";
  EXPECT_TRUE(auditor.saw("orderer-org", prefix + "data"));
  EXPECT_TRUE(auditor.saw("orderer-org", prefix + "parties"));
}

TEST(Ordering, OpaquePayloadShieldsDataFromOrderer) {
  net::LeakageAuditor auditor;
  OrderingService orderer("orderer-org", OrdererDeployment::Shared, auditor,
                          1);
  Transaction tx = tx_on("ch", 0);
  tx.data_opaque = true;  // application encrypted the payload
  orderer.submit(tx, 1);
  EXPECT_FALSE(auditor.saw("orderer-org", "tx/" + tx.id() + "/data"));
  EXPECT_TRUE(auditor.saw_any_form("orderer-org", "tx/" + tx.id() + "/data"));
  // Parties remain visible — encryption does not hide who interacts.
  EXPECT_TRUE(auditor.saw("orderer-org", "tx/" + tx.id() + "/parties"));
}

TEST(Ordering, CountsOrderedTransactions) {
  net::LeakageAuditor auditor;
  OrderingService orderer("op", OrdererDeployment::Private, auditor, 2);
  for (int i = 0; i < 5; ++i) orderer.submit(tx_on("ch", i), i);
  EXPECT_EQ(orderer.transactions_ordered(), 5u);
  EXPECT_EQ(orderer.deployment(), OrdererDeployment::Private);
}

TEST(Ordering, BlocksAreValid) {
  net::LeakageAuditor auditor;
  OrderingService orderer("op", OrdererDeployment::Shared, auditor, 2);
  orderer.submit(tx_on("ch", 0), 1);
  const auto blocks = orderer.submit(tx_on("ch", 1), 2);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_TRUE(blocks[0].body_matches_header());
}

}  // namespace
}  // namespace veil::ledger
