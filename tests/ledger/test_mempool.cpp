// Mempool edge cases: duplicate admission, FIFO capacity eviction,
// validate-once token hits, read-set-version invalidation, volatility
// (clear()), and the wire format of tokens and eviction records.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ledger/mempool.hpp"
#include "ledger/state.hpp"
#include "ledger/transaction.hpp"

namespace veil::ledger {
namespace {

Transaction make_tx(const std::string& action,
                    std::vector<ReadAccess> reads = {}) {
  Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = action;
  tx.reads = std::move(reads);
  tx.writes.push_back({"k/" + action, common::to_bytes(action)});
  return tx;
}

TEST(MempoolTest, AdmitMintsTokenAndRejectsDuplicates) {
  Mempool pool;
  const Transaction tx = make_tx("a");
  EXPECT_TRUE(pool.admit(tx, /*verified=*/true, /*now=*/10));
  EXPECT_EQ(pool.size(), 1u);

  const ValidationToken* token = pool.token(tx.id());
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(token->tx_id, tx.id());
  EXPECT_EQ(token->body_digest, tx.body_digest());
  EXPECT_EQ(token->admitted_at, 10u);
  EXPECT_TRUE(token->verified);

  // Re-admission of the same body is a duplicate, not a second resident.
  EXPECT_FALSE(pool.admit(tx, true, 11));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().admitted, 1u);
  EXPECT_EQ(pool.stats().duplicates, 1u);
}

TEST(MempoolTest, CapacityOverflowEvictsOldestFifo) {
  Mempool pool(MempoolConfig{.capacity = 2});
  const Transaction a = make_tx("a");
  const Transaction b = make_tx("b");
  const Transaction c = make_tx("c");
  EXPECT_TRUE(pool.admit(a, true, 1));
  EXPECT_TRUE(pool.admit(b, true, 2));
  EXPECT_TRUE(pool.admit(c, true, 3));

  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.token(a.id()), nullptr);  // oldest went first
  EXPECT_NE(pool.token(b.id()), nullptr);
  EXPECT_NE(pool.token(c.id()), nullptr);
  EXPECT_EQ(pool.stats().evicted_capacity, 1u);
  ASSERT_EQ(pool.evictions().size(), 1u);
  EXPECT_EQ(pool.evictions()[0].tx_id, a.id());
  EXPECT_EQ(pool.evictions()[0].cause, EvictionRecord::Cause::Capacity);
  EXPECT_EQ(pool.evictions()[0].at, 3u);
}

TEST(MempoolTest, ValidatedHitsOnlyVerifiedTokens) {
  Mempool pool;
  WorldState state;
  const Transaction verified_tx = make_tx("v");
  const Transaction unverified_tx = make_tx("u");
  pool.admit(verified_tx, /*verified=*/true, 1);
  pool.admit(unverified_tx, /*verified=*/false, 1);

  EXPECT_TRUE(pool.validated(verified_tx, state, 2));
  EXPECT_FALSE(pool.validated(unverified_tx, state, 2));
  EXPECT_FALSE(pool.validated(make_tx("absent"), state, 2));
  EXPECT_EQ(pool.stats().token_hits, 1u);
  EXPECT_EQ(pool.stats().token_misses, 2u);
}

TEST(MempoolTest, ReadVersionMoveInvalidatesTokenOnce) {
  Mempool pool;
  WorldState state;
  state.put("acct", common::to_bytes("100"));  // version 1
  const std::uint64_t v = state.get("acct")->version;

  const Transaction tx = make_tx("xfer", {{"acct", v}});
  pool.admit(tx, true, 1);
  EXPECT_TRUE(pool.validated(tx, state, 2));

  // A concurrent commit moves the version the token recorded: the token
  // must be invalidated and dropped, sending the tx back through full
  // verification exactly once.
  state.put("acct", common::to_bytes("90"));
  EXPECT_FALSE(pool.validated(tx, state, 3));
  EXPECT_EQ(pool.token(tx.id()), nullptr);
  EXPECT_EQ(pool.stats().invalidated, 1u);
  ASSERT_FALSE(pool.evictions().empty());
  EXPECT_EQ(pool.evictions().back().cause, EvictionRecord::Cause::Invalidated);

  // Re-admission against the new version restores the fast path.
  const Transaction fresh = make_tx("xfer2", {{"acct",
                                               state.get("acct")->version}});
  pool.admit(fresh, true, 4);
  EXPECT_TRUE(pool.validated(fresh, state, 5));
}

TEST(MempoolTest, RemoveRecordsCause) {
  Mempool pool;
  const Transaction tx = make_tx("a");
  pool.admit(tx, true, 1);
  pool.remove(tx.id(), EvictionRecord::Cause::Committed, 2);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.stats().removed_committed, 1u);
  ASSERT_EQ(pool.evictions().size(), 1u);
  EXPECT_EQ(pool.evictions()[0].cause, EvictionRecord::Cause::Committed);
  // Removing an absent id is a no-op, not a second record.
  pool.remove(tx.id(), EvictionRecord::Cause::Expired, 3);
  EXPECT_EQ(pool.evictions().size(), 1u);
}

TEST(MempoolTest, ClearDropsAllTokens) {
  Mempool pool;
  WorldState state;
  const Transaction a = make_tx("a");
  const Transaction b = make_tx("b");
  pool.admit(a, true, 1);
  pool.admit(b, true, 1);
  pool.clear();  // crash/restart: the pool is volatile
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.token(a.id()), nullptr);
  EXPECT_FALSE(pool.validated(b, state, 2));
  // Admission after the wipe works normally (no stale FIFO interference).
  EXPECT_TRUE(pool.admit(a, true, 3));
  EXPECT_TRUE(pool.validated(a, state, 4));
}

// ---- wire formats ----------------------------------------------------------

TEST(MempoolTest, ValidationTokenRoundTrips) {
  const Transaction tx = make_tx("wire", {{"k1", 3}, {"k2", 0}});
  ValidationToken token;
  token.tx_id = tx.id();
  token.body_digest = tx.body_digest();
  token.read_snapshot = tx.reads;
  token.admitted_at = 42;
  token.verified = true;
  const ValidationToken decoded = ValidationToken::decode(token.encode());
  EXPECT_EQ(decoded, token);
}

TEST(MempoolTest, EvictionRecordRoundTripsAndRejectsUnknownCause) {
  for (const auto cause :
       {EvictionRecord::Cause::Capacity, EvictionRecord::Cause::Committed,
        EvictionRecord::Cause::Invalidated, EvictionRecord::Cause::Expired}) {
    const EvictionRecord rec{"tx-1", cause, 7};
    EXPECT_EQ(EvictionRecord::decode(rec.encode()), rec);
  }
  const EvictionRecord bogus{"tx-2", static_cast<EvictionRecord::Cause>(9), 8};
  EXPECT_THROW(EvictionRecord::decode(bogus.encode()), common::Error);
}

// ---- pinning (overload tier) -----------------------------------------------

TEST(MempoolTest, PinnedEntrySparedFromCapacityEviction) {
  Mempool pool(MempoolConfig{.capacity = 2});
  const Transaction a = make_tx("a");
  const Transaction b = make_tx("b");
  const Transaction c = make_tx("c");
  pool.admit(a, true, 1);
  pool.admit(b, true, 2);
  pool.pin(a.id());  // a's token is in flight with a wave
  pool.admit(c, true, 3);

  // The FIFO victim would be a, but it is pinned: the next-oldest
  // unpinned resident (b) goes instead, and the skip is logged.
  EXPECT_NE(pool.token(a.id()), nullptr);
  EXPECT_EQ(pool.token(b.id()), nullptr);
  EXPECT_NE(pool.token(c.id()), nullptr);
  EXPECT_EQ(pool.stats().eviction_skips_pinned, 1u);
  ASSERT_EQ(pool.evictions().size(), 2u);
  EXPECT_EQ(pool.evictions()[0].tx_id, a.id());
  EXPECT_EQ(pool.evictions()[0].cause, EvictionRecord::Cause::PinnedSkip);
  EXPECT_EQ(pool.evictions()[1].tx_id, b.id());
  EXPECT_EQ(pool.evictions()[1].cause, EvictionRecord::Cause::Capacity);

  // Age order is preserved across the skip: once unpinned, a is the
  // FIFO victim again on the next overflow.
  pool.unpin(a.id());
  pool.admit(make_tx("d"), true, 4);
  EXPECT_EQ(pool.token(a.id()), nullptr);
  EXPECT_NE(pool.token(c.id()), nullptr);
}

TEST(MempoolTest, AllPinnedAdmitsOverCapacity) {
  Mempool pool(MempoolConfig{.capacity = 2});
  const Transaction a = make_tx("a");
  const Transaction b = make_tx("b");
  pool.admit(a, true, 1);
  pool.admit(b, true, 2);
  pool.pin(a.id());
  pool.pin(b.id());
  // Nothing is evictable: memory safety yields to wave correctness, the
  // admit goes over capacity, and the overflow is counted.
  EXPECT_TRUE(pool.admit(make_tx("c"), true, 3));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.stats().pinned_overflow, 1u);
  EXPECT_NE(pool.token(a.id()), nullptr);
  EXPECT_NE(pool.token(b.id()), nullptr);
}

TEST(MempoolTest, PinDoesNotBlockExplicitRemove) {
  Mempool pool;
  const Transaction a = make_tx("a");
  pool.admit(a, true, 1);
  pool.pin(a.id());
  pool.remove(a.id(), EvictionRecord::Cause::Committed, 2);
  EXPECT_EQ(pool.token(a.id()), nullptr);
  EXPECT_EQ(pool.size(), 0u);
  // The pin itself survives until unpinned (wave bookkeeping), but
  // clear() wipes pins along with everything else.
  EXPECT_TRUE(pool.is_pinned(a.id()));
  pool.clear();
  EXPECT_EQ(pool.pinned(), 0u);
}

TEST(MempoolTest, PinnedSkipRecordRoundTrips) {
  const EvictionRecord rec{"tx-p", EvictionRecord::Cause::PinnedSkip, 11};
  EXPECT_EQ(EvictionRecord::decode(rec.encode()), rec);
}

}  // namespace
}  // namespace veil::ledger
