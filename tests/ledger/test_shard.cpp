// Sharded-channel tier unit tests: deterministic routing, local block
// sealing and replica convergence, cross-shard key locking, the
// composite-root accumulator, and fail-closed handling of unregistered
// coordinators. The 2PC protocol itself is covered in test_xshard.cpp.
#include "ledger/shard.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace veil::ledger {
namespace {

using common::to_bytes;

class ShardTest : public ::testing::Test {
 protected:
  ShardTest()
      : net_(common::Rng(600)),
        channel_(net_),
        rng_(601),
        shards_(net_, channel_, crypto::Group::test_group(), rng_, config()) {}

  static ShardConfig config() {
    ShardConfig cfg;
    cfg.shard_count = 2;
    cfg.replicas_per_shard = 1;
    cfg.block_size = 2;
    return cfg;
  }

  std::string key_on(std::uint64_t shard, int seq) const {
    for (int i = 0;; ++i) {
      const std::string k =
          "acct/" + std::to_string(seq) + "/" + std::to_string(i);
      if (shards_.shard_for_key(k) == shard) return k;
    }
  }

  Transaction local_tx(const std::string& key, int seq) const {
    Transaction tx;
    tx.channel = "scale";
    tx.timestamp = static_cast<common::SimTime>(seq);
    tx.writes.push_back({key, to_bytes("v" + std::to_string(seq)), false});
    return tx;
  }

  net::SimNetwork net_;
  net::ReliableChannel channel_;
  common::Rng rng_;
  ShardMap shards_;
};

// ---- Routing --------------------------------------------------------------

TEST(ShardRouting, DeterministicAndSpread) {
  std::set<std::uint64_t> hit;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "party/" + std::to_string(i);
    const std::uint64_t s = shard_of(key, 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, shard_of(key, 8));  // stable
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 8u);  // 256 keys over 8 shards: all populated
  EXPECT_EQ(shard_of("anything", 1), 0u);
}

TEST(ShardRouting, CountIsPartOfTheMap) {
  // The same key may move when the shard count changes — routing is a
  // function of (key, count), not of the key alone.
  int moved = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "party/" + std::to_string(i);
    if (shard_of(key, 4) != shard_of(key, 8)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardRouting, ZeroShardsThrows) {
  net::SimNetwork net((common::Rng(1)));
  net::ReliableChannel channel(net);
  common::Rng rng(2);
  ShardConfig cfg;
  cfg.shard_count = 0;
  EXPECT_THROW(
      ShardMap(net, channel, crypto::Group::test_group(), rng, cfg),
      common::ProtocolError);
}

// ---- Local traffic --------------------------------------------------------

TEST_F(ShardTest, LocalSubmitSealsAndReplicasConverge) {
  const std::string k0 = key_on(0, 1);
  const std::string k1 = key_on(0, 2);
  EXPECT_TRUE(shards_.submit(local_tx(k0, 1)).accepted);
  EXPECT_TRUE(shards_.submit(local_tx(k1, 2)).accepted);  // seals at 2
  net_.run();

  EXPECT_EQ(shards_.height(0), 1u);
  EXPECT_EQ(shards_.stats().blocks_sealed, 1u);
  EXPECT_EQ(shards_.stats().committed, 2u);
  ASSERT_TRUE(shards_.get(k0).has_value());
  // The replica applied the same block: bit-identical state roots.
  EXPECT_EQ(shards_.replica_root(0, 0), shards_.shard_root(0));
}

TEST_F(ShardTest, FlushSealsPartialBlocks) {
  const std::string k = key_on(1, 3);
  EXPECT_TRUE(shards_.submit(local_tx(k, 3)).accepted);
  EXPECT_FALSE(shards_.get(k).has_value());  // buffered, not sealed
  shards_.flush_all();
  net_.run();
  EXPECT_TRUE(shards_.get(k).has_value());
}

TEST_F(ShardTest, CrossShardSubmitRejectedLocally) {
  Transaction tx;
  tx.channel = "scale";
  tx.timestamp = 9;
  tx.writes.push_back({key_on(0, 4), to_bytes("a"), false});
  tx.writes.push_back({key_on(1, 4), to_bytes("b"), false});
  const SubmitReceipt rc = shards_.submit(tx);
  EXPECT_FALSE(rc.accepted);
  EXPECT_EQ(shards_.stats().rejected_cross, 1u);
  EXPECT_NE(rc.reason.find("coordinator"), std::string::npos);
}

TEST_F(ShardTest, PreparedLockBlocksLocalWritesUntilDecision) {
  // Play coordinator by hand: a signed prepare locks the key; a signed
  // abort decision releases it.
  crypto::KeyPair ckey =
      crypto::KeyPair::generate(crypto::Group::test_group(), rng_);
  shards_.register_coordinator("xc", ckey.public_key(), false);
  channel_.attach("xc", nullptr);

  const std::string hot = key_on(0, 5);
  XPrepare prep;
  prep.xid = "lock-1";
  prep.shard = 0;
  prep.participants = {0};
  prep.coordinator = "xc";
  prep.subtx.channel = "scale";
  prep.subtx.writes.push_back({hot, to_bytes("locked"), false});
  prep.sig = ckey.sign(prep.to_be_signed());
  channel_.send("xc", shards_.primary(0), "xshard.prepare", prep.encode());
  net_.run();
  ASSERT_EQ(shards_.outcome(0, "lock-1"), ShardMap::Outcome::Prepared);

  const SubmitReceipt rc = shards_.submit(local_tx(hot, 6));
  EXPECT_FALSE(rc.accepted);
  EXPECT_EQ(shards_.stats().rejected_locked, 1u);

  XDecision abort_d;
  abort_d.xid = "lock-1";
  abort_d.commit = false;
  abort_d.decider = "xc";
  abort_d.sig = ckey.sign(abort_d.to_be_signed());
  channel_.send("xc", shards_.primary(0), "xshard.decision",
                abort_d.encode());
  net_.run();
  EXPECT_EQ(shards_.outcome(0, "lock-1"), ShardMap::Outcome::Aborted);
  EXPECT_TRUE(shards_.submit(local_tx(hot, 7)).accepted);
}

TEST_F(ShardTest, UnregisteredCoordinatorPrepareIsDropped) {
  crypto::KeyPair rogue =
      crypto::KeyPair::generate(crypto::Group::test_group(), rng_);
  channel_.attach("nobody", nullptr);
  XPrepare prep;
  prep.xid = "imposter";
  prep.shard = 0;
  prep.participants = {0};
  prep.coordinator = "nobody";  // never registered
  prep.subtx.channel = "scale";
  prep.subtx.writes.push_back({key_on(0, 8), to_bytes("x"), false});
  prep.sig = rogue.sign(prep.to_be_signed());
  channel_.send("nobody", shards_.primary(0), "xshard.prepare", prep.encode());
  net_.run();
  EXPECT_EQ(shards_.outcome(0, "imposter"), ShardMap::Outcome::Unknown);
  EXPECT_GE(shards_.stats().malformed, 1u);
  // Nothing locked.
  EXPECT_TRUE(shards_.submit(local_tx(prep.subtx.writes[0].key, 9)).accepted);
}

// ---- Composite root -------------------------------------------------------

TEST(ComposeRoots, OrderIndependentAndLabelSensitive) {
  const ShardRootPart a{"shard-0", 3, crypto::sha256(to_bytes("a"))};
  const ShardRootPart b{"shard-1", 5, crypto::sha256(to_bytes("b"))};
  EXPECT_EQ(compose_roots({a, b}), compose_roots({b, a}));
  const ShardRootPart b2{"shard-2", 5, b.root};
  EXPECT_NE(compose_roots({a, b}), compose_roots({a, b2}));
  const ShardRootPart b3{"shard-1", 6, b.root};
  EXPECT_NE(compose_roots({a, b}), compose_roots({a, b3}));
  EXPECT_NE(compose_roots({a}), compose_roots({a, b}));
}

TEST_F(ShardTest, VerifiedCompositeRootMatchesAndFailsClosed) {
  EXPECT_TRUE(shards_.submit(local_tx(key_on(0, 10), 10)).accepted);
  shards_.flush_all();
  net_.run();

  // All nodes live and agreeing: the verified root equals the plain one.
  EXPECT_EQ(shards_.verified_composite_root(), shards_.composite_root());

  // A crashed replica is skipped; the primary still attests.
  net_.crash(shards_.primary(1) + "-r0");
  EXPECT_EQ(shards_.verified_composite_root(), shards_.composite_root());

  // A fully dark shard cannot be attested: fail closed.
  net_.crash(shards_.primary(1));
  EXPECT_THROW(shards_.verified_composite_root(), common::ProtocolError);
}

TEST_F(ShardTest, RootVotesVerifyAndFuzz) {
  const std::vector<ShardRootVote> votes = shards_.collect_root_votes();
  ASSERT_EQ(votes.size(), 4u);  // 2 shards x (primary + replica)
  for (const ShardRootVote& v : votes) {
    const ShardRootVote rt = ShardRootVote::decode(v.encode());
    EXPECT_EQ(rt.label, v.label);
    EXPECT_EQ(rt.height, v.height);
    EXPECT_EQ(rt.root, v.root);
    EXPECT_EQ(rt.to_be_signed(), v.to_be_signed());
  }
  // Decode-fuzz: truncations and bit-flips throw or return, never crash.
  const common::Bytes good = votes[0].encode();
  for (std::size_t len = 0; len < good.size(); ++len) {
    common::Bytes cut(good.begin(),
                      good.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)ShardRootVote::decode(cut);
    } catch (const common::Error&) {
    }
  }
  common::Rng rng(76);
  for (int i = 0; i < 200; ++i) {
    common::Bytes mutated = good;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      (void)ShardRootVote::decode(mutated);
    } catch (const common::Error&) {
    }
  }
}

// ---- Crash/restart of a shard primary (local traffic) ---------------------

TEST_F(ShardTest, PrimaryRestartReplaysItsWal) {
  const std::string k0 = key_on(0, 11);
  const std::string k1 = key_on(0, 12);
  EXPECT_TRUE(shards_.submit(local_tx(k0, 11)).accepted);
  EXPECT_TRUE(shards_.submit(local_tx(k1, 12)).accepted);
  net_.run();
  const crypto::Digest before = shards_.shard_root(0);

  net_.crash(shards_.primary(0));
  net_.restart(shards_.primary(0));
  net_.run();
  EXPECT_EQ(shards_.shard_root(0), before);
  EXPECT_EQ(shards_.height(0), 1u);
}

TEST_F(ShardTest, ReplicaResyncsAfterDowntime) {
  net_.crash(shards_.primary(0) + "-r0");
  EXPECT_TRUE(shards_.submit(local_tx(key_on(0, 13), 13)).accepted);
  EXPECT_TRUE(shards_.submit(local_tx(key_on(0, 14), 14)).accepted);
  net_.run();  // block sealed while the replica was down

  net_.restart(shards_.primary(0) + "-r0");
  shards_.resync_all();
  net_.run();
  EXPECT_EQ(shards_.replica_root(0, 0), shards_.shard_root(0));
}

}  // namespace
}  // namespace veil::ledger
