// Unit tests for the snapshot state-transfer engine, driven by scripted
// providers over a raw ReliableChannel — no platform above it. The
// platform-level behavior (evidence, quarantine, delta replay) lives in
// tests/integration/test_recovery.cpp.
#include "ledger/transfer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

WorldState sample_state(int keys = 40) {
  WorldState state;
  for (int i = 0; i < keys; ++i) {
    state.put("key/" + std::to_string(i),
              to_bytes("value-" + std::to_string(i)));
  }
  return state;
}

/// A joiner, two or three peers, and one shared engine (keyed by `self`,
/// exactly how the platforms use it). Every peer serves whatever
/// `snapshots[peer]` holds; the joiner records completions.
class TransferTest : public ::testing::Test {
 protected:
  TransferTest()
      : net_(Rng(41), net::LatencyModel{100, 0, 0.0}), channel_(net_) {
    engine_.emplace(
        channel_,
        SnapshotTransfer::Callbacks{
            .provider = [this](const net::Principal& self, const std::string&,
                               std::uint64_t min_height) -> const Snapshot* {
              auto it = snapshots_.find(self);
              if (it == snapshots_.end()) return nullptr;
              return it->second.height() >= min_height ? &it->second : nullptr;
            },
            .offer_check = nullptr,
            .on_complete = [this](const net::Principal&, const std::string&,
                                  const SnapshotHeader& header,
                                  WorldState state) {
              completed_header_ = header;
              completed_state_ = std::move(state);
            },
            .on_reject = [this](const net::Principal&, const std::string&,
                                const net::Principal& donor,
                                TransferReject reason, common::BytesView,
                                common::BytesView) {
              rejects_.emplace_back(donor, reason);
            },
            .on_fail = [this](const net::Principal&, const std::string&) {
              ++failed_;
            },
        });
    for (const char* p : {"joiner", "peer1", "peer2", "peer3"}) {
      channel_.attach(p, [this, p = std::string(p)](const net::Message& msg) {
        if (SnapshotTransfer::owns_topic(msg.topic)) {
          engine_->handle(p, msg);
        }
      });
    }
  }

  /// Start a fetch with peer1/peer2 as both donors and voters.
  void fetch(std::uint64_t min_height = 1) {
    engine_->fetch("joiner", "scope", {"peer1", "peer2"}, {"peer1", "peer2"},
                   min_height);
  }

  net::SimNetwork net_;
  net::ReliableChannel channel_;
  std::optional<SnapshotTransfer> engine_;
  std::map<net::Principal, Snapshot> snapshots_;
  std::optional<SnapshotHeader> completed_header_;
  std::optional<WorldState> completed_state_;
  std::vector<std::pair<net::Principal, TransferReject>> rejects_;
  int failed_ = 0;
};

TEST_F(TransferTest, OwnsExactlyTheSnapTopics) {
  EXPECT_TRUE(SnapshotTransfer::owns_topic("snap.req"));
  EXPECT_TRUE(SnapshotTransfer::owns_topic("snap.chunk"));
  EXPECT_FALSE(SnapshotTransfer::owns_topic("fabric.deliver"));
  EXPECT_FALSE(SnapshotTransfer::owns_topic("snapX"));
}

TEST_F(TransferTest, HappyPathVerifiesVotesFetchesAndInstalls) {
  const WorldState state = sample_state();
  const Snapshot snap = Snapshot::make(8, crypto::sha256(to_bytes("tip")),
                                       state, /*chunk_size=*/64);
  snapshots_.insert_or_assign("peer1", snap);
  snapshots_.insert_or_assign("peer2", snap);
  ASSERT_GT(snap.chunk_count(), 3u);  // actually exercises chunking

  fetch();
  net_.run();

  ASSERT_TRUE(completed_header_.has_value());
  EXPECT_EQ(completed_header_->height, 8u);
  EXPECT_EQ(completed_header_->root, snap.root());
  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  EXPECT_FALSE(engine_->active("joiner", "scope"));
  EXPECT_EQ(engine_->stats().transfers_completed, 1u);
  EXPECT_EQ(engine_->stats().chunks_received, snap.chunk_count());
  EXPECT_EQ(engine_->stats().chunks_rejected, 0u);
  EXPECT_TRUE(rejects_.empty());
}

TEST_F(TransferTest, EmptyHandedDonorIsBenignFailover) {
  // peer1 has nothing to offer; peer2 completes the transfer. No
  // misbehavior: DonorGone carries no evidence. Voters must hold the
  // checkpoint — an abstaining voter counts against the quorum (fail
  // closed), so the voter set here is the peers that actually have it.
  const Snapshot snap =
      Snapshot::make(5, crypto::sha256(to_bytes("t")), sample_state(), 64);
  snapshots_.insert_or_assign("peer2", snap);
  snapshots_.insert_or_assign("peer3", snap);

  engine_->fetch("joiner", "scope", {"peer1", "peer2"}, {"peer2", "peer3"},
                 1);
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  ASSERT_EQ(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::DonorGone);
  EXPECT_FALSE(is_misbehavior(rejects_[0].second));
  EXPECT_EQ(engine_->stats().donors_rejected, 0u);
  EXPECT_EQ(engine_->stats().transfers_completed, 1u);
}

TEST_F(TransferTest, NoDonorHasAnythingFailsClosed) {
  fetch();
  net_.run();
  EXPECT_FALSE(completed_state_.has_value());
  EXPECT_EQ(failed_, 1);
  EXPECT_EQ(engine_->stats().transfers_failed, 1u);
  EXPECT_FALSE(engine_->active("joiner", "scope"));
}

TEST_F(TransferTest, InconsistentHeaderDiesBeforeAnyChunkMoves) {
  // peer1 forges a header whose root does not recompute from its fields.
  const Snapshot honest =
      Snapshot::make(5, crypto::sha256(to_bytes("t")), sample_state(), 64);
  SnapshotHeader bad = honest.header();
  bad.root.front() ^= 0x01;
  snapshots_.insert_or_assign(
      "peer1",
      Snapshot::forge(bad, Bytes(honest.body().begin(), honest.body().end())));
  snapshots_.insert_or_assign("peer2", honest);

  fetch();
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::MalformedOffer);
  EXPECT_TRUE(is_misbehavior(rejects_[0].second));
  EXPECT_EQ(engine_->stats().donors_rejected, 1u);
}

TEST_F(TransferTest, TamperedChunkConvictsDonorAndCursorSurvivesFailover) {
  // peer1 serves the HONEST header over a body with one flipped byte:
  // every chunk but the damaged one verifies. After the conviction the
  // verified chunks are kept, and peer2 (same root) supplies the rest.
  const WorldState state = sample_state();
  const Snapshot honest =
      Snapshot::make(9, crypto::sha256(to_bytes("t")), state, 64);
  Bytes tampered(honest.body().begin(), honest.body().end());
  tampered[tampered.size() / 2] ^= 0x01;
  snapshots_.insert_or_assign(
      "peer1", Snapshot::forge(honest.header(), std::move(tampered)));
  snapshots_.insert_or_assign("peer2", honest);

  fetch();
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::TamperedChunk);
  EXPECT_GE(engine_->stats().chunks_rejected, 1u);
  EXPECT_EQ(engine_->stats().donors_rejected, 1u);
  // Cursor survival: total fetched < 2x chunk count (no full restart).
  EXPECT_LT(engine_->stats().chunks_received, 2 * honest.chunk_count());
}

TEST_F(TransferTest, EquivocatedRootRejectedByVoteQuorumBeforeFetch) {
  // peer1 offers a SELF-CONSISTENT snapshot of a state nobody else holds.
  // Only the vote quorum can expose it — and must, before any chunk moves.
  const Snapshot honest =
      Snapshot::make(7, crypto::sha256(to_bytes("t")), sample_state(), 64);
  WorldState forged_state = sample_state();
  forged_state.put("key/0", to_bytes("forged"));
  snapshots_.insert_or_assign(
      "peer1",
      Snapshot::make(7, crypto::sha256(to_bytes("t")), forged_state, 64));
  snapshots_.insert_or_assign("peer2", honest);
  snapshots_.insert_or_assign("peer3", honest);

  engine_->fetch("joiner", "scope", {"peer1", "peer2"},
                 {"peer2", "peer3"}, 1);
  net_.run();

  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::EquivocatedRoot);
  EXPECT_TRUE(is_misbehavior(rejects_[0].second));
  // Rejected before fetch: none of the forgery's chunks ever moved, and
  // the honest fallback still completed.
  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), sample_state().digest());
}

TEST_F(TransferTest, StalledTransferResumesAfterTotalLoss) {
  const WorldState state = sample_state(120);
  const Snapshot snap =
      Snapshot::make(6, crypto::sha256(to_bytes("t")), state, 64);
  snapshots_.insert_or_assign("peer1", snap);
  snapshots_.insert_or_assign("peer2", snap);

  // The network is dead past the reliable channel's whole retry budget:
  // the transfer stalls (it must NOT fail — loss is not a donor fault).
  net_.set_drop_probability(1.0);
  fetch();
  net_.run();
  ASSERT_FALSE(completed_state_.has_value());
  ASSERT_TRUE(engine_->active("joiner", "scope"));  // stalled, not failed
  EXPECT_EQ(failed_, 0);

  net_.set_drop_probability(0.0);
  engine_->resume("joiner", "scope");
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  EXPECT_GE(engine_->stats().resumes, 1u);
}

TEST_F(TransferTest, AbortDropsVolatileTransferState) {
  const Snapshot snap =
      Snapshot::make(4, crypto::sha256(to_bytes("t")), sample_state(), 64);
  snapshots_.insert_or_assign("peer1", snap);
  snapshots_.insert_or_assign("peer2", snap);

  fetch();
  ASSERT_TRUE(engine_->active("joiner", "scope"));
  engine_->abort("joiner", "scope");
  EXPECT_FALSE(engine_->active("joiner", "scope"));
  // Late messages for the aborted transfer are ignored, not crashed on.
  net_.run();
  EXPECT_FALSE(completed_state_.has_value());
  EXPECT_EQ(engine_->stats().transfers_completed, 0u);
}

TEST_F(TransferTest, MalformedWirePayloadsCountedAndDropped) {
  // Junk straight onto snap.* topics must never throw out of handle().
  for (const char* topic :
       {"snap.req", "snap.offer", "snap.vote-req", "snap.vote", "snap.fetch",
        "snap.chunk"}) {
    channel_.send("peer1", "joiner", topic, to_bytes("junk"));
  }
  net_.run();
  EXPECT_EQ(engine_->stats().malformed, 6u);
}

TEST_F(TransferTest, RejectReasonStringsAreDistinct) {
  const TransferReject all[] = {
      TransferReject::MalformedOffer,   TransferReject::OfferCheckFailed,
      TransferReject::EquivocatedRoot,  TransferReject::TamperedChunk,
      TransferReject::InconsistentBody, TransferReject::DonorGone,
  };
  std::set<std::string> names;
  for (TransferReject r : all) names.insert(to_string(r));
  EXPECT_EQ(names.size(), std::size(all));
  EXPECT_FALSE(is_misbehavior(TransferReject::DonorGone));
  EXPECT_TRUE(is_misbehavior(TransferReject::TamperedChunk));
}

// ---- Wire-type decode fuzz -------------------------------------------------

template <typename T>
void fuzz_decode(const common::Bytes& good, std::uint64_t seed) {
  // Every truncation.
  for (std::size_t len = 0; len < good.size(); ++len) {
    common::Bytes cut(good.begin(), good.begin() + len);
    try {
      (void)T::decode(cut);
    } catch (const common::Error&) {
    }
  }
  // Seeded random mutations.
  common::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    common::Bytes mutated = good;
    const std::size_t pos = rng.next_u64() % mutated.size();
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    try {
      (void)T::decode(mutated);
    } catch (const common::Error&) {
    }
  }
}

TEST(TransferWire, DecodeFuzzNeverCrashes) {
  SnapshotRequest req{.scope = "ch", .min_height = 42};
  fuzz_decode<SnapshotRequest>(req.encode(), 1);

  const Snapshot snap =
      Snapshot::make(3, crypto::sha256(to_bytes("t")), sample_state(8), 64);
  SnapshotOffer offer{.scope = "ch", .available = true,
                      .header = snap.header()};
  fuzz_decode<SnapshotOffer>(offer.encode(), 2);

  ChunkRequest creq{.scope = "ch", .root = snap.root(), .index = 1};
  fuzz_decode<ChunkRequest>(creq.encode(), 3);

  SnapshotChunk chunk{.scope = "ch", .root = snap.root(), .index = 1,
                      .ok = true, .data = snap.chunk(1)};
  fuzz_decode<SnapshotChunk>(chunk.encode(), 4);

  RootVote vote{.scope = "ch", .height = 3, .known = true,
                .root = snap.root()};
  fuzz_decode<RootVote>(vote.encode(), 5);
}

TEST(TransferWire, RoundTripsExactly) {
  const Snapshot snap =
      Snapshot::make(3, crypto::sha256(to_bytes("t")), sample_state(8), 64);

  SnapshotRequest req{.scope = "ch", .min_height = 42};
  const SnapshotRequest req2 = SnapshotRequest::decode(req.encode());
  EXPECT_EQ(req2.scope, "ch");
  EXPECT_EQ(req2.min_height, 42u);

  SnapshotOffer offer{.scope = "ch", .available = true,
                      .header = snap.header()};
  const SnapshotOffer offer2 = SnapshotOffer::decode(offer.encode());
  EXPECT_TRUE(offer2.available);
  EXPECT_EQ(offer2.header.root, snap.root());
  EXPECT_TRUE(offer2.header.self_consistent());

  SnapshotChunk chunk{.scope = "ch", .root = snap.root(), .index = 1,
                      .ok = true, .data = snap.chunk(1)};
  const SnapshotChunk chunk2 = SnapshotChunk::decode(chunk.encode());
  EXPECT_EQ(chunk2.index, 1u);
  EXPECT_EQ(chunk2.data, snap.chunk(1));

  RootVote vote{.scope = "ch", .height = 3, .known = true,
                .root = snap.root()};
  const RootVote vote2 = RootVote::decode(vote.encode());
  EXPECT_TRUE(vote2.known);
  EXPECT_EQ(vote2.root, snap.root());
}

}  // namespace
}  // namespace veil::ledger
