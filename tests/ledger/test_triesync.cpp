// Unit tests for the trie-node delta state-transfer engine, driven by
// scripted providers over a raw ReliableChannel — no platform above it.
// Platform-level wiring (Fabric rejoin_delta, quarantine) is covered in
// the integration suites.
#include "ledger/triesync.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

WorldState sample_state(int keys = 50) {
  WorldState state;
  for (int i = 0; i < keys; ++i) {
    state.put("key/" + std::to_string(i),
              to_bytes("value-" + std::to_string(i)));
  }
  return state;
}

/// A joiner, three peers, one shared engine keyed by `self` (exactly how
/// the platforms use it). Every peer serves whatever `donors_[peer]`
/// holds; `intercept_` lets a test play a Byzantine donor on the wire.
class TrieSyncTest : public ::testing::Test {
 protected:
  struct Holder {
    WorldState state;
    std::uint64_t height = 0;
    crypto::Digest tip{};
  };

  TrieSyncTest()
      : net_(Rng(41), net::LatencyModel{100, 0, 0.0}), channel_(net_) {
    engine_.emplace(
        channel_,
        TrieSync::Callbacks{
            .provider = [this](const net::Principal& self, const std::string&,
                               std::uint64_t min_height)
                -> std::optional<TrieSync::DonorState> {
              auto it = donors_.find(self);
              if (it == donors_.end() || it->second.height < min_height) {
                return std::nullopt;
              }
              return TrieSync::DonorState{&it->second.state,
                                          it->second.height, it->second.tip};
            },
            .offer_check = nullptr,
            .on_complete = [this](const net::Principal&, const std::string&,
                                  std::uint64_t height, const crypto::Digest&,
                                  WorldState state,
                                  const TrieSync::Report& report) {
              completed_height_ = height;
              completed_state_ = std::move(state);
              report_ = report;
            },
            .on_reject = [this](const net::Principal&, const std::string&,
                                const net::Principal& donor,
                                TransferReject reason, common::BytesView,
                                common::BytesView) {
              rejects_.emplace_back(donor, reason);
            },
            .on_fail = [this](const net::Principal&, const std::string&) {
              ++failed_;
            },
        });
    for (const char* p : {"joiner", "peer1", "peer2", "peer3"}) {
      channel_.attach(p, [this, p = std::string(p)](const net::Message& msg) {
        if (!TrieSync::owns_topic(msg.topic)) return;
        if (intercept_ && intercept_(p, msg)) return;
        engine_->handle(p, msg);
      });
    }
  }

  void seed_donor(const net::Principal& peer, WorldState state,
                  std::uint64_t height) {
    donors_[peer] =
        Holder{std::move(state), height, crypto::sha256(to_bytes("tip"))};
  }

  /// Start a fetch with peer1/peer2 as donors and peer2/peer3 as voters,
  /// from `prior` (the joiner's lagging state).
  void fetch(const WorldState& prior, std::uint64_t min_height = 1) {
    engine_->fetch("joiner", "scope", {"peer1", "peer2"}, {"peer2", "peer3"},
                   min_height, prior);
  }

  net::SimNetwork net_;
  net::ReliableChannel channel_;
  std::optional<TrieSync> engine_;
  std::map<net::Principal, Holder> donors_;
  /// Returns true to swallow the message instead of handing it to the
  /// engine (Byzantine donor scripting).
  std::function<bool(const std::string& self, const net::Message&)> intercept_;
  std::optional<std::uint64_t> completed_height_;
  std::optional<WorldState> completed_state_;
  TrieSync::Report report_;
  std::vector<std::pair<net::Principal, TransferReject>> rejects_;
  int failed_ = 0;
};

TEST_F(TrieSyncTest, OwnsExactlyTheTsyncTopics) {
  EXPECT_TRUE(TrieSync::owns_topic("tsync.req"));
  EXPECT_TRUE(TrieSync::owns_topic("tsync.nodes"));
  EXPECT_FALSE(TrieSync::owns_topic("snap.req"));
  EXPECT_FALSE(TrieSync::owns_topic("tsyncX"));
}

TEST_F(TrieSyncTest, BootstrapFromEmptyPriorShipsTheWholeImage) {
  const WorldState state = sample_state();
  seed_donor("peer1", state, 8);
  seed_donor("peer2", state, 8);
  seed_donor("peer3", state, 8);

  fetch(WorldState{});
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(*completed_height_, 8u);
  EXPECT_EQ(completed_state_->digest(), state.digest());
  EXPECT_EQ(completed_state_->size(), state.size());
  std::unordered_set<crypto::Digest, DigestHash> all;
  state.trie().node_hashes(all);
  EXPECT_EQ(report_.fresh_nodes, all.size());  // nothing to dedup against
  EXPECT_EQ(report_.prior_nodes, 0u);
  EXPECT_FALSE(engine_->active("joiner", "scope"));
  EXPECT_EQ(engine_->stats().transfers_completed, 1u);
  EXPECT_EQ(engine_->stats().nodes_rejected, 0u);
  EXPECT_TRUE(rejects_.empty());
}

TEST_F(TrieSyncTest, OneBlockLagShipsOnlyTouchedPaths) {
  // The delta story the whole engine exists for: a joiner that missed
  // one block's worth of writes fetches O(touched keys x depth) nodes,
  // not O(state).
  const WorldState prior = sample_state(400);
  WorldState next = prior;  // COW copy
  for (int i = 0; i < 5; ++i) {
    next.put("key/" + std::to_string(i * 80), to_bytes("touched"));
  }
  seed_donor("peer1", next, 9);
  seed_donor("peer2", next, 9);
  seed_donor("peer3", next, 9);

  fetch(prior);
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), next.digest());
  NodeStore image;
  next.trie().collect_nodes(image);
  std::size_t image_bytes = 0;
  for (const auto& [hash, bytes] : image) {
    (void)hash;
    image_bytes += bytes.size();
  }
  // 5 touched keys out of 400: the shipped slice is a small fraction of
  // the full node image a bootstrap would have transferred.
  EXPECT_GT(report_.fresh_nodes, 0u);
  EXPECT_LT(report_.fresh_nodes, image.size() / 4);
  EXPECT_EQ(report_.prior_nodes, prior.trie().build_node_index().size());
  EXPECT_LT(report_.fresh_bytes, image_bytes / 4);
  EXPECT_EQ(engine_->stats().node_bytes_received, report_.fresh_bytes);
}

TEST_F(TrieSyncTest, AlreadyCurrentJoinerFetchesNothing) {
  const WorldState state = sample_state();
  seed_donor("peer1", state, 5);
  seed_donor("peer2", state, 5);
  seed_donor("peer3", state, 5);

  fetch(state);  // prior == donor state: the root is already held
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  EXPECT_EQ(report_.fresh_nodes, 0u);
  EXPECT_EQ(report_.fresh_bytes, 0u);
  EXPECT_EQ(engine_->stats().nodes_received, 0u);
}

TEST_F(TrieSyncTest, EmptyStateTransfersWithoutAnyNodes) {
  seed_donor("peer1", WorldState{}, 3);
  seed_donor("peer2", WorldState{}, 3);
  seed_donor("peer3", WorldState{}, 3);

  fetch(WorldState{});
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_TRUE(completed_state_->empty());
  EXPECT_EQ(report_.fresh_nodes, 0u);
}

TEST_F(TrieSyncTest, EmptyHandedDonorIsBenignFailover) {
  // peer1 has nothing to offer; peer2 completes. DonorGone carries no
  // evidence and costs no conviction.
  const WorldState state = sample_state();
  seed_donor("peer2", state, 5);
  seed_donor("peer3", state, 5);

  fetch(WorldState{});
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  ASSERT_EQ(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::DonorGone);
  EXPECT_FALSE(is_misbehavior(rejects_[0].second));
  EXPECT_EQ(engine_->stats().donors_rejected, 0u);
  EXPECT_EQ(engine_->stats().transfers_completed, 1u);
}

TEST_F(TrieSyncTest, NoDonorHasAnythingFailsClosed) {
  fetch(WorldState{});
  net_.run();
  EXPECT_FALSE(completed_state_.has_value());
  EXPECT_EQ(failed_, 1);
  EXPECT_EQ(engine_->stats().transfers_failed, 1u);
  EXPECT_FALSE(engine_->active("joiner", "scope"));
}

TEST_F(TrieSyncTest, EquivocatedRootRejectedByVoteQuorumBeforeFetch) {
  // peer1 offers a self-consistent state nobody else computed. Only the
  // vote quorum can expose it — and must, before any node moves.
  const WorldState honest = sample_state();
  WorldState forged = sample_state();
  forged.put("key/0", to_bytes("forged"));
  seed_donor("peer1", forged, 7);
  seed_donor("peer2", honest, 7);
  seed_donor("peer3", honest, 7);

  fetch(WorldState{});
  net_.run();

  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::EquivocatedRoot);
  EXPECT_TRUE(is_misbehavior(rejects_[0].second));
  EXPECT_EQ(engine_->stats().donors_rejected, 1u);
  // Rejected before fetch: none of the forgery's nodes ever moved, and
  // the honest fallback completed.
  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), honest.digest());
}

TEST_F(TrieSyncTest, TamperedNodeConvictsDonorAndVerifiedNodesSurvive) {
  // peer1 passes the offer/vote phases honestly, then answers fetches
  // with garbage. Bytes that do not hash to a requested node convict it;
  // peer2 (same root) supplies the real nodes.
  const WorldState state = sample_state(200);
  seed_donor("peer1", state, 6);
  seed_donor("peer2", state, 6);
  seed_donor("peer3", state, 6);
  intercept_ = [this](const std::string& self, const net::Message& msg) {
    if (self != "peer1" || msg.topic != "tsync.fetch") return false;
    const NodeRequest req = NodeRequest::decode(msg.payload);
    NodeBatch batch;
    batch.scope = req.scope;
    batch.state_root = req.state_root;
    batch.ok = true;
    batch.nodes.push_back(to_bytes("garbage that hashes to nothing asked"));
    channel_.send(self, msg.from, "tsync.nodes", batch.encode());
    return true;
  };

  fetch(WorldState{});
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::TamperedNode);
  EXPECT_TRUE(is_misbehavior(rejects_[0].second));
  EXPECT_GE(engine_->stats().nodes_rejected, 1u);
  EXPECT_EQ(engine_->stats().donors_rejected, 1u);
}

TEST_F(TrieSyncTest, DonorWhoseCheckpointMovedOnIsBenignFailover) {
  // peer1's checkpoint advances between its offer and the fetch: it no
  // longer serves the agreed root and answers ok=false. That is DonorGone
  // (benign), not misbehavior, and peer2 still holds the agreed root.
  const WorldState state = sample_state();
  seed_donor("peer1", state, 5);
  seed_donor("peer2", state, 5);
  seed_donor("peer3", state, 5);
  bool advanced = false;
  intercept_ = [this, &advanced](const std::string& self,
                                 const net::Message& msg) {
    if (self == "peer1" && msg.topic == "tsync.fetch" && !advanced) {
      advanced = true;
      donors_["peer1"].state.put("key/0", to_bytes("newer"));
      donors_["peer1"].height = 6;
    }
    return false;  // engine still handles the message
  };

  fetch(WorldState{});
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  ASSERT_GE(rejects_.size(), 1u);
  EXPECT_EQ(rejects_[0].first, "peer1");
  EXPECT_EQ(rejects_[0].second, TransferReject::DonorGone);
  EXPECT_EQ(engine_->stats().donors_rejected, 0u);
}

TEST_F(TrieSyncTest, StalledTransferResumesAfterTotalLoss) {
  const WorldState state = sample_state(150);
  seed_donor("peer1", state, 6);
  seed_donor("peer2", state, 6);
  seed_donor("peer3", state, 6);

  // Dead network past the reliable channel's whole retry budget: the
  // transfer stalls (it must NOT fail — loss is not a donor fault).
  net_.set_drop_probability(1.0);
  fetch(WorldState{});
  net_.run();
  ASSERT_FALSE(completed_state_.has_value());
  ASSERT_TRUE(engine_->active("joiner", "scope"));
  EXPECT_EQ(failed_, 0);

  net_.set_drop_probability(0.0);
  engine_->resume("joiner", "scope");
  net_.run();

  ASSERT_TRUE(completed_state_.has_value());
  EXPECT_EQ(completed_state_->digest(), state.digest());
  EXPECT_GE(engine_->stats().resumes, 1u);
}

TEST_F(TrieSyncTest, AbortDropsVolatileTransferState) {
  const WorldState state = sample_state();
  seed_donor("peer1", state, 4);
  seed_donor("peer2", state, 4);

  fetch(WorldState{});
  ASSERT_TRUE(engine_->active("joiner", "scope"));
  engine_->abort("joiner", "scope");
  EXPECT_FALSE(engine_->active("joiner", "scope"));
  // Late messages for the aborted transfer are ignored, not crashed on.
  net_.run();
  EXPECT_FALSE(completed_state_.has_value());
  EXPECT_EQ(engine_->stats().transfers_completed, 0u);
}

TEST_F(TrieSyncTest, MalformedWirePayloadsCountedAndDropped) {
  for (const char* topic : {"tsync.req", "tsync.offer", "tsync.vote-req",
                            "tsync.vote", "tsync.fetch", "tsync.nodes"}) {
    channel_.send("peer1", "joiner", topic, to_bytes("junk"));
  }
  net_.run();
  EXPECT_EQ(engine_->stats().malformed, 6u);
}

// ---- Wire-type decode fuzz -------------------------------------------------

template <typename T>
void fuzz_decode(const common::Bytes& good, std::uint64_t seed) {
  for (std::size_t len = 0; len < good.size(); ++len) {
    common::Bytes cut(good.begin(),
                      good.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)T::decode(cut);
    } catch (const common::Error&) {
    }
  }
  common::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    common::Bytes mutated = good;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      (void)T::decode(mutated);
    } catch (const common::Error&) {
    }
  }
}

TEST(TrieSyncWire, DecodeFuzzNeverCrashes) {
  const WorldState state = sample_state(8);
  TrieSyncOffer offer{.scope = "ch", .available = true, .height = 4,
                      .tip_hash = crypto::sha256(to_bytes("t")),
                      .state_root = state.digest()};
  fuzz_decode<TrieSyncOffer>(offer.encode(), 11);

  NodeRequest req{.scope = "ch", .state_root = state.digest(),
                  .wanted = {state.digest(), crypto::sha256(to_bytes("x"))}};
  fuzz_decode<NodeRequest>(req.encode(), 12);

  NodeStore store;
  state.trie().collect_nodes(store);
  NodeBatch batch{.scope = "ch", .state_root = state.digest(), .ok = true};
  for (const auto& [hash, bytes] : store) {
    (void)hash;
    batch.nodes.push_back(bytes);
  }
  fuzz_decode<NodeBatch>(batch.encode(), 13);
}

TEST(TrieSyncWire, RoundTripsExactly) {
  const WorldState state = sample_state(8);
  TrieSyncOffer offer{.scope = "ch", .available = true, .height = 4,
                      .tip_hash = crypto::sha256(to_bytes("t")),
                      .state_root = state.digest()};
  const TrieSyncOffer offer2 = TrieSyncOffer::decode(offer.encode());
  EXPECT_TRUE(offer2.available);
  EXPECT_EQ(offer2.height, 4u);
  EXPECT_EQ(offer2.state_root, state.digest());

  TrieSyncOffer refusal{.scope = "ch", .available = false};
  EXPECT_FALSE(TrieSyncOffer::decode(refusal.encode()).available);

  NodeRequest req{.scope = "ch", .state_root = state.digest(),
                  .wanted = {crypto::sha256(to_bytes("a")),
                             crypto::sha256(to_bytes("b"))}};
  const NodeRequest req2 = NodeRequest::decode(req.encode());
  EXPECT_EQ(req2.wanted, req.wanted);

  NodeBatch batch{.scope = "ch", .state_root = state.digest(), .ok = true,
                  .nodes = {to_bytes("n1"), to_bytes("n2")}};
  const NodeBatch batch2 = NodeBatch::decode(batch.encode());
  EXPECT_TRUE(batch2.ok);
  EXPECT_EQ(batch2.nodes, batch.nodes);
}

}  // namespace
}  // namespace veil::ledger
