#include "ledger/transaction.hpp"

#include <gtest/gtest.h>

namespace veil::ledger {
namespace {

Transaction sample_tx() {
  Transaction tx;
  tx.channel = "trade";
  tx.contract = "loc";
  tx.action = "open";
  tx.participants = {"BankA", "Seller"};
  tx.reads = {{"loc/1", 3}};
  tx.writes = {{"loc/1", common::to_bytes("open"), false},
               {"loc/old", {}, true}};
  tx.payload = common::to_bytes("amount=5000");
  tx.hash_refs = {{"pii", crypto::sha256(std::string_view("ssn"))}};
  tx.timestamp = 12345;
  return tx;
}

TEST(Transaction, IdIsDeterministic) {
  EXPECT_EQ(sample_tx().id(), sample_tx().id());
  EXPECT_EQ(sample_tx().id().size(), 24u);
}

TEST(Transaction, IdChangesWithContent) {
  const std::string base_id = sample_tx().id();
  Transaction tx = sample_tx();
  tx.action = "close";
  EXPECT_NE(tx.id(), base_id);
  Transaction tx2 = sample_tx();
  tx2.writes[0].value = common::to_bytes("closed");
  EXPECT_NE(tx2.id(), base_id);
  Transaction tx3 = sample_tx();
  tx3.participants.push_back("Buyer");
  EXPECT_NE(tx3.id(), base_id);
}

TEST(Transaction, EndorsementsDontChangeId) {
  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(1);
  Transaction tx = sample_tx();
  const std::string id = tx.id();
  tx.endorse("BankA", crypto::KeyPair::generate(group, rng));
  EXPECT_EQ(tx.id(), id);
}

TEST(Transaction, EncodingRoundTrip) {
  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(2);
  Transaction tx = sample_tx();
  tx.data_opaque = true;
  tx.parties_pseudonymous = true;
  tx.endorse("BankA", crypto::KeyPair::generate(group, rng));

  const Transaction decoded = Transaction::decode(tx.encode());
  EXPECT_EQ(decoded.id(), tx.id());
  EXPECT_EQ(decoded.channel, tx.channel);
  EXPECT_EQ(decoded.reads, tx.reads);
  EXPECT_EQ(decoded.writes, tx.writes);
  EXPECT_EQ(decoded.hash_refs, tx.hash_refs);
  EXPECT_EQ(decoded.data_opaque, true);
  EXPECT_EQ(decoded.parties_pseudonymous, true);
  ASSERT_EQ(decoded.endorsements.size(), 1u);
  EXPECT_TRUE(decoded.endorsements_valid(group));
}

TEST(Transaction, EndorsementVerification) {
  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(3);
  const crypto::KeyPair alice = crypto::KeyPair::generate(group, rng);
  const crypto::KeyPair bob = crypto::KeyPair::generate(group, rng);
  Transaction tx = sample_tx();
  tx.endorse("alice", alice);
  tx.endorse("bob", bob);
  EXPECT_TRUE(tx.endorsements_valid(group));
}

TEST(Transaction, TamperedEndorsementDetected) {
  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(4);
  Transaction tx = sample_tx();
  tx.endorse("alice", crypto::KeyPair::generate(group, rng));
  // Modify the body after endorsement: signature no longer matches.
  tx.action = "tampered";
  EXPECT_FALSE(tx.endorsements_valid(group));
}

TEST(Transaction, SwappedEndorserKeyDetected) {
  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(5);
  const crypto::KeyPair mallory = crypto::KeyPair::generate(group, rng);
  Transaction tx = sample_tx();
  tx.endorse("alice", crypto::KeyPair::generate(group, rng));
  tx.endorsements[0].key = mallory.public_key();
  EXPECT_FALSE(tx.endorsements_valid(group));
}

TEST(Transaction, DataSizeCountsPayloadAndWrites) {
  const Transaction tx = sample_tx();
  EXPECT_EQ(tx.data_size(),
            tx.payload.size() + tx.writes[0].value.size());
}

TEST(Transaction, VisibilityRecordingPlaintext) {
  net::LeakageAuditor auditor;
  const Transaction tx = sample_tx();
  record_visibility(auditor, "orderer", tx);
  const std::string prefix = "tx/" + tx.id() + "/";
  EXPECT_TRUE(auditor.saw("orderer", prefix + "data"));
  EXPECT_TRUE(auditor.saw("orderer", prefix + "parties"));
  EXPECT_TRUE(auditor.saw("orderer", prefix + "metadata"));
}

TEST(Transaction, VisibilityRecordingOpaque) {
  net::LeakageAuditor auditor;
  Transaction tx = sample_tx();
  tx.data_opaque = true;
  tx.parties_pseudonymous = true;
  record_visibility(auditor, "orderer", tx);
  const std::string prefix = "tx/" + tx.id() + "/";
  EXPECT_FALSE(auditor.saw("orderer", prefix + "data"));
  EXPECT_TRUE(auditor.saw_any_form("orderer", prefix + "data"));
  EXPECT_FALSE(auditor.saw("orderer", prefix + "parties"));
  // Metadata (channel/contract/action) is always visible to the orderer.
  EXPECT_TRUE(auditor.saw("orderer", prefix + "metadata"));
}

}  // namespace
}  // namespace veil::ledger
