// Cross-shard atomic commit: protocol outcomes, the coordinator and
// participant crash-point sweeps (every 2PC step, before/after each WAL
// append), Byzantine coordinator equivocation, standby failover, and
// decode-fuzz over every cross-shard wire type. The invariant under all
// of it: no shard ever applies a cross-shard transaction another
// participant aborted.
#include "ledger/xshard.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ledger/shard.hpp"

namespace veil::ledger {
namespace {

using common::to_bytes;

ShardConfig small_shards() {
  ShardConfig cfg;
  cfg.shard_count = 2;
  cfg.replicas_per_shard = 1;
  cfg.block_size = 1;
  return cfg;
}

/// One self-contained deployment: network, reliable channel, two shards
/// (primary + replica each), and a coordinator pair (primary + standby).
struct Rig {
  net::SimNetwork net;
  net::ReliableChannel channel;
  common::Rng rng;
  ShardMap shards;
  CrossShardCoordinator coord;

  explicit Rig(std::uint64_t seed, ShardConfig scfg = small_shards(),
               CoordinatorConfig ccfg = {})
      : net(common::Rng(seed)),
        channel(net),
        rng(seed + 1),
        shards(net, channel, crypto::Group::test_group(), rng, scfg),
        coord(net, channel, shards, crypto::Group::test_group(), rng, ccfg) {}

  /// A fresh key routed to `shard` (seq keeps keys distinct across txs).
  std::string key_on(std::uint64_t shard, int seq) const {
    for (int i = 0;; ++i) {
      const std::string k =
          "k/" + std::to_string(seq) + "/" + std::to_string(i);
      if (shards.shard_for_key(k) == shard) return k;
    }
  }

  /// A transaction writing one key on shard 0 and one on shard 1.
  Transaction cross_tx(int seq) const {
    Transaction tx;
    tx.channel = "scale";
    tx.contract = "pay";
    tx.action = "move";
    tx.timestamp = static_cast<common::SimTime>(seq);
    tx.writes.push_back({key_on(0, seq), to_bytes("a"), false});
    tx.writes.push_back({key_on(1, seq), to_bytes("b"), false});
    return tx;
  }

  /// Atomicity check: the two shards must never split commit/abort.
  void expect_consistent(const std::string& xid) {
    const auto o0 = shards.outcome(0, xid);
    const auto o1 = shards.outcome(1, xid);
    const bool c0 = o0 == ShardMap::Outcome::Committed;
    const bool c1 = o1 == ShardMap::Outcome::Committed;
    const bool a0 = o0 == ShardMap::Outcome::Aborted;
    const bool a1 = o1 == ShardMap::Outcome::Aborted;
    EXPECT_FALSE(c0 && a1) << xid << ": shard 0 committed, shard 1 aborted";
    EXPECT_FALSE(a0 && c1) << xid << ": shard 0 aborted, shard 1 committed";
  }
};

// ---- Happy path and plain aborts ------------------------------------------

TEST(XShard, CommitsAcrossTwoShards) {
  Rig rig(500);
  const Transaction tx = rig.cross_tx(1);
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();

  EXPECT_EQ(rig.coord.outcome(xid), CrossShardCoordinator::Outcome::Committed);
  EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Committed);
  EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
  // Both writes landed in their owner shards.
  ASSERT_TRUE(rig.shards.get(tx.writes[0].key).has_value());
  ASSERT_TRUE(rig.shards.get(tx.writes[1].key).has_value());
  // Locks released: a local follow-up on the same key is admitted.
  Transaction local;
  local.channel = "scale";
  local.timestamp = 99;
  local.writes.push_back({tx.writes[0].key, to_bytes("later"), false});
  EXPECT_TRUE(rig.shards.submit(local).accepted);
  EXPECT_EQ(rig.net.stats().xshard_commits, 1u);
  EXPECT_EQ(rig.coord.stats().commits, 1u);
}

TEST(XShard, StaleReadVotesNoAndAbortsEverywhere) {
  Rig rig(501);
  // Bump a shard-0 key to version 1 via a local commit.
  const std::string hot = rig.key_on(0, 7);
  Transaction local;
  local.channel = "scale";
  local.timestamp = 1;
  local.writes.push_back({hot, to_bytes("v1"), false});
  ASSERT_TRUE(rig.shards.submit(local).accepted);
  rig.net.run();

  // Cross-shard tx reading the stale version 0 -> shard 0 votes no.
  Transaction tx = rig.cross_tx(2);
  tx.reads.push_back({hot, 0});
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();

  EXPECT_EQ(rig.coord.outcome(xid), CrossShardCoordinator::Outcome::Aborted);
  EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Aborted);
  EXPECT_FALSE(rig.shards.get(tx.writes[1].key).has_value());
  EXPECT_EQ(rig.net.stats().xshard_aborts_voteno, 1u);
  EXPECT_GE(rig.shards.stats().votes_no, 1u);
}

TEST(XShard, SilentParticipantTimesOutToPresumedAbort) {
  Rig rig(502);
  rig.net.crash(rig.shards.primary(1));  // never sees the prepare
  const Transaction tx = rig.cross_tx(3);
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();

  EXPECT_EQ(rig.coord.outcome(xid), CrossShardCoordinator::Outcome::Aborted);
  EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Aborted);
  EXPECT_EQ(rig.net.stats().xshard_aborts_timeout, 1u);
  rig.expect_consistent(xid);
}

TEST(XShard, SingleShardTransactionSkipsEchoWindow) {
  Rig rig(503);
  Transaction tx;
  tx.channel = "scale";
  tx.timestamp = 5;
  tx.writes.push_back({rig.key_on(0, 11), to_bytes("solo"), false});
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();
  EXPECT_EQ(rig.coord.outcome(xid), CrossShardCoordinator::Outcome::Committed);
  EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Committed);
}

// ---- Coordinator crash sweep ----------------------------------------------
// Kill the coordinator at every protocol step (before and after each WAL
// append) and restart it; the shards must converge to one outcome and the
// restarted coordinator must recover to the same verdict from its WAL.

class CoordinatorCrashSweep
    : public ::testing::TestWithParam<CrossShardCoordinator::CrashPoint> {};

TEST_P(CoordinatorCrashSweep, ShardsConvergeAfterRestart) {
  Rig rig(510);
  rig.coord.arm_crash(GetParam());
  const Transaction tx = rig.cross_tx(4);
  const std::string xid = rig.coord.begin(tx);
  // Prompt restart: before the vote timeout and the in-doubt window, so
  // the WAL replay (not the standby) resolves the outcome.
  rig.net.schedule(rig.net.clock().now() + 50'000,
                   [&] { rig.net.restart(rig.coord.name()); });
  rig.net.run();

  rig.expect_consistent(xid);
  const auto o0 = rig.shards.outcome(0, xid);
  switch (GetParam()) {
    case CrossShardCoordinator::CrashPoint::AfterBeginLog:
      // No prepare ever went out; restart presumes abort.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Aborted);
      EXPECT_NE(o0, ShardMap::Outcome::Committed);
      break;
    case CrossShardCoordinator::CrashPoint::BeforeDecisionLog:
      // Decision never durable -> presumed abort everywhere.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Aborted);
      EXPECT_EQ(o0, ShardMap::Outcome::Aborted);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Aborted);
      EXPECT_GE(rig.coord.stats().recovery_aborts, 1u);
      break;
    case CrossShardCoordinator::CrashPoint::AfterDecisionLog:
      // Commit durable before the crash -> replayed and re-sent.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Committed);
      EXPECT_EQ(o0, ShardMap::Outcome::Committed);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
      EXPECT_GE(rig.coord.stats().decisions_resent, 1u);
      break;
    case CrossShardCoordinator::CrashPoint::AfterFirstDecisionSend:
      // Partial broadcast: shard 0 got the commit, shard 1 did not. The
      // echo round (and the restart resend) completes it.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Committed);
      EXPECT_EQ(o0, ShardMap::Outcome::Committed);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
      break;
    case CrossShardCoordinator::CrashPoint::None:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, CoordinatorCrashSweep,
    ::testing::Values(CrossShardCoordinator::CrashPoint::AfterBeginLog,
                      CrossShardCoordinator::CrashPoint::BeforeDecisionLog,
                      CrossShardCoordinator::CrashPoint::AfterDecisionLog,
                      CrossShardCoordinator::CrashPoint::AfterFirstDecisionSend));

// ---- Participant crash sweep ----------------------------------------------
// Kill the shard-1 primary at every participant step and restart it after
// the coordinator's vote timeout, so recovery exercises the WAL rebuild,
// the re-vote, and the in-doubt status query.

class ParticipantCrashSweep
    : public ::testing::TestWithParam<ShardMap::PCrashPoint> {};

TEST_P(ParticipantCrashSweep, ShardsConvergeAfterRestart) {
  Rig rig(520);
  rig.shards.arm_primary_crash(1, GetParam());
  const Transaction tx = rig.cross_tx(5);
  const std::string xid = rig.coord.begin(tx);
  rig.net.schedule(rig.net.clock().now() + 150'000,
                   [&] { rig.net.restart(rig.shards.primary(1)); });
  rig.net.run();

  rig.expect_consistent(xid);
  switch (GetParam()) {
    case ShardMap::PCrashPoint::AfterPrepareLog:
      // Yes-vote durable but never sent: the coordinator timed out to a
      // presumed abort; the restarted participant learns it via its
      // in-doubt status query and unlocks.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Aborted);
      EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Aborted);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Aborted);
      break;
    case ShardMap::PCrashPoint::AfterVoteSend:
      // Vote reached the coordinator -> commit decided; the decision to
      // the crashed shard is recovered through the status query.
      EXPECT_EQ(rig.coord.outcome(xid),
                CrossShardCoordinator::Outcome::Committed);
      EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Committed);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
      break;
    case ShardMap::PCrashPoint::AfterOutcomeLog:
      // Outcome durable, block not sealed: restart re-drives the apply.
      EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Committed);
      EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
      EXPECT_TRUE(rig.shards.get(tx.writes[1].key).has_value());
      break;
    case ShardMap::PCrashPoint::None:
      break;
  }
  // Whatever the verdict, no lock survives: a local write to the same
  // shard-1 key must be admitted.
  Transaction local;
  local.channel = "scale";
  local.timestamp = 77;
  local.writes.push_back({tx.writes[1].key, to_bytes("after"), false});
  EXPECT_TRUE(rig.shards.submit(local).accepted);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoints, ParticipantCrashSweep,
    ::testing::Values(ShardMap::PCrashPoint::AfterPrepareLog,
                      ShardMap::PCrashPoint::AfterVoteSend,
                      ShardMap::PCrashPoint::AfterOutcomeLog));

// ---- Byzantine coordinator ------------------------------------------------

TEST(XShard, EquivocatingCoordinatorConvictedAndAllAbort) {
  Rig rig(530);
  rig.coord.set_equivocate(true);
  const Transaction tx = rig.cross_tx(6);
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();

  // The echo round surfaced the conflicting signed decisions: conviction,
  // quarantine, and a unanimous fail-closed abort.
  EXPECT_GE(rig.shards.stats().echo_conflicts, 1u);
  ASSERT_GE(rig.shards.evidence().entries().size(), 1u);
  EXPECT_EQ(rig.shards.evidence().entries()[0].kind,
            audit::Misbehavior::CoordinatorEquivocation);
  EXPECT_EQ(rig.shards.evidence().entries()[0].accused, rig.coord.name());
  EXPECT_TRUE(rig.net.is_quarantined(rig.coord.name()));
  EXPECT_EQ(rig.net.stats().xshard_aborts_equivocation, 1u);
  EXPECT_NE(rig.shards.outcome(0, xid), ShardMap::Outcome::Committed);
  EXPECT_NE(rig.shards.outcome(1, xid), ShardMap::Outcome::Committed);
  rig.expect_consistent(xid);
  // Neither write applied.
  EXPECT_FALSE(rig.shards.get(tx.writes[0].key).has_value());
  EXPECT_FALSE(rig.shards.get(tx.writes[1].key).has_value());
}

TEST(XShard, CommitWithoutCertificateFailsClosed) {
  Rig rig(531);
  // Hand-build a "commit" with no vote certificate, signed by a key the
  // shards were told belongs to a coordinator.
  crypto::KeyPair rogue =
      crypto::KeyPair::generate(crypto::Group::test_group(), rig.rng);
  rig.shards.register_coordinator("rogue", rogue.public_key(), false);
  rig.channel.attach("rogue", nullptr);

  // Get shard 0 prepared first so the decision has something to bite on.
  XPrepare prep;
  prep.xid = "fake-xid";
  prep.shard = 0;
  prep.participants = {0, 1};
  prep.coordinator = "rogue";
  prep.subtx.channel = "scale";
  prep.subtx.writes.push_back({rig.key_on(0, 21), to_bytes("x"), false});
  prep.sig = rogue.sign(prep.to_be_signed());
  rig.channel.send("rogue", rig.shards.primary(0), "xshard.prepare",
                   prep.encode());
  // Deliver the certless commit mid-flight, before the participant's
  // in-doubt escalation kicks in (a run to quiescence would let the
  // standby resolve the silent "rogue" coordinator to abort first).
  rig.net.schedule(rig.net.clock().now() + 50'000, [&] {
    ASSERT_EQ(rig.shards.outcome(0, "fake-xid"), ShardMap::Outcome::Prepared);
    XDecision d;
    d.xid = "fake-xid";
    d.commit = true;  // no certificate attached
    d.decider = "rogue";
    d.sig = rogue.sign(d.to_be_signed());
    rig.channel.send("rogue", rig.shards.primary(0), "xshard.decision",
                     d.encode());
  });
  rig.net.run();

  // The bad commit was refused; the shard stayed prepared until the
  // in-doubt machinery resolved the dead coordinator to a safe abort.
  EXPECT_GE(rig.shards.stats().cert_rejected, 1u);
  EXPECT_NE(rig.shards.outcome(0, "fake-xid"), ShardMap::Outcome::Committed);
  EXPECT_FALSE(rig.shards.get(prep.subtx.writes[0].key).has_value());
}

// ---- Standby failover -----------------------------------------------------

TEST(XShard, StandbyResolvesInDoubtParticipantsToAbort) {
  Rig rig(540);
  // Decision durable but never sent; the coordinator stays down, so the
  // participants escalate to the standby, whose complete prepared-only
  // reply set resolves to abort (no shard applied anything).
  rig.coord.arm_crash(CrossShardCoordinator::CrashPoint::AfterDecisionLog);
  const Transaction tx = rig.cross_tx(8);
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();

  EXPECT_GE(rig.coord.stats().failover_recoveries, 1u);
  EXPECT_GE(rig.net.stats().xshard_failovers, 1u);
  EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Aborted);
  EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Aborted);
  rig.expect_consistent(xid);
  // The fence did its job: both shards answered a standby query and then
  // only honoured the standby's verdict.
  EXPECT_GE(rig.coord.stats().status_replies + rig.shards.stats().fenced_refused,
            0u);  // (accounting smoke; the outcome assertions above are the invariant)
}

TEST(XShard, FencedParticipantRefusesLatePrimaryDecision) {
  Rig rig(541);
  rig.coord.arm_crash(CrossShardCoordinator::CrashPoint::AfterDecisionLog);
  const Transaction tx = rig.cross_tx(9);
  const std::string xid = rig.coord.begin(tx);
  rig.net.run();  // standby resolved both shards to abort (fenced path)
  ASSERT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Aborted);

  // Now the primary coordinator comes back holding its logged commit and
  // resends it. The shards already finalized the standby abort; the late
  // commit must be refused, not applied (shards are the source of truth).
  rig.net.restart(rig.coord.name());
  rig.net.run();
  EXPECT_EQ(rig.shards.outcome(0, xid), ShardMap::Outcome::Aborted);
  EXPECT_EQ(rig.shards.outcome(1, xid), ShardMap::Outcome::Aborted);
  EXPECT_GE(rig.shards.stats().signer_conflicts, 1u);
  EXPECT_FALSE(rig.shards.get(tx.writes[0].key).has_value());
  EXPECT_FALSE(rig.shards.get(tx.writes[1].key).has_value());
}

// ---- Malformed wire -------------------------------------------------------

TEST(XShard, MalformedPayloadsAreCountedNotFatal) {
  Rig rig(550);
  rig.channel.attach("fuzzer", nullptr);
  for (const char* topic :
       {"xshard.prepare", "xshard.decision", "xshard.echo", "xshard.query"}) {
    rig.channel.send("fuzzer", rig.shards.primary(0), topic,
                     to_bytes("garbage"));
  }
  rig.channel.send("fuzzer", rig.coord.name(), "xshard.vote",
                   to_bytes("junk"));
  rig.channel.send("fuzzer", rig.coord.name(), "xshard.status",
                   to_bytes("junk"));
  rig.channel.send("fuzzer", rig.coord.standby_name(), "xshard.recover",
                   to_bytes("junk"));
  rig.net.run();
  EXPECT_GE(rig.shards.stats().malformed, 4u);
  EXPECT_GE(rig.coord.stats().malformed, 3u);
  // And the deployment still works afterwards.
  const std::string xid = rig.coord.begin(rig.cross_tx(10));
  rig.net.run();
  EXPECT_EQ(rig.coord.outcome(xid), CrossShardCoordinator::Outcome::Committed);
}

TEST(XShard, CoordinatorNeverSignsForeignXids) {
  Rig rig(551);
  XStatus st;
  st.xid = "never-begun";
  st.shard = 0;
  st.requester = rig.shards.primary(0);
  rig.channel.attach("fuzzer", nullptr);
  rig.channel.send("fuzzer", rig.coord.name(), "xshard.status", st.encode());
  rig.net.run();
  EXPECT_EQ(rig.coord.stats().status_replies, 0u);
  EXPECT_EQ(rig.coord.outcome("never-begun"),
            CrossShardCoordinator::Outcome::Pending);
}

// ---- Decode fuzz over every cross-shard wire type -------------------------

template <typename T>
void fuzz_decode(const common::Bytes& good, std::uint64_t seed) {
  for (std::size_t len = 0; len < good.size(); ++len) {
    common::Bytes cut(good.begin(),
                      good.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)T::decode(cut);
    } catch (const common::Error&) {
    }
  }
  common::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    common::Bytes mutated = good;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      (void)T::decode(mutated);
    } catch (const common::Error&) {
    }
  }
}

TEST(XShardWire, RoundTripsExactly) {
  Rig rig(560);
  crypto::KeyPair key =
      crypto::KeyPair::generate(crypto::Group::test_group(), rig.rng);

  XPrepare prep;
  prep.xid = "x1";
  prep.shard = 1;
  prep.participants = {0, 1, 3};
  prep.coordinator = "xcoord";
  prep.deadline_us = 12345;
  prep.subtx = rig.cross_tx(1);
  prep.sig = key.sign(prep.to_be_signed());
  const XPrepare prep2 = XPrepare::decode(prep.encode());
  EXPECT_EQ(prep2.xid, "x1");
  EXPECT_EQ(prep2.participants, prep.participants);
  EXPECT_EQ(prep2.subtx.id(), prep.subtx.id());
  EXPECT_EQ(prep2.to_be_signed(), prep.to_be_signed());

  XVote vote;
  vote.xid = "x1";
  vote.shard = 1;
  vote.yes = true;
  vote.state_root = crypto::sha256(to_bytes("root"));
  vote.voter = "shard-1";
  vote.sig = key.sign(vote.to_be_signed());
  const XVote vote2 = XVote::decode(vote.encode());
  EXPECT_TRUE(vote2.yes);
  EXPECT_EQ(vote2.state_root, vote.state_root);
  EXPECT_EQ(vote2.to_be_signed(), vote.to_be_signed());

  XDecision d;
  d.xid = "x1";
  d.commit = true;
  d.cert = {vote};
  d.decider = "xcoord";
  d.sig = key.sign(d.to_be_signed());
  const XDecision d2 = XDecision::decode(d.encode());
  EXPECT_TRUE(d2.commit);
  ASSERT_EQ(d2.cert.size(), 1u);
  EXPECT_EQ(d2.cert[0].to_be_signed(), vote.to_be_signed());
  EXPECT_EQ(d2.to_be_signed(), d.to_be_signed());

  XStatus st;
  st.xid = "x1";
  st.shard = 2;
  st.requester = "shard-2";
  const XStatus st2 = XStatus::decode(st.encode());
  EXPECT_EQ(st2.requester, "shard-2");

  XQueryReply rep;
  rep.xid = "x1";
  rep.shard = 2;
  rep.prepared = true;
  rep.decided = true;
  rep.decision = d.encode();
  const XQueryReply rep2 = XQueryReply::decode(rep.encode());
  EXPECT_TRUE(rep2.prepared);
  EXPECT_EQ(rep2.decision, d.encode());
}

TEST(XShardWire, DecodeFuzzNeverCrashes) {
  Rig rig(561);
  crypto::KeyPair key =
      crypto::KeyPair::generate(crypto::Group::test_group(), rig.rng);

  XPrepare prep;
  prep.xid = "x1";
  prep.shard = 1;
  prep.participants = {0, 1};
  prep.coordinator = "xcoord";
  prep.subtx = rig.cross_tx(1);
  prep.sig = key.sign(prep.to_be_signed());
  fuzz_decode<XPrepare>(prep.encode(), 71);

  XVote vote;
  vote.xid = "x1";
  vote.shard = 1;
  vote.yes = true;
  vote.state_root = crypto::sha256(to_bytes("root"));
  vote.voter = "shard-1";
  vote.sig = key.sign(vote.to_be_signed());
  fuzz_decode<XVote>(vote.encode(), 72);

  XDecision d;
  d.xid = "x1";
  d.commit = true;
  d.cert = {vote};
  d.decider = "xcoord";
  d.sig = key.sign(d.to_be_signed());
  fuzz_decode<XDecision>(d.encode(), 73);

  XStatus st;
  st.xid = "x1";
  st.shard = 0;
  st.requester = "shard-0";
  fuzz_decode<XStatus>(st.encode(), 74);

  XQueryReply rep;
  rep.xid = "x1";
  rep.decided = true;
  rep.decision = d.encode();
  fuzz_decode<XQueryReply>(rep.encode(), 75);
}

}  // namespace
}  // namespace veil::ledger
