#include "ledger/state.hpp"

#include <gtest/gtest.h>

namespace veil::ledger {
namespace {

using common::to_bytes;

TEST(WorldState, PutGetAndVersions) {
  WorldState state;
  EXPECT_FALSE(state.get("k").has_value());
  state.put("k", to_bytes("v1"));
  auto entry = state.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, to_bytes("v1"));
  EXPECT_EQ(entry->version, 1u);
  state.put("k", to_bytes("v2"));
  EXPECT_EQ(state.get("k")->version, 2u);
}

TEST(WorldState, Erase) {
  WorldState state;
  state.put("k", to_bytes("v"));
  state.erase("k");
  EXPECT_FALSE(state.get("k").has_value());
}

TEST(WorldState, ApplyFreshWrites) {
  WorldState state;
  Transaction tx;
  tx.reads = {{"new-key", 0}};  // expects key absent
  tx.writes = {{"new-key", to_bytes("hello"), false}};
  EXPECT_EQ(state.apply(tx), CommitResult::Applied);
  EXPECT_EQ(state.get("new-key")->value, to_bytes("hello"));
}

TEST(WorldState, MvccConflictOnStaleRead) {
  WorldState state;
  state.put("k", to_bytes("v1"));  // version 1

  Transaction stale;
  stale.reads = {{"k", 0}};  // endorsed before the put
  stale.writes = {{"k", to_bytes("clobber"), false}};
  EXPECT_EQ(state.apply(stale), CommitResult::MvccConflict);
  // No side effects on conflict.
  EXPECT_EQ(state.get("k")->value, to_bytes("v1"));
  EXPECT_EQ(state.get("k")->version, 1u);
}

TEST(WorldState, MvccConflictOnDeletedKey) {
  WorldState state;
  state.put("k", to_bytes("v"));
  Transaction tx;
  tx.reads = {{"k", 1}};
  state.erase("k");
  EXPECT_EQ(state.apply(tx), CommitResult::MvccConflict);
}

TEST(WorldState, SequentialTransactionsAdvanceVersions) {
  WorldState state;
  Transaction tx1;
  tx1.reads = {{"counter", 0}};
  tx1.writes = {{"counter", to_bytes("1"), false}};
  EXPECT_EQ(state.apply(tx1), CommitResult::Applied);

  Transaction tx2;
  tx2.reads = {{"counter", 1}};
  tx2.writes = {{"counter", to_bytes("2"), false}};
  EXPECT_EQ(state.apply(tx2), CommitResult::Applied);

  // Replay of tx2 conflicts (version moved on).
  EXPECT_EQ(state.apply(tx2), CommitResult::MvccConflict);
  EXPECT_EQ(state.get("counter")->value, to_bytes("2"));
}

TEST(WorldState, DeleteWriteRemovesKey) {
  WorldState state;
  state.put("gone", to_bytes("x"));
  Transaction tx;
  tx.writes = {{"gone", {}, true}};
  EXPECT_EQ(state.apply(tx), CommitResult::Applied);
  EXPECT_FALSE(state.get("gone").has_value());
}

TEST(WorldState, EmptyReadSetAlwaysApplies) {
  WorldState state;
  state.put("k", to_bytes("v"));
  Transaction blind;
  blind.writes = {{"k", to_bytes("w"), false}};
  EXPECT_EQ(state.apply(blind), CommitResult::Applied);
}

TEST(WorldState, EntriesViewOrdered) {
  WorldState state;
  state.put("b", to_bytes("2"));
  state.put("a", to_bytes("1"));
  const auto& entries = state.entries();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.begin()->first, "a");
}


TEST(WorldState, RangeQuery) {
  WorldState state;
  for (const char* k : {"a/1", "a/2", "b/1", "b/2", "c/1"}) {
    state.put(k, to_bytes(k));
  }
  const auto range = state.get_range("a/2", "c/1");
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].first, "a/2");
  EXPECT_EQ(range[2].first, "b/2");
  // Open-ended range.
  EXPECT_EQ(state.get_range("b/", "").size(), 3u);
  // Empty range.
  EXPECT_TRUE(state.get_range("x", "z").empty());
}

TEST(WorldState, PrefixQuery) {
  WorldState state;
  for (const char* k : {"order/1", "order/2", "orderbook", "user/1"}) {
    state.put(k, to_bytes("v"));
  }
  EXPECT_EQ(state.get_by_prefix("order/").size(), 2u);
  EXPECT_EQ(state.get_by_prefix("order").size(), 3u);
  EXPECT_EQ(state.get_by_prefix("z").size(), 0u);
  EXPECT_EQ(state.get_by_prefix("").size(), 4u);
}

}  // namespace
}  // namespace veil::ledger
