#include "ledger/state.hpp"

#include <gtest/gtest.h>

namespace veil::ledger {
namespace {

using common::to_bytes;

TEST(WorldState, PutGetAndVersions) {
  WorldState state;
  EXPECT_FALSE(state.get("k").has_value());
  state.put("k", to_bytes("v1"));
  auto entry = state.get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, to_bytes("v1"));
  EXPECT_EQ(entry->version, 1u);
  state.put("k", to_bytes("v2"));
  EXPECT_EQ(state.get("k")->version, 2u);
}

TEST(WorldState, Erase) {
  WorldState state;
  state.put("k", to_bytes("v"));
  state.erase("k");
  EXPECT_FALSE(state.get("k").has_value());
}

TEST(WorldState, ApplyFreshWrites) {
  WorldState state;
  Transaction tx;
  tx.reads = {{"new-key", 0}};  // expects key absent
  tx.writes = {{"new-key", to_bytes("hello"), false}};
  EXPECT_EQ(state.apply(tx), CommitResult::Applied);
  EXPECT_EQ(state.get("new-key")->value, to_bytes("hello"));
}

TEST(WorldState, MvccConflictOnStaleRead) {
  WorldState state;
  state.put("k", to_bytes("v1"));  // version 1

  Transaction stale;
  stale.reads = {{"k", 0}};  // endorsed before the put
  stale.writes = {{"k", to_bytes("clobber"), false}};
  EXPECT_EQ(state.apply(stale), CommitResult::MvccConflict);
  // No side effects on conflict.
  EXPECT_EQ(state.get("k")->value, to_bytes("v1"));
  EXPECT_EQ(state.get("k")->version, 1u);
}

TEST(WorldState, MvccConflictOnDeletedKey) {
  WorldState state;
  state.put("k", to_bytes("v"));
  Transaction tx;
  tx.reads = {{"k", 1}};
  state.erase("k");
  EXPECT_EQ(state.apply(tx), CommitResult::MvccConflict);
}

TEST(WorldState, SequentialTransactionsAdvanceVersions) {
  WorldState state;
  Transaction tx1;
  tx1.reads = {{"counter", 0}};
  tx1.writes = {{"counter", to_bytes("1"), false}};
  EXPECT_EQ(state.apply(tx1), CommitResult::Applied);

  Transaction tx2;
  tx2.reads = {{"counter", 1}};
  tx2.writes = {{"counter", to_bytes("2"), false}};
  EXPECT_EQ(state.apply(tx2), CommitResult::Applied);

  // Replay of tx2 conflicts (version moved on).
  EXPECT_EQ(state.apply(tx2), CommitResult::MvccConflict);
  EXPECT_EQ(state.get("counter")->value, to_bytes("2"));
}

TEST(WorldState, DeleteWriteRemovesKey) {
  WorldState state;
  state.put("gone", to_bytes("x"));
  Transaction tx;
  tx.writes = {{"gone", {}, true}};
  EXPECT_EQ(state.apply(tx), CommitResult::Applied);
  EXPECT_FALSE(state.get("gone").has_value());
}

TEST(WorldState, EmptyReadSetAlwaysApplies) {
  WorldState state;
  state.put("k", to_bytes("v"));
  Transaction blind;
  blind.writes = {{"k", to_bytes("w"), false}};
  EXPECT_EQ(state.apply(blind), CommitResult::Applied);
}

TEST(WorldState, EntriesViewOrdered) {
  WorldState state;
  state.put("b", to_bytes("2"));
  state.put("a", to_bytes("1"));
  const auto& entries = state.entries();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.begin()->first, "a");
}


TEST(WorldState, RangeQuery) {
  WorldState state;
  for (const char* k : {"a/1", "a/2", "b/1", "b/2", "c/1"}) {
    state.put(k, to_bytes(k));
  }
  const auto range = state.get_range("a/2", "c/1");
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].first, "a/2");
  EXPECT_EQ(range[2].first, "b/2");
  // Open-ended range.
  EXPECT_EQ(state.get_range("b/", "").size(), 3u);
  // Empty range.
  EXPECT_TRUE(state.get_range("x", "z").empty());
}

TEST(WorldState, PrefixQuery) {
  WorldState state;
  for (const char* k : {"order/1", "order/2", "orderbook", "user/1"}) {
    state.put(k, to_bytes("v"));
  }
  EXPECT_EQ(state.get_by_prefix("order/").size(), 2u);
  EXPECT_EQ(state.get_by_prefix("order").size(), 3u);
  EXPECT_EQ(state.get_by_prefix("z").size(), 0u);
  EXPECT_EQ(state.get_by_prefix("").size(), 4u);
}

TEST(WorldState, VersionOfTracksPutsErasesAndAbsence) {
  WorldState state;
  EXPECT_EQ(state.version_of("k"), 0u);
  state.put("k", to_bytes("v1"));
  EXPECT_EQ(state.version_of("k"), 1u);
  state.put("k", to_bytes("v2"));
  EXPECT_EQ(state.version_of("k"), 2u);
  state.erase("k");
  EXPECT_EQ(state.version_of("k"), 0u);  // absent again
}

TEST(WorldState, HotCacheStaysCoherentThroughEraseAndRewrite) {
  // Every mutation path must refresh the hot tier: a stale cached value
  // or a missed tombstone would make get() disagree with the trie.
  WorldState state;
  state.put("acct", to_bytes("v1"));
  ASSERT_EQ(state.get("acct")->value, to_bytes("v1"));  // hot hit
  state.erase("acct");                                  // hot tombstone
  EXPECT_FALSE(state.get("acct").has_value());
  EXPECT_EQ(state.version_of("acct"), 0u);
  state.put("acct", to_bytes("v2"));                    // tombstone overwritten
  ASSERT_TRUE(state.get("acct").has_value());
  EXPECT_EQ(state.get("acct")->value, to_bytes("v2"));
  EXPECT_EQ(state.get("acct")->version, 1u);  // version restarts after erase

  // apply() writes go through the same refresh.
  Transaction tx;
  tx.reads = {{"acct", 1}};
  tx.writes = {{"acct", to_bytes("v3"), false}, {"other", to_bytes("o"), false}};
  ASSERT_EQ(state.apply(tx), CommitResult::Applied);
  EXPECT_EQ(state.get("acct")->value, to_bytes("v3"));
  EXPECT_EQ(state.get("other")->value, to_bytes("o"));

  Transaction del;
  del.writes = {{"other", {}, true}};
  ASSERT_EQ(state.apply(del), CommitResult::Applied);
  EXPECT_FALSE(state.get("other").has_value());
}

TEST(WorldState, DigestIsContentAddressedNotHistoryAddressed) {
  // Two replicas reaching the same mapping through different mutation
  // orders (and a decode of the canonical encoding) agree on the digest
  // — the bit-identical-replica invariant the chaos suites lean on.
  WorldState a;
  a.put("x", to_bytes("1"));
  a.put("y", to_bytes("2"));
  a.put("z", to_bytes("3"));
  a.erase("z");

  WorldState b;
  b.put("y", to_bytes("2"));
  b.put("x", to_bytes("1"));

  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(WorldState::decode(a.encode()).digest(), a.digest());
}

TEST(WorldState, DigestIsO1BetweenMutations) {
  // digest() is the incrementally maintained trie root: repeated calls
  // between mutations return the identical cached root, and only
  // mutations move it.
  WorldState state;
  for (int i = 0; i < 100; ++i) {
    state.put("k" + std::to_string(i), to_bytes("v"));
  }
  const crypto::Digest d1 = state.digest();
  EXPECT_EQ(state.digest(), d1);
  state.put("k0", to_bytes("v2"));
  EXPECT_NE(state.digest(), d1);
}

TEST(WorldState, ForEachMatchesEntriesWithoutMaterializing) {
  WorldState state;
  for (int i = 0; i < 50; ++i) {
    state.put("k" + std::to_string(i), to_bytes(std::to_string(i)));
  }
  const auto entries = state.entries();  // by value: a materialized copy
  auto it = entries.begin();
  std::size_t visited = 0;
  state.for_each([&](const std::string& key, const common::Bytes& value,
                     std::uint64_t version) {
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second.value);
    EXPECT_EQ(version, it->second.version);
    ++it;
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, entries.size());
}

TEST(WorldState, PrefixScanOverHugeStateDoesNoFullIteration) {
  // Regression for the old map-backed get_by_prefix, which walked every
  // entry: with 10^5 accounts and 10 matches, the trie scan must touch
  // O(depth + matches) nodes, not O(n).
  WorldState state;
  for (int i = 0; i < 100000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "acct/%06d", i);
    state.put(buf, to_bytes("balance"));
  }
  for (int i = 0; i < 10; ++i) {
    state.put("watch/" + std::to_string(i), to_bytes("w"));
  }

  std::size_t matches = 0;
  const std::size_t visited =
      state.scan_prefix("watch/", [&](const std::string&, const common::Bytes&,
                                      std::uint64_t) {
        ++matches;
        return true;
      });
  EXPECT_EQ(matches, 10u);
  EXPECT_LT(visited, 64u);  // nowhere near the 100k-key subtrie

  // The materializing form rides the same scan.
  EXPECT_EQ(state.get_by_prefix("watch/").size(), 10u);

  // Bounded range over the huge prefix seeks, not iterates.
  std::size_t range_matches = 0;
  const std::size_t range_visited = state.scan_range(
      "acct/050000", "acct/050005",
      [&](const std::string&, const common::Bytes&, std::uint64_t) {
        ++range_matches;
        return true;
      });
  EXPECT_EQ(range_matches, 5u);
  EXPECT_LT(range_visited, 128u);
}

TEST(WorldState, ProofsExportAgainstCurrentDigest) {
  WorldState state;
  state.put("acct/alice", to_bytes("100"));
  state.put("acct/bob", to_bytes("250"));

  const StateProof inc = state.prove("acct/bob");
  EXPECT_TRUE(inc.exists);
  EXPECT_EQ(inc.value, to_bytes("250"));
  EXPECT_TRUE(WorldState::verify_proof(state.digest(), inc));

  const StateProof exc = state.prove("acct/carol");
  EXPECT_FALSE(exc.exists);
  EXPECT_TRUE(WorldState::verify_proof(state.digest(), exc));

  // A proof goes stale with the state it described.
  state.put("acct/bob", to_bytes("300"));
  EXPECT_FALSE(WorldState::verify_proof(state.digest(), inc));
}

}  // namespace
}  // namespace veil::ledger
