#include "ledger/snapshot.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "ledger/wal.hpp"

namespace veil::ledger {
namespace {

using common::Bytes;
using common::to_bytes;

WorldState sample_state(int keys) {
  WorldState state;
  for (int i = 0; i < keys; ++i) {
    state.put("asset/" + std::to_string(i),
              to_bytes("owner-" + std::to_string(i % 7)));
  }
  return state;
}

crypto::Digest tip(const char* tag) { return crypto::sha256(std::string_view(tag)); }

TEST(Snapshot, MakeIsCanonicalAndDeterministic) {
  const WorldState a = sample_state(40);
  WorldState b;  // same entries, different insertion order
  for (int i = 39; i >= 0; --i) {
    b.put("asset/" + std::to_string(i),
          to_bytes("owner-" + std::to_string(i % 7)));
  }
  const Snapshot sa = Snapshot::make(9, tip("t"), a, 64);
  const Snapshot sb = Snapshot::make(9, tip("t"), b, 64);
  EXPECT_EQ(sa.root(), sb.root());
  EXPECT_EQ(sa.body_size(), sb.body_size());
  EXPECT_GT(sa.chunk_count(), 1u);  // must actually exercise chunking

  // Any differing input changes the root.
  EXPECT_NE(Snapshot::make(10, tip("t"), a, 64).root(), sa.root());
  EXPECT_NE(Snapshot::make(9, tip("u"), a, 64).root(), sa.root());
  EXPECT_NE(Snapshot::make(9, tip("t"), a, 128).root(), sa.root());
  WorldState c = a;
  c.put("asset/0", to_bytes("stolen"));
  EXPECT_NE(Snapshot::make(9, tip("t"), c, 64).root(), sa.root());
}

TEST(Snapshot, ChunksVerifyAndReassemble) {
  const WorldState state = sample_state(50);
  const Snapshot snap = Snapshot::make(5, tip("t"), state, 100);
  ASSERT_TRUE(snap.header().self_consistent());

  std::vector<Bytes> chunks;
  for (std::size_t i = 0; i < snap.chunk_count(); ++i) {
    Bytes chunk = snap.chunk(i);
    EXPECT_TRUE(Snapshot::verify_chunk(snap.header(), i, chunk));
    chunks.push_back(std::move(chunk));
  }
  const auto rebuilt = Snapshot::assemble(snap.header(), chunks);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->digest(), state.digest());
}

TEST(Snapshot, TamperedChunkIsRejected) {
  const Snapshot snap = Snapshot::make(5, tip("t"), sample_state(50), 100);
  for (std::size_t i = 0; i < snap.chunk_count(); ++i) {
    Bytes chunk = snap.chunk(i);
    chunk[chunk.size() / 2] ^= 0x01;
    EXPECT_FALSE(Snapshot::verify_chunk(snap.header(), i, chunk));
  }
  // Right bytes, wrong position.
  if (snap.chunk_count() > 1) {
    EXPECT_FALSE(Snapshot::verify_chunk(snap.header(), 1, snap.chunk(0)));
  }
  // Out-of-range index.
  EXPECT_FALSE(
      Snapshot::verify_chunk(snap.header(), snap.chunk_count(), Bytes{}));
  // Wrong length (truncated chunk).
  Bytes short_chunk = snap.chunk(0);
  short_chunk.pop_back();
  EXPECT_FALSE(Snapshot::verify_chunk(snap.header(), 0, short_chunk));
}

TEST(Snapshot, AssembleFailsOnMissingChunk) {
  const Snapshot snap = Snapshot::make(5, tip("t"), sample_state(50), 100);
  ASSERT_GT(snap.chunk_count(), 1u);
  std::vector<Bytes> chunks;
  for (std::size_t i = 0; i < snap.chunk_count(); ++i) {
    chunks.push_back(snap.chunk(i));
  }
  chunks[1].clear();
  EXPECT_FALSE(Snapshot::assemble(snap.header(), chunks).has_value());
  chunks.pop_back();
  EXPECT_FALSE(Snapshot::assemble(snap.header(), chunks).has_value());
}

TEST(Snapshot, ForgedHeaderFailsSelfConsistency) {
  const Snapshot snap = Snapshot::make(5, tip("t"), sample_state(30), 100);

  SnapshotHeader lying_root = snap.header();
  lying_root.root[0] ^= 0x01;
  EXPECT_FALSE(lying_root.self_consistent());

  SnapshotHeader lying_height = snap.header();
  lying_height.height += 1;  // root no longer recomputes
  EXPECT_FALSE(lying_height.self_consistent());

  SnapshotHeader bad_geometry = snap.header();
  bad_geometry.chunk_hashes.push_back(crypto::Digest{});
  EXPECT_FALSE(bad_geometry.self_consistent());

  SnapshotHeader zero_chunk = snap.header();
  zero_chunk.chunk_size = 0;
  EXPECT_FALSE(zero_chunk.self_consistent());
}

TEST(Snapshot, EncodeDecodeRoundTripAndTamperDetection) {
  const WorldState state = sample_state(25);
  const Snapshot snap = Snapshot::make(7, tip("t"), state, 128);
  const Bytes encoded = snap.encode();

  const Snapshot back = Snapshot::decode(encoded);
  EXPECT_EQ(back.root(), snap.root());
  EXPECT_EQ(back.height(), 7u);
  EXPECT_EQ(back.state().digest(), state.digest());

  // A sealed snapshot cannot be tampered without detection: flip any body
  // byte and decode must throw.
  Bytes tampered = encoded;
  tampered[tampered.size() - 3] ^= 0x01;
  EXPECT_THROW(Snapshot::decode(tampered), common::Error);
}

TEST(Snapshot, HeaderDecodeFuzzNeverCrashes) {
  const Snapshot snap = Snapshot::make(3, tip("t"), sample_state(20), 64);
  const Bytes encoded = snap.header().encode();
  common::Rng rng(0x5eed5eedULL);

  // Truncations.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    try {
      (void)SnapshotHeader::decode(
          common::BytesView(encoded.data(), len));
    } catch (const common::Error&) {
    }
  }
  // Random mutations: either throws common::Error or yields a header that
  // fails self-consistency (a lucky mutation through the root is
  // astronomically unlikely).
  for (int round = 0; round < 300; ++round) {
    Bytes mutated = encoded;
    const std::size_t flips = 1 + rng.next_u64() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
    }
    try {
      const SnapshotHeader header = SnapshotHeader::decode(mutated);
      EXPECT_FALSE(header.self_consistent() &&
                   header.encode() != encoded)
          << "mutated header both decoded and self-consistent";
    } catch (const common::Error&) {
    }
  }
}

TEST(Snapshot, ForgedChunkCountCannotForceHugeAllocation) {
  // A forged varint chunk count far beyond the actual payload must be
  // rejected during decode, not trusted as a reserve() size.
  common::Writer w;
  w.u64(1);
  const crypto::Digest t = tip("t");
  w.raw(common::BytesView(t.data(), t.size()));
  w.u64(100);
  w.u32(10);
  w.varint(0xFFFFFFFFFFULL);  // claims ~1T chunk hashes, provides none
  EXPECT_THROW(SnapshotHeader::decode(w.take()), common::Error);
}

// ---- SnapshotStore ---------------------------------------------------------

TEST(SnapshotStore, DisabledByDefault) {
  SnapshotStore store;
  WriteAheadLog wal;
  EXPECT_FALSE(store.enabled());
  EXPECT_FALSE(
      store.maybe_checkpoint(wal, 4, tip("t"), sample_state(3)));
  EXPECT_EQ(store.latest(), nullptr);
  EXPECT_EQ(wal.record_count(), 0u);
}

TEST(SnapshotStore, IntervalCheckpointsAndCompactsWal) {
  SnapshotStore store(SnapshotConfig{.interval = 4});
  WriteAheadLog wal;
  WorldState state;
  std::size_t checkpoints = 0;
  for (std::uint64_t height = 1; height <= 12; ++height) {
    state.put("k" + std::to_string(height), to_bytes("v"));
    wal.append(kWalBlock, to_bytes("blk"));  // stand-in block record
    if (store.maybe_checkpoint(wal, height, tip("t"), state)) {
      ++checkpoints;
      // Compaction leaves exactly the checkpoint record.
      EXPECT_EQ(wal.record_count(), 1u);
      ASSERT_NE(store.latest(), nullptr);
      EXPECT_EQ(store.latest()->height(), height);
    }
  }
  EXPECT_EQ(checkpoints, 3u);  // heights 4, 8, 12
  EXPECT_EQ(store.checkpoints_taken(), 3u);
  EXPECT_GT(wal.truncated_bytes(), 0u);

  // The sealed checkpoint recovers to the exact snapshot state.
  const WalRecovery recovery = wal_recover_blocks(wal);
  ASSERT_TRUE(recovery.checkpoint.has_value());
  EXPECT_EQ(recovery.checkpoint->height, 12u);
  EXPECT_EQ(recovery.checkpoint->state.digest(), state.digest());
}

TEST(SnapshotStore, CompactionOffKeepsHistory) {
  SnapshotStore store(
      SnapshotConfig{.interval = 2, .compact_wal = false});
  WriteAheadLog wal;
  WorldState state;
  for (std::uint64_t height = 1; height <= 4; ++height) {
    wal.append(kWalBlock, to_bytes("blk"));
    state.put("k" + std::to_string(height), to_bytes("v"));
    store.maybe_checkpoint(wal, height, tip("t"), state);
  }
  // 4 blocks + 2 checkpoint records, nothing truncated.
  EXPECT_EQ(wal.record_count(), 6u);
  EXPECT_EQ(wal.truncated_bytes(), 0u);
}

TEST(SnapshotStore, RestoreRebuildsServableSnapshot) {
  SnapshotStore store(SnapshotConfig{.interval = 2});
  const WorldState state = sample_state(10);
  WriteAheadLog wal;
  store.checkpoint(wal, 6, tip("t"), state);
  const crypto::Digest root = store.latest()->root();

  SnapshotStore rebuilt(store.config());
  rebuilt.restore(6, tip("t"), state);
  ASSERT_NE(rebuilt.latest(), nullptr);
  // Bit-identical root: the restored replica can serve (and vote for)
  // the same content address it checkpointed before the crash.
  EXPECT_EQ(rebuilt.latest()->root(), root);
}

}  // namespace
}  // namespace veil::ledger
