// Unit + differential tests for the authenticated COW Merkle trie that
// backs WorldState. The WorldState-level behavior (MVCC, hot cache,
// encode compatibility) lives in test_state.cpp; this file exercises the
// trie itself: structure, incremental roots, node image reconstruction,
// grafting, and proofs.
#include "ledger/state_trie.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ledger/state.hpp"

namespace veil::ledger {
namespace {

using common::Bytes;
using common::Rng;
using common::to_bytes;

StateTrie sample_trie(int keys = 32) {
  StateTrie trie;
  for (int i = 0; i < keys; ++i) {
    trie.set("key/" + std::to_string(i), to_bytes("v" + std::to_string(i)),
             static_cast<std::uint64_t>(i + 1));
  }
  return trie;
}

TEST(StateTrie, EmptyTrieHasDomainSeparatedRoot) {
  StateTrie trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.root_hash(), StateTrie::empty_root());
  // The empty root is a constant, not the hash of any node encoding an
  // attacker could present.
  EXPECT_FALSE(trie.get("anything").has_value());
}

TEST(StateTrie, SetGetEraseRoundTrip) {
  StateTrie trie;
  trie.set("alpha", to_bytes("1"), 1);
  trie.set("beta", to_bytes("2"), 1);
  ASSERT_TRUE(trie.get("alpha").has_value());
  EXPECT_EQ(trie.get("alpha")->first, to_bytes("1"));
  EXPECT_EQ(trie.get("alpha")->second, 1u);
  EXPECT_EQ(trie.size(), 2u);

  trie.set("alpha", to_bytes("1b"), 2);
  EXPECT_EQ(trie.get("alpha")->first, to_bytes("1b"));
  EXPECT_EQ(trie.get("alpha")->second, 2u);
  EXPECT_EQ(trie.size(), 2u);  // overwrite, not insert

  trie.erase("alpha");
  EXPECT_FALSE(trie.get("alpha").has_value());
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_TRUE(trie.version_of("beta").has_value());
  EXPECT_EQ(*trie.version_of("beta"), 1u);
  EXPECT_FALSE(trie.version_of("alpha").has_value());
}

TEST(StateTrie, RootIsOrderIndependent) {
  // The root authenticates the mapping, not the mutation history: any
  // insertion order (and any detour through since-erased keys) converges
  // to the same canonical structure and root.
  StateTrie a;
  a.set("car", to_bytes("1"), 1);
  a.set("cart", to_bytes("2"), 1);
  a.set("carton", to_bytes("3"), 1);

  StateTrie b;
  b.set("carton", to_bytes("3"), 1);
  b.set("detour", to_bytes("x"), 1);
  b.set("car", to_bytes("1"), 1);
  b.set("cart", to_bytes("2"), 1);
  b.erase("detour");

  EXPECT_EQ(a.root_hash(), b.root_hash());
}

TEST(StateTrie, EraseCollapsesPathsToCanonicalForm) {
  // Erasing the branch point must merge single-child runs back into one
  // compressed node — structurally identical to never having inserted.
  StateTrie with;
  with.set("prefix/long/a", to_bytes("a"), 1);
  with.set("prefix/long/b", to_bytes("b"), 1);
  with.set("prefix", to_bytes("p"), 1);
  with.erase("prefix/long/b");
  with.erase("prefix");

  StateTrie without;
  without.set("prefix/long/a", to_bytes("a"), 1);
  EXPECT_EQ(with.root_hash(), without.root_hash());
  EXPECT_EQ(with.size(), 1u);
}

TEST(StateTrie, EraseOfAbsentKeyLeavesRootUntouched) {
  StateTrie trie = sample_trie(8);
  const crypto::Digest before = trie.root_hash();
  trie.erase("no-such-key");
  trie.erase("key/999");
  EXPECT_EQ(trie.root_hash(), before);
  EXPECT_EQ(trie.size(), 8u);
}

TEST(StateTrie, CopyIsO1AndOldRootKeepsAuthenticatingOldState) {
  StateTrie live = sample_trie(16);
  const StateTrie snapshot = live;  // COW: shares every node
  const crypto::Digest frozen = snapshot.root_hash();

  live.set("key/3", to_bytes("mutated"), 99);
  live.erase("key/7");

  EXPECT_NE(live.root_hash(), frozen);
  EXPECT_EQ(snapshot.root_hash(), frozen);
  EXPECT_EQ(snapshot.get("key/3")->first, to_bytes("v3"));
  ASSERT_TRUE(snapshot.get("key/7").has_value());
  EXPECT_EQ(snapshot.size(), 16u);
}

TEST(StateTrie, ForEachVisitsKeysInByteLexicographicOrder) {
  StateTrie trie;
  for (const char* k : {"b", "a/2", "a/10", "a", "c", "a/1"}) {
    trie.set(k, to_bytes(k), 1);
  }
  std::vector<std::string> keys;
  trie.for_each([&](const std::string& key, const Bytes&, std::uint64_t) {
    keys.push_back(key);
    return true;
  });
  const std::vector<std::string> want{"a", "a/1", "a/10", "a/2", "b", "c"};
  EXPECT_EQ(keys, want);
}

TEST(StateTrie, VisitorEarlyStopHaltsTheWalk) {
  StateTrie trie = sample_trie(20);
  int seen = 0;
  trie.for_each([&](const std::string&, const Bytes&, std::uint64_t) {
    return ++seen < 5;
  });
  EXPECT_EQ(seen, 5);
}

TEST(StateTrie, ScanPrefixDescendsOnlyTheCoveringSubtrie) {
  StateTrie trie;
  for (int i = 0; i < 2000; ++i) {
    trie.set("acct/" + std::to_string(i), to_bytes("v"), 1);
  }
  for (int i = 0; i < 10; ++i) {
    trie.set("zz/special/" + std::to_string(i), to_bytes("z"), 1);
  }
  std::vector<std::string> hits;
  const std::size_t visited =
      trie.scan_prefix("zz/", [&](const std::string& key, const Bytes&,
                                  std::uint64_t) {
        hits.push_back(key);
        return true;
      });
  EXPECT_EQ(hits.size(), 10u);
  // The scan must not have walked the 2000-key acct/ subtrie: the node
  // count stays O(depth + matches), far below the trie's size.
  EXPECT_LT(visited, 40u);
}

TEST(StateTrie, ScanRangeIsHalfOpenAndSeeksPastTheStart) {
  StateTrie trie;
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    trie.set(buf, to_bytes("v"), 1);
  }
  std::vector<std::string> hits;
  const std::size_t visited = trie.scan_range(
      "k010", "k015",
      [&](const std::string& key, const Bytes&, std::uint64_t) {
        hits.push_back(key);
        return true;
      });
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits.front(), "k010");
  EXPECT_EQ(hits.back(), "k014");  // end exclusive
  EXPECT_LT(visited, 50u);         // seek, not full iteration

  // Empty end = unbounded.
  hits.clear();
  trie.scan_range("k098", "", [&](const std::string& key, const Bytes&,
                                  std::uint64_t) {
    hits.push_back(key);
    return true;
  });
  const std::vector<std::string> tail{"k098", "k099"};
  EXPECT_EQ(hits, tail);
}

// ---- Node image: collect / from_nodes / graft ------------------------------

TEST(StateTrie, NodeImageRoundTripsEagerly) {
  const StateTrie trie = sample_trie(50);
  auto store = std::make_shared<NodeStore>();
  trie.collect_nodes(*store);
  EXPECT_GT(store->size(), 1u);

  const StateTrie rebuilt =
      StateTrie::from_nodes(trie.root_hash(), store, StateTrie::Materialize::Eager);
  EXPECT_EQ(rebuilt.root_hash(), trie.root_hash());
  EXPECT_EQ(rebuilt.size(), trie.size());
  EXPECT_EQ(rebuilt.get("key/17")->first, to_bytes("v17"));
}

TEST(StateTrie, LazyImageResolvesColdNodesOnDemand) {
  const StateTrie trie = sample_trie(50);
  auto store = std::make_shared<NodeStore>();
  trie.collect_nodes(*store);

  const StateTrie lazy =
      StateTrie::from_nodes(trie.root_hash(), store, StateTrie::Materialize::Lazy);
  EXPECT_EQ(lazy.root_hash(), trie.root_hash());  // O(1): root is decoded
  // Cold children decode on first touch.
  ASSERT_TRUE(lazy.get("key/31").has_value());
  EXPECT_EQ(lazy.get("key/31")->first, to_bytes("v31"));
  EXPECT_EQ(lazy.size(), trie.size());  // full walk resolves everything
}

TEST(StateTrie, EagerRebuildFailsClosedOnMissingOrTamperedNodes) {
  const StateTrie trie = sample_trie(20);
  auto store = std::make_shared<NodeStore>();
  trie.collect_nodes(*store);

  // Missing node: drop any non-root entry.
  {
    auto broken = std::make_shared<NodeStore>(*store);
    for (auto it = broken->begin(); it != broken->end(); ++it) {
      if (it->first != trie.root_hash()) {
        broken->erase(it);
        break;
      }
    }
    EXPECT_THROW(StateTrie::from_nodes(trie.root_hash(), broken),
                 common::Error);
  }
  // Tampered node: bytes stored under a hash they no longer match.
  {
    auto broken = std::make_shared<NodeStore>(*store);
    broken->begin()->second.back() ^= 0x01;
    EXPECT_THROW(StateTrie::from_nodes(trie.root_hash(), broken),
                 common::Error);
  }
}

TEST(StateTrie, GraftReusesPriorSubtreesAndVerifiesFreshNodes) {
  StateTrie prior = sample_trie(200);
  const StateTrie::NodeIndex prior_index = prior.build_node_index();

  StateTrie next = prior;  // COW
  next.set("key/7", to_bytes("updated"), 42);
  next.set("brand-new", to_bytes("n"), 1);

  // The delta a lagging replica would fetch: nodes of `next` that are
  // not already in `prior`.
  NodeStore all_next;
  next.collect_nodes(all_next);
  NodeStore fresh;
  for (const auto& [hash, bytes] : all_next) {
    if (!prior_index.contains(hash)) fresh.emplace(hash, bytes);
  }
  // The whole point: the delta is a sliver of the full image.
  EXPECT_LT(fresh.size(), all_next.size() / 4);

  const StateTrie grafted =
      StateTrie::graft(next.root_hash(), fresh, prior_index);
  EXPECT_EQ(grafted.root_hash(), next.root_hash());
  EXPECT_EQ(grafted.get("key/7")->first, to_bytes("updated"));
  EXPECT_EQ(grafted.get("brand-new")->first, to_bytes("n"));
  EXPECT_EQ(grafted.get("key/100")->first, to_bytes("v100"));
  EXPECT_EQ(grafted.size(), next.size());

  // A fresh node that hashes wrong is rejected even when prior nodes
  // cover most of the tree.
  NodeStore tampered = fresh;
  tampered.begin()->second.back() ^= 0x01;
  EXPECT_THROW(StateTrie::graft(next.root_hash(), tampered, prior_index),
               common::Error);
}

TEST(StateTrie, NodeHashesMatchesCollectedImage) {
  const StateTrie trie = sample_trie(64);
  NodeStore store;
  trie.collect_nodes(store);
  std::unordered_set<crypto::Digest, DigestHash> hashes;
  trie.node_hashes(hashes);
  EXPECT_EQ(hashes.size(), store.size());
  for (const auto& [hash, bytes] : store) {
    EXPECT_TRUE(hashes.contains(hash));
    EXPECT_EQ(StateTrie::hash_node(bytes), hash);
  }
}

// ---- Canonical node encoding ----------------------------------------------

TEST(StateTrie, DecodeNodeEnforcesCanonicalForm) {
  // Single-key trie: the root is a leaf whose path is the key's nibbles,
  // so the byte layout is known (flags, varint path length, raw nibbles).
  StateTrie trie;
  trie.set("ab", to_bytes("v"), 1);
  NodeStore store;
  trie.collect_nodes(store);
  ASSERT_EQ(store.size(), 1u);
  const Bytes good = store.begin()->second;
  EXPECT_NO_THROW(StateTrie::decode_node(good));

  // Nibble out of range (a path byte must stay < 16).
  Bytes bad_nibble = good;
  bad_nibble[2] = 0x77;
  EXPECT_THROW(StateTrie::decode_node(bad_nibble), common::Error);

  // Trailing bytes after a complete node.
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_THROW(StateTrie::decode_node(trailing), common::Error);
}

TEST(StateTrie, DecodeNodeFuzzNeverCrashes) {
  // Representative shapes: leaf, interior branch, branch-with-value.
  StateTrie trie;
  trie.set("car", to_bytes("1"), 1);
  trie.set("cart", to_bytes("2"), 2);
  trie.set("carton", to_bytes("3"), 3);
  NodeStore store;
  trie.collect_nodes(store);

  Rng rng(77);
  for (const auto& [hash, good] : store) {
    (void)hash;
    for (std::size_t len = 0; len < good.size(); ++len) {
      Bytes cut(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len));
      try {
        (void)StateTrie::decode_node(cut);
      } catch (const common::Error&) {
      }
    }
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = good;
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      try {
        (void)StateTrie::decode_node(mutated);
      } catch (const common::Error&) {
      }
    }
  }
}

// ---- Proofs ----------------------------------------------------------------

TEST(StateProof, InclusionProofVerifiesAgainstTheRoot) {
  const StateTrie trie = sample_trie(100);
  const StateProof proof = trie.prove("key/42");
  EXPECT_TRUE(proof.exists);
  EXPECT_EQ(proof.value, to_bytes("v42"));
  EXPECT_EQ(proof.version, 43u);
  // O(depth) nodes, not O(n).
  EXPECT_LT(proof.nodes.size(), 10u);
  EXPECT_TRUE(StateTrie::verify_proof(trie.root_hash(), proof));
}

TEST(StateProof, ExclusionProofVerifiesAbsence) {
  const StateTrie trie = sample_trie(100);
  for (const char* absent : {"key/1000", "kez", "", "key/42/child"}) {
    const StateProof proof = trie.prove(absent);
    EXPECT_FALSE(proof.exists) << absent;
    EXPECT_TRUE(StateTrie::verify_proof(trie.root_hash(), proof)) << absent;
  }
}

TEST(StateProof, TamperedValueOrFlippedExistenceFails) {
  const StateTrie trie = sample_trie(50);

  StateProof tampered_value = trie.prove("key/10");
  tampered_value.value = to_bytes("forged");
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), tampered_value));

  StateProof tampered_version = trie.prove("key/10");
  tampered_version.version += 1;
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), tampered_version));

  StateProof flipped = trie.prove("key/10");
  flipped.exists = false;
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), flipped));

  StateProof fake_exclusion = trie.prove("no-such-key");
  fake_exclusion.exists = true;
  fake_exclusion.value = to_bytes("conjured");
  fake_exclusion.version = 1;
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), fake_exclusion));

  StateProof wrong_key = trie.prove("key/10");
  wrong_key.key = "key/11";
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), wrong_key));
}

TEST(StateProof, StaleRootRejectsCurrentProofAndViceVersa) {
  StateTrie trie = sample_trie(50);
  const crypto::Digest old_root = trie.root_hash();
  const StateProof old_proof = trie.prove("key/10");

  trie.set("key/10", to_bytes("new"), 99);
  const StateProof new_proof = trie.prove("key/10");

  EXPECT_TRUE(StateTrie::verify_proof(old_root, old_proof));
  EXPECT_TRUE(StateTrie::verify_proof(trie.root_hash(), new_proof));
  EXPECT_FALSE(StateTrie::verify_proof(trie.root_hash(), old_proof));
  EXPECT_FALSE(StateTrie::verify_proof(old_root, new_proof));
}

TEST(StateProof, EmptyTrieProvesEveryKeyAbsent) {
  const StateTrie trie;
  const StateProof proof = trie.prove("anything");
  EXPECT_FALSE(proof.exists);
  EXPECT_TRUE(proof.nodes.empty());
  EXPECT_TRUE(StateTrie::verify_proof(StateTrie::empty_root(), proof));
  // But not against a non-empty root.
  EXPECT_FALSE(
      StateTrie::verify_proof(sample_trie(3).root_hash(), proof));
}

TEST(StateProof, WireRoundTripAndDecodeFuzz) {
  const StateTrie trie = sample_trie(30);
  const StateProof proof = trie.prove("key/7");
  const StateProof decoded = StateProof::decode(proof.encode());
  EXPECT_EQ(decoded.key, proof.key);
  EXPECT_EQ(decoded.exists, proof.exists);
  EXPECT_EQ(decoded.value, proof.value);
  EXPECT_EQ(decoded.version, proof.version);
  EXPECT_EQ(decoded.nodes, proof.nodes);
  EXPECT_TRUE(StateTrie::verify_proof(trie.root_hash(), decoded));

  const Bytes good = proof.encode();
  for (std::size_t len = 0; len < good.size(); ++len) {
    Bytes cut(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)StateProof::decode(cut);
    } catch (const common::Error&) {
    }
  }
  Rng rng(88);
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = good;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      const StateProof p = StateProof::decode(mutated);
      // Decoding may succeed; verification against the root must not
      // accept a mutated proof for a different statement.
      if (StateTrie::verify_proof(trie.root_hash(), p)) {
        EXPECT_EQ(p.key, proof.key);
        EXPECT_EQ(p.exists, proof.exists);
        EXPECT_EQ(p.value, proof.value);
        EXPECT_EQ(p.version, proof.version);
      }
    } catch (const common::Error&) {
    }
  }
}

// ---- Randomized differential suite vs a reference map ----------------------

struct RefEntry {
  Bytes value;
  std::uint64_t version = 0;
};

void run_differential(std::uint64_t seed) {
  Rng rng(seed);
  WorldState state;
  std::map<std::string, RefEntry> ref;
  std::optional<WorldState> snapshot;
  std::map<std::string, RefEntry> snapshot_ref;

  const auto random_key = [&] {
    return "k/" + std::to_string(rng.next_below(64));
  };

  for (int op = 0; op < 1500; ++op) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 40) {  // put
      const std::string key = random_key();
      const Bytes value = rng.next_bytes(1 + rng.next_below(24));
      state.put(key, value);
      auto& e = ref[key];
      e.value = value;
      ++e.version;
    } else if (dice < 55) {  // erase
      const std::string key = random_key();
      state.erase(key);
      ref.erase(key);
    } else if (dice < 80) {  // apply, version-correct (must commit)
      Transaction tx;
      const std::string rk = random_key();
      const auto it = ref.find(rk);
      tx.reads = {{rk, it == ref.end() ? 0 : it->second.version}};
      const std::string wk = random_key();
      const bool del = rng.next_below(4) == 0;
      const Bytes value = del ? Bytes{} : rng.next_bytes(8);
      tx.writes = {{wk, value, del}};
      ASSERT_EQ(state.apply(tx), CommitResult::Applied) << "seed " << seed;
      if (del) {
        ref.erase(wk);
      } else {
        auto& e = ref[wk];
        e.value = value;
        ++e.version;
      }
    } else if (dice < 90) {  // apply, stale read (must conflict, no effect)
      const std::string rk = random_key();
      const auto it = ref.find(rk);
      Transaction tx;
      tx.reads = {{rk, (it == ref.end() ? 0 : it->second.version) + 7}};
      tx.writes = {{random_key(), to_bytes("clobber"), false}};
      const crypto::Digest before = state.digest();
      ASSERT_EQ(state.apply(tx), CommitResult::MvccConflict) << "seed " << seed;
      ASSERT_EQ(state.digest(), before) << "conflict had side effects";
    } else if (dice < 95) {  // point lookups
      const std::string key = random_key();
      const auto got = state.get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_FALSE(got.has_value()) << key << " seed " << seed;
        ASSERT_EQ(state.version_of(key), 0u);
      } else {
        ASSERT_TRUE(got.has_value()) << key << " seed " << seed;
        ASSERT_EQ(got->value, it->second.value);
        ASSERT_EQ(got->version, it->second.version);
        ASSERT_EQ(state.version_of(key), it->second.version);
      }
    } else if (!snapshot.has_value()) {  // take a COW snapshot once
      snapshot = state;  // O(1)
      snapshot_ref = ref;
    }

    if (op % 250 == 249) {
      // Full sweep: entries, digest stability, wire round trip.
      const auto entries = state.entries();
      ASSERT_EQ(entries.size(), ref.size()) << "seed " << seed;
      auto rit = ref.begin();
      for (const auto& [key, vv] : entries) {
        ASSERT_EQ(key, rit->first);
        ASSERT_EQ(vv.value, rit->second.value);
        ASSERT_EQ(vv.version, rit->second.version);
        ++rit;
      }
      const WorldState decoded = WorldState::decode(state.encode());
      ASSERT_EQ(decoded.digest(), state.digest()) << "seed " << seed;
      ASSERT_EQ(decoded.size(), state.size());

      // Same content built key-by-key in reference order reaches the
      // same root: digests depend on the mapping, not history.
      WorldState replayed;
      for (const auto& [key, e] : ref) {
        for (std::uint64_t v = 1; v <= e.version; ++v) {
          replayed.put(key, e.value);
        }
      }
      ASSERT_EQ(replayed.digest(), state.digest()) << "seed " << seed;
    }
  }

  // The snapshot froze mid-run and must still match its reference.
  if (snapshot.has_value()) {
    ASSERT_EQ(snapshot->size(), snapshot_ref.size());
    for (const auto& [key, e] : snapshot_ref) {
      const auto got = snapshot->get(key);
      ASSERT_TRUE(got.has_value()) << key;
      ASSERT_EQ(got->value, e.value);
      ASSERT_EQ(got->version, e.version);
    }
  }
}

TEST(StateTrieDifferential, MatchesReferenceMapOnFixedSeeds) {
  run_differential(1);
  run_differential(2);
  run_differential(0xC0FFEE);
}

TEST(StateTrieDifferential, MatchesReferenceMapOnChaosSeed) {
  std::uint64_t seed = 31337;
  if (const char* env = std::getenv("VEIL_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  // Echoed so a failing cron run is reproducible locally.
  std::printf("[chaos] VEIL_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  run_differential(seed);
}

}  // namespace
}  // namespace veil::ledger
