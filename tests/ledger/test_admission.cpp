// CoDel-style admission controller: delay-based shedding with the
// square-root control law, priority classes (Commit outranks Fresh), the
// hard capacity backstop, unconditional expired sheds, and the
// ShedRecord wire format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ledger/admission.hpp"

namespace veil::ledger {
namespace {

AdmissionConfig tight() {
  AdmissionConfig config;
  config.target_delay_us = 5'000;
  config.interval_us = 100'000;
  config.commit_slack = 4.0;
  return config;
}

TEST(Admission, AdmitsWhileDelayUnderTarget) {
  AdmissionController ctl(tight());
  for (common::SimTime now = 0; now < 10; ++now) {
    EXPECT_TRUE(ctl.offer("tx", AdmitPriority::Fresh, /*enqueued_at=*/now,
                          /*now=*/now + 1'000, /*queue_len=*/10));
  }
  EXPECT_EQ(ctl.stats().admitted, 10u);
  EXPECT_EQ(ctl.sheds().size(), 0u);
  EXPECT_FALSE(ctl.dropping());
  EXPECT_EQ(ctl.stats().max_queue_delay_us, 1'000u);
}

TEST(Admission, ShedsAfterSustainedDelayAboveTarget) {
  AdmissionController ctl(tight());
  // Sojourn 10ms, target 5ms: above target — but the first full interval
  // is grace (a burst gets one interval to drain).
  EXPECT_TRUE(ctl.offer("t0", AdmitPriority::Fresh, 0, 10'000, 8));
  EXPECT_TRUE(ctl.offer("t1", AdmitPriority::Fresh, 10'000, 50'000, 8));
  EXPECT_FALSE(ctl.dropping());
  // Still above target after the interval: the shedding regime begins.
  EXPECT_FALSE(ctl.offer("t2", AdmitPriority::Fresh, 100'000, 111'000, 8));
  EXPECT_TRUE(ctl.dropping());
  EXPECT_EQ(ctl.stats().shed_delay, 1u);
  ASSERT_EQ(ctl.sheds().size(), 1u);
  EXPECT_EQ(ctl.sheds()[0].cause, ShedRecord::Cause::QueueDelay);
  EXPECT_EQ(ctl.sheds()[0].tx_id, "t2");
  EXPECT_EQ(ctl.sheds()[0].queue_delay_us, 11'000u);

  // Inside the control-law spacing the next offer is admitted; once the
  // spacing elapses the controller sheds again, faster (sqrt law).
  EXPECT_TRUE(ctl.offer("t3", AdmitPriority::Fresh, 105'000, 112'000, 8));
  EXPECT_FALSE(
      ctl.offer("t4", AdmitPriority::Fresh, 160'000, 250'000, 8));
  EXPECT_EQ(ctl.stats().shed_delay, 2u);
}

TEST(Admission, RecoveryResetsTheRegime) {
  AdmissionController ctl(tight());
  EXPECT_TRUE(ctl.offer("t0", AdmitPriority::Fresh, 0, 10'000, 8));
  EXPECT_FALSE(ctl.offer("t1", AdmitPriority::Fresh, 100'000, 110'000, 8));
  ASSERT_TRUE(ctl.dropping());
  // Delay back under target: the regime ends immediately.
  EXPECT_TRUE(ctl.offer("t2", AdmitPriority::Fresh, 119'000, 120'000, 8));
  EXPECT_FALSE(ctl.dropping());
  // A near-empty queue also counts as recovered regardless of sojourn.
  EXPECT_TRUE(ctl.offer("t3", AdmitPriority::Fresh, 0, 200'000, 1));
}

TEST(Admission, CommitClassToleratesSlackTimesTarget) {
  AdmissionController ctl(tight());  // Fresh target 5ms, Commit 20ms
  // 10ms sojourn: above the Fresh target, below Commit's.
  EXPECT_TRUE(ctl.offer("c0", AdmitPriority::Commit, 0, 10'000, 8));
  EXPECT_TRUE(ctl.offer("c1", AdmitPriority::Commit, 100'000, 110'000, 8));
  EXPECT_TRUE(ctl.offer("c2", AdmitPriority::Commit, 200'000, 210'000, 8));
  EXPECT_EQ(ctl.sheds().size(), 0u);
  // The same delay sheds Fresh work once sustained: Fresh is shed first,
  // which is exactly the precedence the pipeline wants.
  EXPECT_TRUE(ctl.offer("f0", AdmitPriority::Fresh, 300'000, 310'000, 8));
  EXPECT_FALSE(ctl.offer("f1", AdmitPriority::Fresh, 410'000, 420'000, 8));
  EXPECT_EQ(ctl.sheds().size(), 1u);
  EXPECT_EQ(ctl.sheds()[0].priority, AdmitPriority::Fresh);
  // Commit-class work sails through the Fresh shedding regime.
  EXPECT_TRUE(ctl.offer("c3", AdmitPriority::Commit, 420'000, 430'000, 8));
}

TEST(Admission, CapacityBackstopIsPriorityBlind) {
  AdmissionConfig config = tight();
  config.queue_capacity = 4;
  AdmissionController ctl(config);
  EXPECT_TRUE(ctl.offer("ok", AdmitPriority::Fresh, 0, 100, 3));
  EXPECT_FALSE(ctl.offer("f", AdmitPriority::Fresh, 0, 100, 4));
  EXPECT_FALSE(ctl.offer("c", AdmitPriority::Commit, 0, 100, 4));
  EXPECT_EQ(ctl.stats().shed_capacity, 2u);
  EXPECT_EQ(ctl.sheds()[0].cause, ShedRecord::Cause::Capacity);
  EXPECT_EQ(ctl.sheds()[1].cause, ShedRecord::Cause::Capacity);
}

TEST(Admission, ExpiredOffersShedUnconditionally) {
  AdmissionController ctl(tight());
  // Zero sojourn, empty queue — but the deadline already passed.
  EXPECT_FALSE(ctl.offer("dead", AdmitPriority::Commit, 10'000, 10'001, 0,
                         /*deadline_us=*/10'000));
  EXPECT_EQ(ctl.stats().shed_expired, 1u);
  EXPECT_EQ(ctl.sheds()[0].cause, ShedRecord::Cause::Expired);
  // A deadline in the future does not shed.
  EXPECT_TRUE(ctl.offer("live", AdmitPriority::Fresh, 10'000, 10'001, 0,
                        /*deadline_us=*/20'000));
}

TEST(Admission, RetryAfterHintsTheNextAdmission) {
  AdmissionController ctl(tight());
  EXPECT_EQ(ctl.retry_after(0), tight().target_delay_us);
  EXPECT_TRUE(ctl.offer("t0", AdmitPriority::Fresh, 0, 10'000, 8));
  EXPECT_FALSE(ctl.offer("t1", AdmitPriority::Fresh, 100'000, 110'000, 8));
  ASSERT_TRUE(ctl.dropping());
  EXPECT_GE(ctl.retry_after(110'000), tight().target_delay_us);
}

TEST(Admission, ShedRecordRoundTrip) {
  ShedRecord rec;
  rec.tx_id = "tx-42";
  rec.priority = AdmitPriority::Commit;
  rec.cause = ShedRecord::Cause::Capacity;
  rec.queue_delay_us = 12'345;
  rec.at = 99'000;
  const ShedRecord back = ShedRecord::decode(rec.encode());
  EXPECT_EQ(back, rec);

  // Out-of-range enums are rejected, not cast blindly.
  common::Bytes bad_priority = rec.encode();
  bad_priority[rec.tx_id.size() + 1] = 9;  // varint len byte, then id
  EXPECT_THROW(ShedRecord::decode(bad_priority), common::Error);
  common::Bytes bad_cause = rec.encode();
  bad_cause[rec.tx_id.size() + 2] = 9;
  EXPECT_THROW(ShedRecord::decode(bad_cause), common::Error);
  // Truncation is rejected.
  const common::Bytes enc = rec.encode();
  EXPECT_THROW(
      ShedRecord::decode(common::BytesView(enc.data(), enc.size() - 1)),
      common::Error);
}

}  // namespace
}  // namespace veil::ledger
