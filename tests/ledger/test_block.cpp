#include "ledger/block.hpp"

#include <gtest/gtest.h>

namespace veil::ledger {
namespace {

Transaction tx_with_action(const std::string& action) {
  Transaction tx;
  tx.channel = "ch";
  tx.contract = "cc";
  tx.action = action;
  tx.writes = {{"k/" + action, common::to_bytes(action), false}};
  return tx;
}

crypto::Digest genesis_hash() {
  return crypto::sha256(std::string_view("veil.chain.genesis"));
}

TEST(Block, MakeComputesRoot) {
  const Block block =
      Block::make(0, genesis_hash(), {tx_with_action("a")}, 100);
  EXPECT_TRUE(block.body_matches_header());
  EXPECT_EQ(block.header.height, 0u);
  EXPECT_EQ(block.header.timestamp, 100u);
}

TEST(Block, EmptyBlockIsLegal) {
  const Block block = Block::make(0, genesis_hash(), {}, 1);
  EXPECT_TRUE(block.body_matches_header());
}

TEST(Block, TamperedTransactionDetected) {
  Block block = Block::make(
      0, genesis_hash(), {tx_with_action("a"), tx_with_action("b")}, 1);
  block.transactions[1].action = "evil";
  EXPECT_FALSE(block.body_matches_header());
}

TEST(Block, RemovedTransactionDetected) {
  Block block = Block::make(
      0, genesis_hash(), {tx_with_action("a"), tx_with_action("b")}, 1);
  block.transactions.pop_back();
  EXPECT_FALSE(block.body_matches_header());
}

TEST(Block, HeaderHashDependsOnEverything) {
  const Block a = Block::make(0, genesis_hash(), {tx_with_action("x")}, 1);
  const Block b = Block::make(1, genesis_hash(), {tx_with_action("x")}, 1);
  const Block c = Block::make(0, genesis_hash(), {tx_with_action("y")}, 1);
  const Block d = Block::make(0, genesis_hash(), {tx_with_action("x")}, 2);
  EXPECT_NE(a.header.hash(), b.header.hash());
  EXPECT_NE(a.header.hash(), c.header.hash());
  EXPECT_NE(a.header.hash(), d.header.hash());
}

TEST(Block, EncodingRoundTrip) {
  const Block block = Block::make(
      7, genesis_hash(), {tx_with_action("a"), tx_with_action("b")}, 55);
  const Block decoded = Block::decode(block.encode());
  EXPECT_EQ(decoded.header, block.header);
  ASSERT_EQ(decoded.transactions.size(), 2u);
  EXPECT_EQ(decoded.transactions[0].id(), block.transactions[0].id());
  EXPECT_TRUE(decoded.body_matches_header());
}

}  // namespace
}  // namespace veil::ledger
