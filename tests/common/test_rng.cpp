#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace veil::common {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);  // all 10 values hit in 500 draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(99), b(99);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
    const Bytes x = a.next_bytes(n);
    EXPECT_EQ(x.size(), n);
    EXPECT_EQ(x, b.next_bytes(n));
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5);
  Rng child1 = a.fork();
  Rng b(5);
  Rng child2 = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

}  // namespace
}  // namespace veil::common
