#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace veil::common {
namespace {

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTrip) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,      1ULL << 32,
                                  ~0ULL};
  Writer w;
  for (std::uint64_t v : values) w.varint(v);
  Reader r(w.data());
  for (std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintCompactness) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.data().size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.data().size(), 2u);
}

TEST(Serialize, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
}

TEST(Serialize, TruncatedInputThrows) {
  Writer w;
  w.u64(12345);
  const Bytes& buf = w.data();
  Reader r(BytesView(buf.data(), 4));
  EXPECT_THROW(r.u64(), Error);
}

TEST(Serialize, TruncatedBytesThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow, but none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), Error);
}

TEST(Serialize, MalformedBooleanThrows) {
  const Bytes buf = {2};
  Reader r(buf);
  EXPECT_THROW(r.boolean(), Error);
}

TEST(Serialize, VarintOverflowThrows) {
  // 10 bytes of 0xff encode more than 64 bits.
  const Bytes buf(10, 0xff);
  Reader r(buf);
  EXPECT_THROW(r.varint(), Error);
}

TEST(Serialize, RawReadExact) {
  Writer w;
  w.raw(Bytes{9, 8, 7});
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{9, 8, 7}));
  EXPECT_THROW(r.raw(1), Error);
}

}  // namespace
}  // namespace veil::common
