#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace veil::common {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelMapPreservesOrdering) {
  ThreadPool pool(8);
  const auto out =
      pool.parallel_map(5000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 5000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallel_for(64, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelAndInlineProduceIdenticalResults) {
  ThreadPool serial(1);
  ThreadPool parallel(8);
  const auto fn = [](std::size_t i) { return (i * 2654435761u) ^ (i >> 3); };
  EXPECT_EQ(serial.parallel_map(4097, fn), parallel.parallel_map(4097, fn));
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t i) {
                          if (i == 777) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after an exception (no stuck workers).
  const auto out = pool.parallel_map(100, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out[99], 100u);
}

TEST(ThreadPool, ExceptionInInlineModePropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallRegionsStress) {
  ThreadPool pool(4);
  std::size_t total = 0;
  for (int round = 0; round < 2000; ++round) {
    std::atomic<std::size_t> sum{0};
    const std::size_t n = 1 + round % 7;
    pool.parallel_for(n, [&](std::size_t i) { sum.fetch_add(i + 1); });
    total += sum.load();
  }
  // Each round contributes n*(n+1)/2.
  std::size_t expect = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t n = 1 + round % 7;
    expect += n * (n + 1) / 2;
  }
  EXPECT_EQ(total, expect);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.parallel_for(16, [&](std::size_t i) {
    // A nested region on a worker thread must not wait on the pool.
    pool.parallel_for(16, [&](std::size_t j) {
      hits[16 * i + j].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitRunsTaskAndCarriesException) {
  ThreadPool pool(2);
  auto ok = pool.submit([] {});
  ok.get();
  auto bad = pool.submit([] { throw std::runtime_error("task"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, GlobalPoolRebuild) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
  const auto out =
      ThreadPool::global().parallel_map(10, [](std::size_t i) { return i; });
  EXPECT_EQ(out.size(), 10u);
  ThreadPool::set_global_threads(4);
  EXPECT_EQ(ThreadPool::global().thread_count(), 4u);
}

TEST(ThreadPool, ZeroIterationRegionIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.parallel_map(0, [](std::size_t i) { return i; }).empty());
}

}  // namespace
}  // namespace veil::common
