#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace veil::common {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "hello \x01 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
}

TEST(Bytes, ConstantTimeEqualLengthMismatch) {
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(Bytes{1}, Bytes{2, 3}), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat(Bytes{1}, Bytes{2}, Bytes{3}), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat(Bytes{}, Bytes{}), Bytes{});
}

TEST(Bytes, Xor) {
  EXPECT_EQ(xor_bytes(Bytes{0xff, 0x0f}, Bytes{0x0f, 0xff}),
            (Bytes{0xf0, 0xf0}));
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace veil::common
